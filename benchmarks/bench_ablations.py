"""Benchmarks: ablations of the design choices in DESIGN.md §5.

Each ablation perturbs one pipeline decision on the UCI scenario and
asserts the expected direction of the effect.
"""

from repro.experiments.ablations import (
    run_ablation_combinations,
    run_ablation_credit,
    run_ablation_online_vs_offline,
    run_ablation_refine,
    run_ablation_solvers,
    run_ablation_window,
)


def test_ablation_solvers(run_once, trials):
    table = run_once(run_ablation_solvers, n_trials=trials(2), seed=3001)
    print()
    print(table.render())
    rows = {row["solver"]: row for row in table}
    # The matched filter (exact ML for the 1-sparse column model) is at
    # least as accurate as the ℓ1 relaxations…
    assert rows["matched"]["mean_error_m"] <= (
        min(rows["fista"]["mean_error_m"], rows["omp"]["mean_error_m"]) + 1.0
    )
    # …and the LP basis pursuit is by far the slowest.
    assert rows["basis_pursuit"]["seconds"] > rows["matched"]["seconds"]


def test_ablation_window(run_once, trials):
    table = run_once(run_ablation_window, n_trials=trials(1), seed=3002)
    print()
    print(table.render())
    # Smaller steps process more rounds — strictly more work.
    by_key = {(r["window_size"], r["window_step"]): r for r in table}
    assert by_key[(60, 5)]["seconds"] > by_key[(60, 20)]["seconds"]
    # The paper's 60/10 configuration is a usable operating point.
    assert by_key[(60, 10)]["mean_error_m"] < 8.0


def test_ablation_credit(run_once, trials):
    table = run_once(run_ablation_credit, n_trials=trials(2), seed=3003)
    print()
    print(table.render())
    by_threshold = {row["credit_threshold"]: row for row in table}
    # No filtering (threshold 0) keeps spurious estimates → counting is
    # no better than the paper's threshold of 1.
    assert by_threshold[0.0]["counting_error"] >= (
        by_threshold[1.0]["counting_error"] - 1e-9
    )
    # Over-filtering (threshold 3) starts losing real APs.
    assert by_threshold[3.0]["counting_error"] >= (
        by_threshold[1.0]["counting_error"] - 1e-9
    )


def test_ablation_combinations(run_once, trials):
    table = run_once(run_ablation_combinations, n_trials=trials(2), seed=3004)
    print()
    print(table.render())
    rows = {row["mode"]: row for row in table}
    # Clustering-pruned search is markedly cheaper…
    assert rows["clustered"]["seconds"] < rows["exhaustive<=7"]["seconds"]
    # …while staying within a couple of meters of the exhaustive search.
    assert rows["clustered"]["mean_error_m"] <= (
        rows["exhaustive<=7"]["mean_error_m"] + 4.0
    )


def test_ablation_online_vs_offline(run_once, trials):
    table = run_once(run_ablation_online_vs_offline, n_trials=trials(2), seed=3006)
    print()
    print(table.render())
    rows = {row["mode"]: row for row in table}
    # Both modes produce usable maps; the online window keeps counting at
    # least as tight as the pruned batch search on the 8-AP campus.
    assert rows["online"]["mean_error_m"] < 8.0
    assert rows["online"]["counting_error"] <= (
        rows["offline"]["counting_error"] + 1e-9
    )


def test_ablation_refine(run_once, trials):
    table = run_once(run_ablation_refine, n_trials=trials(2), seed=3005)
    print()
    print(table.render())
    rows = {row["refine"]: row for row in table}
    # Continuous refinement compensates grid quantization: it must beat
    # the grid-centroid-only variant.
    assert rows[True]["mean_error_m"] < rows[False]["mean_error_m"]
