"""Benchmark: city-scale fleet campaigns (scalability extension).

Not a paper figure — quantifies the FleetCampaign orchestration layer:
bigger fleets detect at least as many APs with comparable accuracy, at a
roughly linear wall-time cost.
"""

from repro.experiments.city_scale import run_city_scale


def test_city_scale(run_once, trials):
    table = run_once(run_city_scale, n_trials=trials(1), seed=5001)
    print()
    print(table.render())

    sizes = table.column("n_vehicles")
    detected = table.column("detected_aps")
    seconds = table.column("seconds")

    # More vehicles never find fewer APs (first vs last sweep point).
    assert detected[-1] >= detected[0]
    # The largest fleet detects most of the 5-AP district.
    assert detected[-1] >= 4
    # Cost grows with the fleet but stays sub-quadratic.
    assert seconds[-1] <= seconds[0] * (sizes[-1] / sizes[0]) ** 2
