"""Benchmark: streaming crowd inference vs batch recompute at ~1M labels.

Three sections over the aggregation stack:

1. **streaming aggregation** — the round-monitoring scenario at roughly
   a million labels: submissions arrive in :data:`N_CHECKPOINTS` waves
   and the operator wants current task estimates after every wave.  The
   batch path rebuilds the answered-workers subproblem and re-runs
   :func:`kos_inference` at each checkpoint (the only option before the
   streaming consumer); the
   streaming path ingests each wave into :class:`StreamingKos` (damped
   interim sweeps amortized across arrivals), reads
   :meth:`~StreamingKos.estimates` per checkpoint, and runs exactly one
   ``finalize()`` at the end.  Final results are asserted bit-identical
   before timing.  Acceptance: **>= 3x** (CI floor; the committed
   baseline targets >= 5x).
2. **EM vs KOS** — both estimator families timed on the same pool with
   the hoisted-vote-matrix EM loop, error rates recorded side by side.
3. **drift detection** — the adversarial reliability-drift campaign
   (degrade + collude + flip) with detection latency distributions from
   the exponential-forgetting ledger.

The measured timings land in ``BENCH_crowd.json`` (committed as the
repo's crowd-inference perf baseline; CI uploads it as a workflow
artifact).  ``REPRO_BENCH_CROWD_LABELS`` shrinks the million-label
section for wall-bounded CI runs; ``REPRO_BENCH_TRIALS`` scales the
repeat count of the cheaper sections.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.crowd.assignment import BipartiteAssignment, regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.simulate import DriftSpec, run_drift_campaign
from repro.crowd.streaming import StreamingKos
from repro.crowd.variational import em_inference
from repro.metrics.errors import bitwise_error_rate
from repro.util.rng import ensure_rng

ARTIFACT = Path("BENCH_crowd.json")

#: Streaming section scale: ~1M labels on an (ℓ, γ)-regular pool.
TARGET_LABELS = 1_000_000
WORKERS_PER_TASK = 20
TASKS_PER_WORKER = 250
N_CHECKPOINTS = 10
#: EM-vs-KOS section scale.
EM_N_TASKS = 2_000
EM_WORKERS_PER_TASK = 15
EM_TASKS_PER_WORKER = 30
#: Drift section scale.
DRIFT_N_TASKS = 120
DRIFT_ROUNDS = 10


def _target_labels() -> int:
    raw = os.environ.get("REPRO_BENCH_CROWD_LABELS", "")
    if not raw:
        return TARGET_LABELS
    value = int(raw)
    if value < 10_000:
        raise ValueError(
            f"REPRO_BENCH_CROWD_LABELS must be >= 10000, got {value}"
        )
    return value


def _streaming_shape() -> tuple[int, int]:
    """(n_tasks, n_workers) hitting ~the target label count.

    ``n_tasks`` is rounded to a multiple of 25 so N·ℓ stays divisible
    by γ (20 · 25 = 500 ≡ 0 mod 250) at any env-shrunk scale.
    """
    n_tasks = max(500, (_target_labels() // WORKERS_PER_TASK) // 25 * 25)
    n_workers = n_tasks * WORKERS_PER_TASK // TASKS_PER_WORKER
    return n_tasks, n_workers


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_artifact(section: str, payload: dict) -> None:
    """Merge one benchmark's results into the shared JSON artifact."""
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[section] = payload
    n_tasks, n_workers = _streaming_shape()
    data["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "scale": {
            "target_labels": _target_labels(),
            "n_tasks": n_tasks,
            "n_workers": n_workers,
            "n_checkpoints": N_CHECKPOINTS,
            "em_n_tasks": EM_N_TASKS,
            "drift_rounds": DRIFT_ROUNDS,
        },
    }
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# -- section 1: streaming aggregation ---------------------------------------


def _million_label_pool(seed: int = 2014):
    """A ~1M-edge pool plus per-worker (tasks, labels) arrival slices.

    The label matrix is held as ``int8`` (the ±1 alphabet needs no
    more), keeping the dense batch input at a fifth of a gigabyte at
    full scale instead of 1.6 GB.
    """
    n_tasks, _ = _streaming_shape()
    rng = ensure_rng(seed)
    assignment = regular_assignment(
        n_tasks, WORKERS_PER_TASK, TASKS_PER_WORKER, rng=rng
    )
    truths = np.where(rng.random(n_tasks) < 0.5, 1, -1)
    reliabilities = 0.55 + 0.4 * rng.random(assignment.n_workers)
    labels = generate_labels(truths, assignment, reliabilities, rng=rng)
    labels = labels.astype(np.int8)
    per_worker = []
    for worker in range(assignment.n_workers):
        tasks = np.sort(
            np.asarray(assignment.tasks_of_worker[worker], dtype=int)
        )
        per_worker.append((tasks, labels[tasks, worker]))
    return assignment, labels, per_worker


def _checkpoint_groups(n_workers: int):
    """Contiguous worker ranges, one per monitoring checkpoint."""
    bounds = np.linspace(0, n_workers, N_CHECKPOINTS + 1).astype(int)
    return [range(bounds[k], bounds[k + 1]) for k in range(N_CHECKPOINTS)]


def _batch_monitored_round(assignment, per_worker, groups, sink):
    """Re-run batch KOS over the answered subproblem at every wave.

    The batch estimator requires a fully-labeled pool, so pre-streaming
    monitoring had to carve the answered-workers subproblem out of the
    round at every checkpoint: rebuild the assignment restricted to the
    workers heard from so far, then run :func:`kos_inference` from
    scratch.  Checkpoint groups are contiguous worker ranges, so the
    restriction is a prefix — and the final checkpoint is exactly the
    full problem, which the streaming ``finalize()`` must match bit for
    bit.
    """
    current = np.zeros(
        (assignment.n_tasks, assignment.n_workers), dtype=np.int8
    )
    result = None
    answered = 0
    for group in groups:
        for worker in group:
            tasks, values = per_worker[worker]
            current[tasks, worker] = values
            answered += 1
        sub = BipartiteAssignment(
            n_tasks=assignment.n_tasks,
            n_workers=answered,
            edges=[(t, w) for t, w in assignment.edges if w < answered],
        )
        result = kos_inference(current[:, :answered], sub)
        sink(result.estimates)
    return result


def _streaming_monitored_round(stream, per_worker, groups, sink):
    """Feed each wave into the consumer; finalize once at the end."""
    for group in groups:
        for worker in group:
            tasks, values = per_worker[worker]
            stream.ingest(worker, tasks, values)
        sink(stream.estimates())
    return stream.finalize()


def test_streaming_aggregation_vs_batch_recompute(trials):
    repeats = trials(1)
    assignment, labels, per_worker = _million_label_pool()
    groups = _checkpoint_groups(assignment.n_workers)
    discard = lambda estimates: None  # noqa: E731

    batch = _batch_monitored_round(assignment, per_worker, groups, discard)
    stream = StreamingKos(assignment)
    streamed = _streaming_monitored_round(stream, per_worker, groups, discard)
    # The correctness contract: one finalize over the streamed state is
    # bit-identical to the batch estimator over the complete matrix.
    assert np.array_equal(streamed.estimates, batch.estimates)
    assert np.array_equal(streamed.worker_scores, batch.worker_scores)
    assert np.array_equal(
        streamed.worker_reliability, batch.worker_reliability
    )
    assert streamed.iterations == batch.iterations
    assert streamed.converged == batch.converged

    def batch_round():
        _batch_monitored_round(assignment, per_worker, groups, discard)

    batch_s = _best_of(batch_round, repeats)
    # A fresh consumer per round, as `_install_round` arms one per round
    # opening; construction stays outside the timed region (it happens
    # before any label exists to aggregate).
    streaming_s = float("inf")
    for _ in range(repeats):
        fresh = StreamingKos(assignment)
        start = time.perf_counter()
        _streaming_monitored_round(fresh, per_worker, groups, discard)
        streaming_s = min(streaming_s, time.perf_counter() - start)
    speedup = batch_s / streaming_s
    payload = {
        "n_labels": assignment.n_edges,
        "n_tasks": assignment.n_tasks,
        "n_workers": assignment.n_workers,
        "n_checkpoints": N_CHECKPOINTS,
        "interim_sweeps": stream.sweeps_run,
        "batch_s": batch_s,
        "streaming_s": streaming_s,
        "speedup": speedup,
    }
    _merge_artifact("streaming_aggregation", payload)
    print()
    print(
        f"streaming aggregation: {assignment.n_edges} labels, "
        f"{N_CHECKPOINTS} checkpoints; batch {batch_s*1e3:.0f} ms, "
        f"streaming {streaming_s*1e3:.0f} ms ({speedup:.1f}x)"
    )
    # Acceptance: >= 3x (CI floor); the committed full-scale baseline
    # targets >= 5x.
    assert speedup >= 3.0


# -- section 2: EM vs KOS ---------------------------------------------------


def test_em_vs_kos_at_scale(trials):
    repeats = trials(3)
    rng = ensure_rng(7)
    assignment = regular_assignment(
        EM_N_TASKS, EM_WORKERS_PER_TASK, EM_TASKS_PER_WORKER, rng=rng
    )
    truths = np.where(rng.random(EM_N_TASKS) < 0.5, 1, -1)
    reliabilities = 0.55 + 0.4 * rng.random(assignment.n_workers)
    labels = generate_labels(truths, assignment, reliabilities, rng=rng)

    em = em_inference(labels, assignment)
    kos = kos_inference(labels, assignment)
    em_error = bitwise_error_rate(truths, em.estimates)
    kos_error = bitwise_error_rate(truths, kos.estimates)
    assert em_error <= 0.1
    assert kos_error <= 0.1

    em_s = _best_of(lambda: em_inference(labels, assignment), repeats)
    kos_s = _best_of(lambda: kos_inference(labels, assignment), repeats)
    payload = {
        "n_tasks": EM_N_TASKS,
        "n_workers": assignment.n_workers,
        "n_labels": assignment.n_edges,
        "em_s": em_s,
        "em_iterations": em.iterations,
        "em_error": em_error,
        "kos_s": kos_s,
        "kos_iterations": kos.iterations,
        "kos_error": kos_error,
    }
    _merge_artifact("em_vs_kos", payload)
    print()
    print(
        f"em vs kos: {assignment.n_edges} labels; em {em_s*1e3:.1f} ms "
        f"(err {em_error:.3f}), kos {kos_s*1e3:.1f} ms "
        f"(err {kos_error:.3f})"
    )


# -- section 3: drift detection ---------------------------------------------


def test_drift_detection_latency(trials):
    del trials  # campaign length is fixed by DRIFT_ROUNDS
    specs = [
        DriftSpec(mode="degrade", workers=(0, 1), onset_round=2,
                  degrade_rounds=2),
        DriftSpec(mode="collude", workers=(4, 5, 6), onset_round=3,
                  collusion_strength=0.9),
        DriftSpec(mode="flip", workers=(9,), onset_round=4),
    ]
    start = time.perf_counter()
    report = run_drift_campaign(
        DRIFT_N_TASKS, 6, 18, n_rounds=DRIFT_ROUNDS, specs=specs, rng=2014
    )
    campaign_s = time.perf_counter() - start
    assert report.missed == ()
    assert report.false_positives == ()
    assert report.max_detection_rounds <= 6
    payload = {
        "n_rounds": DRIFT_ROUNDS,
        "n_drifting_workers": sum(len(s.workers) for s in specs),
        "campaign_s": campaign_s,
        "detection_rounds": {
            str(worker): latency
            for worker, latency in sorted(report.detection_rounds.items())
        },
        "mean_detection_rounds": report.mean_detection_rounds,
        "max_detection_rounds": report.max_detection_rounds,
        "missed": list(report.missed),
        "false_positives": list(report.false_positives),
    }
    _merge_artifact("drift_detection", payload)
    print()
    print(
        f"drift detection: {DRIFT_ROUNDS} rounds; mean latency "
        f"{report.mean_detection_rounds:.1f} rounds, max "
        f"{report.max_detection_rounds}, campaign {campaign_s:.2f} s"
    )
