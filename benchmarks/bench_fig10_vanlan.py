"""Benchmark: Fig. 10 — VanLan lookup and BRR vs AllAP connectivity.

Paper: AllAP (average lookup localization error 2.0658 m) suffers far
fewer interruptions than BRR, and the probability of a session longer
than the median is about seven times BRR's.
"""

from repro.experiments.fig10_vanlan import run_fig10


def test_fig10_vanlan(run_once):
    result = run_once(run_fig10, seed=2021)
    print()
    print(f"lookup: {result['estimated_aps']}/{result['true_aps']} APs, "
          f"mean error {result['lookup_error_m']:.2f} m")
    print(result["summary"].render())
    print()
    print(result["cdf"].render())

    stats = result["stats"]
    brr, allap = stats["BRR"], stats["AllAP"]

    # Shape 1: the lookup finds most of the 11 APs to useful accuracy.
    assert result["estimated_aps"] >= 6
    assert result["lookup_error_m"] < 15.0
    # Shape 2: AllAP accumulates at least as much connected time and
    # no more interruptions than BRR's hard handoff.
    assert allap.total_connected_s >= brr.total_connected_s
    assert allap.interruptions <= brr.interruptions
    # Shape 3: AllAP's sessions run longer (time-weighted median).
    assert allap.median_session_s >= brr.median_session_s
    # Shape 4: at BRR's median session length, AllAP keeps a larger
    # fraction of its connected time in longer sessions.
    probe = max(brr.median_session_s, 1.0)
    assert allap.time_fraction_in_sessions_longer_than(probe) >= (
        brr.time_fraction_in_sessions_longer_than(probe)
    )
