"""Benchmark: Fig. 11 — transfer performance under lookup errors.

Paper: with an accurate map AllAP's median 10 KB TCP transfer is ~0.61 s
(≈ 50 % faster than BRR) at roughly twice the throughput; both degrade
as counting/localization errors grow, AllAP staying ahead.
"""

import numpy as np

from repro.experiments.fig11_transfer import run_fig11


def test_fig11_transfer(run_once):
    tables = run_once(run_fig11, seed=2022)
    print()
    for table in tables.values():
        print(table.render())
        print()

    time_counting = tables["time_vs_counting"]
    throughput_counting = tables["throughput_vs_counting"]
    time_localization = tables["time_vs_localization"]

    # Shape 1: with an accurate map AllAP transfers at least as fast as
    # BRR and achieves at least its throughput.
    first = time_counting.rows[0]
    assert first["AllAP_s"] <= first["BRR_s"]
    first_tp = throughput_counting.rows[0]
    assert first_tp["AllAP_tps"] >= first_tp["BRR_tps"]

    # Shape 2: AllAP stays ahead across the whole counting-error sweep.
    for row in throughput_counting:
        assert row["AllAP_tps"] >= row["BRR_tps"] - 0.5

    # Shape 3: heavy counting error hurts throughput (missing APs mean
    # fewer usable slots) — compare the sweep's ends.
    tp = [row["AllAP_tps"] for row in throughput_counting]
    assert tp[-1] <= tp[0] + 1e-9

    # Shape 4: transfer times are finite at zero error for both policies.
    assert np.isfinite(first["AllAP_s"])
    assert np.isfinite(first["BRR_s"])
