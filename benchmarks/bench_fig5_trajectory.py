"""Benchmark: Fig. 5 — UCI trajectory snapshots.

Paper: 8 APs recovered exactly at 180 readings; average estimation error
2.6157 m at 60 readings falling to 1.8316 m at 180.
"""

import math

from repro.experiments.fig5_trajectory import run_fig5


def test_fig5_trajectory(run_once, trials):
    table = run_once(run_fig5, n_trials=trials(3), seed=2014)
    print()
    print(table.render())

    by_points = {row["n_readings"]: row for row in table}
    # Shape 1: error at the full trace is a few meters, comparable to the
    # paper's 1.83 m (our substrate, not their testbed).
    assert by_points[180]["mean_error_m"] < 6.0
    # Shape 2: the estimated count converges to the true 8 APs.
    assert abs(by_points[180]["estimated_aps"] - 8) <= 1.5
    # Shape 3: more readings never shrink the discovered count.
    assert by_points[180]["estimated_aps"] >= by_points[60]["estimated_aps"]
    # All checkpoints stay within a grid diameter or so.
    for row in table:
        assert not math.isnan(row["mean_error_m"])
        assert row["mean_error_m"] < 12.0
