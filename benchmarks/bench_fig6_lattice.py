"""Benchmark: Fig. 6 — impact of lattice size on localization error.

Paper: error < 2 m for lattice ≤ 10 m, < 3 m around 20 m, generally
increasing with lattice length; counting error 0 for 2–20 m lattices.
"""

import numpy as np

from repro.experiments.fig6_lattice import run_fig6


def test_fig6_lattice(run_once, trials):
    table = run_once(run_fig6, n_trials=trials(2), seed=2015)
    print()
    print(table.render())

    lattices = table.column("lattice_m")
    errors = table.column("mean_error_m")
    counts = table.column("counting_error")

    # Shape 1: fine lattices (≤ 10 m) land within a few meters.
    for lattice, error in zip(lattices, errors):
        if lattice <= 10.0:
            assert error < 6.0
    # Shape 2: the coarsest lattice is no better than the finest.
    assert errors[-1] >= errors[0] - 1.0
    # Shape 3: counting error stays near zero across the sweep (paper: 0).
    assert float(np.mean(counts)) <= 0.2
