"""Benchmark: Fig. 7 — crowdsourcing on (ℓ,γ)-regular bipartite graphs.

Paper: CrowdWiFi's iterative inference beats majority voting and the
Skyhook rank-order aggregator, scales like the oracle lower bound, and
all error rates decay roughly exponentially in the graph degrees.
"""

from repro.experiments.fig7_crowdsourcing import run_fig7_tasks, run_fig7_workers


def test_fig7a_workers_per_task(run_once, trials):
    table = run_once(run_fig7_workers, n_trials=trials(20), seed=2016)
    print()
    print(table.render())

    kos = table.column("crowdwifi")
    mv = table.column("majority_vote")
    sky = table.column("skyhook")
    oracle = table.column("oracle")
    n = len(kos)

    # Shape 1: the oracle lower-bounds KOS at every degree.
    for k, o in zip(kos, oracle):
        assert o <= k + 1e-9
    # Shape 2: KOS beats majority voting — on average across the sweep,
    # and strictly at the two largest degrees (individual low-ℓ points
    # sit near the observability floor and can tie).
    assert sum(kos) / n < sum(mv) / n
    assert kos[-1] < mv[-1]
    assert kos[-2] < mv[-2]
    # Shape 3: KOS tracks or beats the rank-order aggregator on average
    # (log10 scale; 0.25 ≈ a 1.8× error-rate band, inside which both sit
    # at the observability floor of the largest degrees).
    assert sum(kos) / n <= sum(sky) / n + 0.25
    # Shape 4: error decays as ℓ grows (first vs last sweep point).
    assert kos[-1] < kos[0]
    assert mv[-1] < mv[0]


def test_fig7b_tasks_per_worker(run_once, trials):
    table = run_once(run_fig7_tasks, n_trials=trials(20), seed=2017)
    print()
    print(table.render())

    gammas = table.column("tasks_per_worker")
    kos = table.column("crowdwifi")
    mv = table.column("majority_vote")
    oracle = table.column("oracle")

    # Shape 1: KOS between the oracle and majority voting for γ ≥ 4.
    # (γ = 2 gives each vehicle only two answers — too few to infer a
    # reliability from, the known degenerate regime of the KOS estimator.)
    for g, k, m, o in zip(gammas, kos, mv, oracle):
        assert o <= k + 1e-9
        if g >= 4:
            assert k < m
    # Shape 2: more tasks per worker → better reliability estimates →
    # strictly lower error at the high end than the low end for KOS.
    assert kos[-1] < kos[0]
