"""Benchmark: Fig. 8(c,d) — counting & localization error vs measurements M.

Paper shape: every algorithm improves as M grows; CrowdWiFi needs far
fewer measurements (≈ 0 error for M ≥ 40) than the baselines (M ≥ 100+).
"""

import numpy as np

from repro.experiments.fig8_comparison import run_fig8_measurements


def test_fig8_measurements(run_once, trials):
    counting, localization = run_once(
        run_fig8_measurements,
        m_values=(40, 80, 160),
        n_trials=trials(1),
        seed=2019,
    )
    print()
    print(counting.render())
    print()
    print(localization.render())

    cw_loc = np.array(localization.column("crowdwifi"), dtype=float)
    lgmm_loc = np.array(localization.column("lgmm"), dtype=float)
    mds_loc = np.array(localization.column("mds"), dtype=float)
    cw_count = np.array(counting.column("crowdwifi"), dtype=float)

    # Shape 1: CrowdWiFi beats the single-survey baselines on average.
    assert np.nanmean(cw_loc) < np.nanmean(lgmm_loc)
    assert np.nanmean(cw_loc) < np.nanmean(mds_loc)
    # Shape 2: CrowdWiFi improves (or at worst holds) with more
    # measurements: the largest M is no worse than the smallest.
    assert cw_loc[-1] <= cw_loc[0] + 25.0
    assert cw_count[-1] <= cw_count[0] + 10.0
