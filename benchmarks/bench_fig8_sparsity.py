"""Benchmark: Fig. 8(a,b) — counting & localization error vs sparsity k.

Paper shape: CrowdWiFi (and to a lesser degree Skyhook, which also
crowdsources) stays far below LGMM and MDS; errors grow with k for every
algorithm; at moderate k CrowdWiFi is near zero while the others exceed
21 % counting / 200 % localization.
"""

import numpy as np

from repro.experiments.fig8_comparison import run_fig8_sparsity


def test_fig8_sparsity(run_once, trials):
    counting, localization = run_once(
        run_fig8_sparsity,
        k_values=(10, 20, 30),
        n_trials=trials(1),
        seed=2018,
    )
    print()
    print(counting.render())
    print()
    print(localization.render())

    cw_count = np.array(counting.column("crowdwifi"), dtype=float)
    lgmm_loc = np.array(localization.column("lgmm"), dtype=float)
    mds_loc = np.array(localization.column("mds"), dtype=float)
    cw_loc = np.array(localization.column("crowdwifi"), dtype=float)

    # Shape 1: CrowdWiFi localization beats the non-crowdsourced
    # baselines on average across the sweep.
    assert np.nanmean(cw_loc) < np.nanmean(lgmm_loc)
    assert np.nanmean(cw_loc) < np.nanmean(mds_loc)
    # Shape 2: CrowdWiFi counting error stays moderate (paper: ~0–10 %).
    assert np.nanmean(cw_count) < 50.0
    # Shape 3: CrowdWiFi localization stays within ~one grid cell (100 %).
    assert np.nanmean(cw_loc) < 120.0
