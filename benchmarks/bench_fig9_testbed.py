"""Benchmark: Fig. 9 — the Open-Mesh testbed (synthesized).

Paper: all six nodes found; single-vehicle error 3.6016 m at 40 readings
(45 mph), crowdsourced error 2.2509 m, Skyhook 11.6028 m on the same area.
"""

from repro.experiments.fig9_testbed import run_fig9


def test_fig9_testbed(run_once, trials):
    table = run_once(run_fig9, n_trials=trials(3), seed=2020)
    print()
    print(table.render())

    rows = {(r["stage"], r["speed_mph"], r["n_readings"]): r for r in table}
    crowdsourced = rows[("crowdsourced", 0.0, 40)]
    skyhook = rows[("skyhook", 0.0, 40)]

    # Shape 1: crowdsourced fusion lands within a few meters (paper 2.25 m).
    assert crowdsourced["mean_error_m"] < 8.0
    # Shape 2: CrowdWiFi beats Skyhook by a clear margin (paper ~5×).
    assert crowdsourced["mean_error_m"] < skyhook["mean_error_m"]
    # Shape 3: the crowdsourced count is close to the true 6 nodes.
    assert abs(crowdsourced["estimated_aps"] - 6) <= 2.0
    # Shape 4: at every speed, 40 readings estimate at least as many APs
    # as 20 readings (more data never shrinks the discovered set).
    for speed in (20.0, 35.0, 45.0):
        k20 = rows[("single", speed, 20)]["estimated_aps"]
        k40 = rows[("single", speed, 40)]["estimated_aps"]
        assert k40 >= k20 - 0.5
