"""Benchmark: the batched ℓ1 round hot path vs the looped baseline.

Micro-benchmarks over the dominant online cost — the per-round
hypothesis sweep of §4.3.3 — at default scenario scale (M = 7 readings,
K ≤ 5, 8 m lattice, 100 m radius):

1. **engine round** — one full hypothesis sweep, batched + cached
   (block dedup via ``recover_blocks``) vs the seed's per-(partition,
   block) loop;
2. **batched vs looped ℓ1 solve** — ``l1_solve_batch`` against a Python
   loop of ``l1_solve`` on a shared sensing matrix (FISTA and OMP);
   FISTA is also measured on its optimized path (adaptive restart +
   opt-in float32), with an objective-parity check against the loop;
3. **warm-started FISTA** — re-solving a slightly shifted observation
   batch seeded from the previous solution (``theta0=`` + adaptive
   restart) vs solving it cold, the per-block streaming scenario;
4. **streaming engine vs batch recompute** — ``StreamingCsEngine`` with
   its cross-round caches on a repeated-traversal trace vs the same
   rounds recomputed from scratch (caches and warm starts off);
5. **cached vs uncached orthogonalization** — the memoized
   Proposition-1 ``(Q, T)`` factorizations against recomputing them per
   hypothesis;
6. **NullRecorder overhead** — the instrumented engine round under the
   default no-op recorder vs a bare replica with every telemetry call
   stripped; the zero-overhead contract (docs/OBSERVABILITY.md) is a
   ratio within 3 %.

The measured timings land in ``BENCH_hotpath.json`` (the repo's perf
baseline; CI uploads it as a workflow artifact).  ``REPRO_BENCH_TRIALS``
scales the repeat count; every timing is best-of-``trials`` so the JSON
is robust to scheduler noise at trials ≥ 3.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.centroid import threshold_centroid
from repro.core.combinations import CombinationEnumerator, EnumeratorConfig, unique_blocks
from repro.core.cs_problem import CsProblem, orthogonalize
from repro.core.engine import EngineConfig
from repro.core.l1 import l1_solve, l1_solve_batch
from repro.core.stream import StreamingCsEngine
from repro.core.window import WindowConfig
from repro.geo.grid import Grid, grid_from_reference_points
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.obs.recorder import NULL_RECORDER, InMemoryRecorder
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement
from repro.util.rng import ensure_rng

ARTIFACT = Path("BENCH_hotpath.json")

#: Default scenario scale: the engine's stock round shape.
N_READINGS = 7
MAX_APS = 5
LATTICE_M = 8.0
RADIUS_M = 100.0


def _round_fixture(seed: int = 2014):
    """One round's worth of inputs at default scenario scale."""
    rng = ensure_rng(seed)
    channel = PathLossModel(shadowing_sigma_db=0.0)
    ap = Point(40.0, 18.0)
    positions = [
        Point(float(12.0 * i + rng.normal(0.0, 2.0)), float(rng.normal(0.0, 3.0)))
        for i in range(N_READINGS)
    ]
    rss = np.array(
        [
            float(channel.mean_rss_dbm(ap.distance_to(p))) + rng.normal(0.0, 0.5)
            for p in positions
        ]
    )
    grid = grid_from_reference_points(positions, RADIUS_M, LATTICE_M)
    problem = CsProblem(grid, channel, communication_radius_m=RADIUS_M)
    rp_indices = problem.measurement_rows(positions)
    enumerator = CombinationEnumerator(
        EnumeratorConfig(max_aps=MAX_APS, max_exhaustive_items=N_READINGS), rng=0
    )
    partitions = enumerator.candidate_partitions(positions, rss.tolist())
    return problem, rp_indices, partitions, rss


def _looped_round(problem, rp_indices, partitions, rss, method="matched"):
    """The seed's hot path: one full recovery per (partition, block).

    Re-derives candidate columns, the sensing submatrix, and (for ℓ1
    methods) the Proposition-1 factorization on every hypothesis block —
    no dedup, no caching — exactly what ``_recover_partition`` did
    before the batched path landed.
    """
    context = problem.round_context(rp_indices)
    per_partition = []
    for partition in partitions:
        locations = []
        for block in partition:
            rows = np.asarray(block, dtype=int)
            columns = context.candidate_columns(rows)
            A = context.sensing[np.ix_(rows, columns)]
            theta_local = problem._solve_block(A, rss[rows], method=method)
            theta = np.zeros(problem.n_grid_points)
            theta[columns] = np.maximum(theta_local, 0.0)
            location, _ = threshold_centroid(
                theta, problem.grid, threshold_fraction=0.3
            )
            locations.append(location)
        per_partition.append(locations)
    return per_partition


def _batched_round(problem, rp_indices, partitions, rss, method="matched"):
    """The batched + cached hot path the engine now routes through."""
    context = problem.round_context(rp_indices)
    recoveries = context.recover_blocks(rss, unique_blocks(partitions), method=method)
    return [
        [recoveries[block].location for block in partition]
        for partition in partitions
    ]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fresh_problem(problem):
    """A cache-cold copy of the problem (same grid/channel/radius).

    Cross-round caching is disabled so the looped/uncached baselines stay
    faithful to the seed: every repeat pays full price.
    """
    return CsProblem(
        problem.grid,
        problem.channel,
        communication_radius_m=problem.communication_radius_m,
        cross_round_cache=False,
    )


def _merge_artifact(section: str, payload: dict) -> None:
    """Merge one benchmark's results into the shared JSON artifact."""
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[section] = payload
    data["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "scale": {
            "n_readings": N_READINGS,
            "max_aps": MAX_APS,
            "lattice_m": LATTICE_M,
            "radius_m": RADIUS_M,
        },
    }
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_engine_round_batched_vs_looped(trials):
    repeats = trials(3)
    problem, rp_indices, partitions, rss = _round_fixture()
    n_blocks = sum(len(p) for p in partitions)
    n_unique = len(unique_blocks(partitions))

    # Same outputs before timing anything.
    looped = _looped_round(problem, rp_indices, partitions, rss)
    batched = _batched_round(problem, rp_indices, partitions, rss)
    for a_row, b_row in zip(looped, batched):
        for a, b in zip(a_row, b_row):
            assert a.distance_to(b) < 1e-9

    looped_s = _best_of(
        lambda: _looped_round(_fresh_problem(problem), rp_indices, partitions, rss),
        repeats,
    )
    batched_s = _best_of(
        lambda: _batched_round(_fresh_problem(problem), rp_indices, partitions, rss),
        repeats,
    )
    speedup = looped_s / batched_s
    payload = {
        "n_partitions": len(partitions),
        "block_instances": n_blocks,
        "unique_blocks": n_unique,
        "looped_s": looped_s,
        "batched_cached_s": batched_s,
        "speedup": speedup,
    }
    _merge_artifact("engine_round", payload)
    print()
    print(
        f"engine round: {len(partitions)} hypotheses, {n_blocks} block solves "
        f"-> {n_unique} unique; looped {looped_s*1e3:.1f} ms, "
        f"batched+cached {batched_s*1e3:.1f} ms ({speedup:.1f}x)"
    )
    # Acceptance: >= 3x at default scenario scale.
    assert speedup >= 3.0


def _l1_fixture(seed: int = 7):
    """A shared-``A`` multi-RHS recovery batch (m, n, k) = (16, 400, 64)."""
    rng = ensure_rng(seed)
    m, n, k = 16, 400, 64
    A = rng.normal(size=(m, n)) / np.sqrt(m)
    support = rng.choice(n, size=k, replace=False)
    Y = A[:, support] * rng.uniform(1.0, 3.0, size=k)
    return A, Y, k


def _lasso_objectives(A, Y, Theta):
    """Per-column LASSO objective at the solvers' default λ."""
    lam = 0.01 * np.abs(A.T @ Y).max(axis=0)
    resid = A @ Theta - Y
    return 0.5 * np.einsum("mk,mk->k", resid, resid) + lam * np.abs(
        Theta
    ).sum(axis=0)


def test_l1_batch_vs_loop(trials):
    repeats = trials(3)
    A, Y, k = _l1_fixture()

    payload = {}
    print()
    looped_fista_s = None
    for method in ("fista", "omp"):
        looped_s = _best_of(
            lambda: np.stack(
                [l1_solve(A, Y[:, j], method=method) for j in range(k)], axis=1
            ),
            repeats,
        )
        batch_s = _best_of(lambda: l1_solve_batch(A, Y, method=method), repeats)
        speedup = looped_s / batch_s
        payload[method] = {
            "rhs": k,
            "looped_s": looped_s,
            "batched_s": batch_s,
            "speedup": speedup,
        }
        if method == "fista":
            looped_fista_s = looped_s
        print(
            f"l1 {method}: {k} RHS; looped {looped_s*1e3:.1f} ms, "
            f"batched {batch_s*1e3:.1f} ms ({speedup:.1f}x)"
        )
        assert speedup > 1.0

    # FISTA's optimized path: adaptive restart, then restart + opt-in
    # float32.  Both must land at (or below) the looped baseline's LASSO
    # objective on every column — speed never buys a worse solution.
    obj_loop = _lasso_objectives(
        A, Y,
        np.stack([l1_solve(A, Y[:, j], method="fista") for j in range(k)], axis=1),
    )
    variants = {
        "restart": {"adaptive_restart": True},
        "restart_float32": {"adaptive_restart": True, "work_dtype": "float32"},
    }
    for name, knobs in variants.items():
        solve = lambda: l1_solve_batch(A, Y, method="fista", **knobs)
        variant_s = _best_of(solve, repeats)
        excess = _lasso_objectives(A, Y, solve()) - obj_loop
        rel_excess = float((excess / np.maximum(obj_loop, 1e-12)).max())
        speedup = looped_fista_s / variant_s
        payload["fista"][f"{name}_s"] = variant_s
        payload["fista"][f"{name}_speedup"] = speedup
        print(
            f"l1 fista[{name}]: {variant_s*1e3:.1f} ms ({speedup:.1f}x), "
            f"max relative objective excess {rel_excess:.2e}"
        )
        assert rel_excess <= 1e-6
    # The committed headline is the optimized path; ≥ 3x is the hard
    # floor on any machine, ≥ 5x the committed number at default scale.
    payload["fista"]["batched_speedup"] = payload["fista"]["speedup"]
    payload["fista"]["optimized_speedup"] = payload["fista"][
        "restart_float32_speedup"
    ]
    payload["fista"]["speedup"] = payload["fista"]["optimized_speedup"]
    assert payload["fista"]["restart_speedup"] >= 3.0
    assert payload["fista"]["optimized_speedup"] >= 3.0
    _merge_artifact("l1_batch", payload)


def _null_recorder_round(problem, rp_indices, partitions, rss):
    """One engine round with the shipped instrumentation, null recorder.

    Reproduces ``OnlineCsEngine._process_round``'s per-round recorder
    call pattern — the spans and counters it issues unconditionally —
    around the instrumented ``recover_blocks``, all against
    :data:`NULL_RECORDER` so every hook is a no-op.
    """
    recorder = NULL_RECORDER
    recorder.count("engine.rounds")
    recorder.count("engine.readings", N_READINGS)
    with recorder.span("engine.window_advance"):
        context = problem.round_context(rp_indices)
    recorder.count("engine.partitions", len(partitions))
    with recorder.span("engine.recover_blocks"):
        recoveries = context.recover_blocks(
            rss, unique_blocks(partitions), method="matched", recorder=recorder
        )
    with recorder.span("engine.bic_scoring"):
        out = [
            [recoveries[block].location for block in partition]
            for partition in partitions
        ]
    recorder.count("engine.hypotheses", len(partitions))
    return out


def _bare_round(problem, rp_indices, partitions, rss):
    """The same round with every telemetry call stripped.

    Inlines ``recover_blocks``'s dedup + matched-filter dispatch (the
    default engine path) without a single recorder touch — the
    pre-instrumentation code the 3 % overhead budget is measured
    against.
    """
    context = problem.round_context(rp_indices)
    blocks = unique_blocks(partitions)
    rss_vector = np.asarray(rss, dtype=float).ravel()
    unique = []
    seen = set()
    for block in blocks:
        key = tuple(int(i) for i in block)
        if key not in seen:
            seen.add(key)
            unique.append(key)
    results = {}
    context._recover_blocks_matched(rss_vector, unique, results, 0.3)
    return [
        [results[block].location for block in partition]
        for partition in partitions
    ]


def test_null_recorder_overhead(trials):
    repeats = trials(5)
    problem, rp_indices, partitions, rss = _round_fixture()

    # Same outputs before timing anything.
    bare = _bare_round(problem, rp_indices, partitions, rss)
    instrumented = _null_recorder_round(problem, rp_indices, partitions, rss)
    for a_row, b_row in zip(bare, instrumented):
        for a, b in zip(a_row, b_row):
            assert a.distance_to(b) < 1e-12

    # Interleave the two variants so both sample the same scheduler
    # conditions; the per-variant minimum over many alternating passes is
    # what converges on the true floor (one-sided contention noise on the
    # ~15 ms round dwarfs the per-call no-op cost otherwise).
    bare_s = null_s = float("inf")
    for _ in range(max(5 * repeats, 25)):
        start = time.perf_counter()
        _bare_round(_fresh_problem(problem), rp_indices, partitions, rss)
        bare_s = min(bare_s, time.perf_counter() - start)
        start = time.perf_counter()
        _null_recorder_round(
            _fresh_problem(problem), rp_indices, partitions, rss
        )
        null_s = min(null_s, time.perf_counter() - start)
    ratio = null_s / bare_s
    payload = {
        "bare_s": bare_s,
        "null_recorder_s": null_s,
        "overhead_ratio": ratio,
    }
    _merge_artifact("engine_round_null_overhead", payload)
    print()
    print(
        f"null-recorder overhead: bare {bare_s*1e3:.2f} ms, instrumented "
        f"{null_s*1e3:.2f} ms (ratio {ratio:.4f})"
    )
    # The zero-overhead contract: within 3 % of the bare hot path.
    assert ratio <= 1.03


def test_orthogonalization_cached_vs_uncached(trials):
    repeats = trials(3)
    problem, rp_indices, partitions, rss = _round_fixture()
    blocks = unique_blocks(partitions)

    def uncached():
        context = _fresh_problem(problem).round_context(rp_indices)
        for block in blocks:
            rows = np.asarray(block, dtype=int)
            columns = context.candidate_columns(rows)
            A = context.sensing[np.ix_(rows, columns)]
            orthogonalize(A, rss[rows])

    def cached():
        context = _fresh_problem(problem).round_context(rp_indices)
        # Every hypothesis block hits the memoized factorization; the
        # second pass over the same blocks is the steady-state cost.
        for _ in range(2):
            for block in blocks:
                Q, T = context.orthogonalized_block(np.asarray(block, dtype=int))
                T @ rss[np.asarray(block, dtype=int)]

    uncached_s = _best_of(uncached, repeats) * 2  # match the two passes
    cached_s = _best_of(cached, repeats)
    speedup = uncached_s / cached_s
    payload = {
        "unique_blocks": len(blocks),
        "uncached_s": uncached_s,
        "cached_s": cached_s,
        "speedup": speedup,
    }
    _merge_artifact("orthogonalization", payload)
    print()
    print(
        f"orthogonalization: {len(blocks)} blocks x2 passes; uncached "
        f"{uncached_s*1e3:.1f} ms, cached {cached_s*1e3:.1f} ms ({speedup:.1f}x)"
    )
    assert speedup > 1.0


def test_fista_warm_vs_cold(trials):
    """Warm-started FISTA on a shifted batch vs solving it cold.

    The streaming scenario in miniature: round n + 1 re-solves the same
    systems with slightly moved observations (a window advancing under
    observation drift), seeded from round n's solution with adaptive
    restart — the exact knobs ``recover_location`` wires up for warm
    blocks.
    """
    repeats = trials(5)
    perturbation = 0.002
    A, Y, k = _l1_fixture()
    rng = ensure_rng(77)
    shifted = Y + perturbation * rng.normal(size=Y.shape)
    theta_prev = l1_solve_batch(A, Y, method="fista")

    cold_sweeps = np.zeros(k, dtype=np.int64)
    warm_sweeps = np.zeros(k, dtype=np.int64)
    cold_s = _best_of(
        lambda: l1_solve_batch(
            A, shifted, method="fista", sweep_counts=cold_sweeps
        ),
        repeats,
    )
    warm_s = _best_of(
        lambda: l1_solve_batch(
            A, shifted, method="fista", theta0=theta_prev,
            adaptive_restart=True, sweep_counts=warm_sweeps,
        ),
        repeats,
    )
    speedup = cold_s / warm_s
    payload = {
        "rhs": k,
        "perturbation_scale": perturbation,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_sweeps": int(cold_sweeps.sum()),
        "warm_sweeps": int(warm_sweeps.sum()),
        "speedup": speedup,
    }
    _merge_artifact("fista_warm", payload)
    print()
    print(
        f"fista warm: {k} RHS shifted by {perturbation}; cold "
        f"{cold_s*1e3:.1f} ms ({int(cold_sweeps.sum())} sweeps), warm "
        f"{warm_s*1e3:.1f} ms ({int(warm_sweeps.sum())} sweeps) "
        f"({speedup:.1f}x)"
    )
    assert int(warm_sweeps.sum()) < int(cold_sweeps.sum())
    assert speedup >= 1.2


# Streaming fixture: a vehicle looping a rectangular route.  The lap
# holds 112 readings at 5 m spacing (perimeter 560 m), so with step 7
# every lap is 16 whole rounds and revisited rounds subsample the very
# same readings — the repeated-traversal steady state crowdsensing
# converges to, where the cross-round caches can serve entire blocks.
STREAM_LAPS = 3
STREAM_LAP_READINGS = 112
STREAM_RADIUS_M = 100.0


def _stream_fixture():
    """(channel, trace, config) for the repeated-traversal stream bench."""
    channel = PathLossModel(shadowing_sigma_db=0.0)
    aps = [Point(30.0, 30.0), Point(150.0, 30.0), Point(90.0, 120.0)]
    loop = Trajectory.rectangle(10.0, 10.0, 160.0, 140.0)
    spacing = loop.length / STREAM_LAP_READINGS
    lap = []
    for i in range(STREAM_LAP_READINGS):
        position = loop.position_at(spacing * i)
        distances = [position.distance_to(ap) for ap in aps]
        nearest = min(distances)
        assert nearest <= STREAM_RADIUS_M  # every fix is audible
        lap.append((position, float(channel.mean_rss_dbm(nearest))))
    trace = [
        RssMeasurement(
            rss_dbm=rss, position=position, timestamp=float(k), ttl=1e9
        )
        for k, (position, rss) in enumerate(
            entry for _ in range(STREAM_LAPS) for entry in lap
        )
    ]
    config = EngineConfig(
        window=WindowConfig(size=29, step=7),
        readings_per_round=5,
        max_aps_per_round=3,
        communication_radius_m=STREAM_RADIUS_M,
        lattice_length_m=LATTICE_M,
        snr_db=None,
        solver="fista",
    )
    grid = Grid(
        box=BoundingBox(-50.0, -50.0, 230.0, 200.0),
        lattice_length=LATTICE_M,
    )
    return channel, trace, config, grid


def test_engine_stream_vs_batch_recompute(trials):
    """Streaming engine with cross-round caches vs recomputing per round.

    The baseline processes the identical reading stream with the caches
    and warm starts off — every round recomputed from scratch, the batch
    sliding-window behaviour before the streaming engine landed.
    """
    repeats = trials(1)
    channel, trace, config, grid = _stream_fixture()
    recompute_config = dataclasses.replace(
        config, cross_round_cache=False, solver_warm_start=False
    )

    def run(cfg, recorder=None):
        engine = StreamingCsEngine(
            channel, cfg, grid=grid, rng=13, recorder=recorder
        )
        for measurement in trace:
            engine.push(measurement)
        return engine.finalize()

    recompute_s = _best_of(lambda: run(recompute_config), repeats)
    streaming_s = _best_of(lambda: run(config), repeats)

    # One instrumented pass for the cache story behind the number.
    recorder = InMemoryRecorder()
    streamed = run(config, recorder=recorder)
    recomputed = run(recompute_config)
    # Warm starts may move borderline hypotheses within the solver
    # tolerance; the recovered AP count stays put on this fixture.
    assert abs(len(streamed.estimates) - len(recomputed.estimates)) <= 1
    counters = recorder.counters

    speedup = recompute_s / streaming_s
    payload = {
        "laps": STREAM_LAPS,
        "readings": len(trace),
        "rounds": int(counters["stream.rounds.emitted"]),
        "batch_recompute_s": recompute_s,
        "streaming_s": streaming_s,
        "solve_cache_hits": int(counters.get("stream.solve.hits", 0)),
        "solve_cache_misses": int(counters.get("stream.solve.misses", 0)),
        "speedup": speedup,
    }
    _merge_artifact("engine_stream", payload)
    print()
    print(
        f"engine stream: {len(trace)} readings / "
        f"{payload['rounds']} rounds over {STREAM_LAPS} laps; recompute "
        f"{recompute_s*1e3:.0f} ms, streaming {streaming_s*1e3:.0f} ms "
        f"({speedup:.1f}x; {payload['solve_cache_hits']} block solves "
        f"served from cache)"
    )
    # Acceptance: >= 2x over the batch sliding-window recompute.
    assert speedup >= 2.0
