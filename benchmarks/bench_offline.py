"""Benchmark: the batched world/offline paths vs the seed's looped code.

Four sections over the crowdsensing halves:

1. **collector sweep** — a drive sampled through one
   :meth:`World.rss_matrix` pass vs the seed's per-fix scan (brute-force
   audibility over every AP plus one scalar ``mean_rss_from`` call per
   audible AP).  Traces are asserted bit-identical before timing.
2. **offline round** — label routing + submission + aggregation across
   six segments: the seed's ``O(segments)`` pool scan,
   ``vehicle_order.index`` lookups, per-call ``task_id_to_index``
   rebuilds, and per-vehicle report-log scans vs the precomputed-index
   server paths.  Label matrices, reliabilities, and fused records are
   asserted equal before timing.
3. **download serving** — per-call :class:`DownloadResponse` rebuilds vs
   the snapshot cache that persists until the next publish.
4. **transport round** — the six-segment label phase with both variants
   speaking encoded wire frames: handing each frame straight to the
   endpoint vs routing it through
   :class:`repro.runtime.transport.InProcessTransport`.  The runtime's
   transport seam must add **< 5 %** to the wire-speaking round.

The measured timings land in ``BENCH_offline.json`` (committed as the
repo's offline perf baseline; CI uploads it as a workflow artifact).
``REPRO_BENCH_TRIALS`` scales the repeat count; every timing is
best-of-``trials``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.crowd.inference import kos_inference
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    LabelSubmission,
    UploadReport,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig, _aggregate_round
from repro.runtime.transport import InProcessTransport
from repro.mobility.models import PathFollower, drive_schedule
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement, RssTrace
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import World, place_aps_randomly
from repro.geo.trajectory import Trajectory
from repro.util.rng import ensure_rng

ARTIFACT = Path("BENCH_offline.json")

#: Collector sweep scale: a dense city deployment and a long drive.
N_APS = 1600
N_FIXES = 600
#: Offline round scale: six segments, a large per-segment fleet of
#: which a subset actively maps APs (the rest only verify labels).
N_SEGMENTS = 6
VEHICLES_PER_SEGMENT = 400
MAPPERS_PER_SEGMENT = 40
N_DOWNLOADS = 3000


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_artifact(section: str, payload: dict) -> None:
    """Merge one benchmark's results into the shared JSON artifact."""
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[section] = payload
    data["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "scale": {
            "n_aps": N_APS,
            "n_fixes": N_FIXES,
            "n_segments": N_SEGMENTS,
            "vehicles_per_segment": VEHICLES_PER_SEGMENT,
            "n_downloads": N_DOWNLOADS,
        },
    }
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# -- section 1: collector sweep -------------------------------------------


def _sweep_world(seed: int = 2014) -> World:
    aps = place_aps_randomly(
        N_APS,
        BoundingBox(0, 0, 1200, 900),
        min_separation_m=10.0,
        radio_range_m=80.0,
        rng=seed,
    )
    return World(
        access_points=aps, channel=PathLossModel(shadowing_sigma_db=2.0)
    )


def _sweep_fixes(config: CollectorConfig):
    follower = PathFollower(Trajectory.rectangle(40, 40, 1160, 860), 12.0)
    return drive_schedule(follower, float(N_FIXES), config.sample_period_s)


def _looped_collect(world: World, config: CollectorConfig, rng) -> RssTrace:
    """The seed's per-fix path: brute-force audibility, scalar RSS.

    Exactly what ``measure_at`` cost before the spatial index and the
    batched ``rss_matrix`` pass landed: one ``in_range`` test against
    every AP in the deployment per fix, then one scalar
    ``mean_rss_from`` call per audible AP.  RNG draw order matches the
    fast path, so the traces must come out bit-identical.
    """
    collector = RssCollector(world, config, rng=rng)
    trace = RssTrace()
    for fix in _sweep_fixes(config):
        audible = [
            ap
            for ap in world.access_points
            if ap.in_range(fix.position)
            and ap.position.distance_to(fix.position)
            <= config.communication_radius_m
        ]
        if not audible:
            continue
        mean_rss = np.array(
            [world.mean_rss_from(ap.ap_id, fix.position) for ap in audible]
        )
        chosen = audible[collector._choose_audible(mean_rss)]
        rss = world.sample_rss_from(
            chosen.ap_id, fix.position, rng=collector._rng
        )
        trace.append(
            RssMeasurement(
                rss_dbm=rss,
                position=collector._recorded_position(fix.position),
                timestamp=float(fix.time),
                ttl=config.ttl_s,
                source_ap=chosen.ap_id,
            )
        )
    return trace


def _batched_collect(world: World, config: CollectorConfig, rng) -> RssTrace:
    collector = RssCollector(world, config, rng=rng)
    follower = PathFollower(Trajectory.rectangle(40, 40, 1160, 860), 12.0)
    return collector.collect_along(follower, duration_s=float(N_FIXES))


def test_collector_sweep_batched_vs_looped(trials):
    repeats = trials(3)
    world = _sweep_world()
    config = CollectorConfig(
        sample_period_s=1.0, communication_radius_m=80.0, gps_sigma_m=1.5
    )

    looped = _looped_collect(world, config, rng=11)
    batched = _batched_collect(world, config, rng=11)
    assert len(looped) == len(batched) > 300
    for a, b in zip(looped, batched):
        assert a == b  # bit-identical measurements

    looped_s = _best_of(lambda: _looped_collect(world, config, rng=11), repeats)
    batched_s = _best_of(
        lambda: _batched_collect(world, config, rng=11), repeats
    )
    speedup = looped_s / batched_s
    payload = {
        "n_aps": N_APS,
        "n_fixes": N_FIXES,
        "n_readings": len(batched),
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": speedup,
    }
    _merge_artifact("collector_sweep", payload)
    print()
    print(
        f"collector sweep: {N_FIXES} fixes x {N_APS} APs; looped "
        f"{looped_s*1e3:.1f} ms, batched {batched_s*1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    # Acceptance: >= 5x on the collector sweep.
    assert speedup >= 5.0


# -- section 2: offline round ---------------------------------------------


def _offline_grid() -> Grid:
    return Grid(box=BoundingBox(0, 0, 1680, 160), lattice_length=8.0)


def _segment_ids():
    return [f"seg-{k}" for k in range(N_SEGMENTS)]


def _offline_server(seed: int = 42) -> CrowdServer:
    """A populated server: disjoint per-segment fleets.

    The first :data:`MAPPERS_PER_SEGMENT` vehicles of each segment each
    report one AP at a distinct, well-separated location; the rest of
    the fleet uploads empty scans (they still join the labeling round,
    which is exactly the seed's worst case: every submission paid the
    ``O(V)`` index scan and the ``O(T)`` dict rebuild).
    """
    server = CrowdServer(ServerConfig(workers_per_task=3), rng=seed)
    for segment_id in _segment_ids():
        server.register_segment(segment_id, _offline_grid())
    for k, segment_id in enumerate(_segment_ids()):
        for v in range(VEHICLES_PER_SEGMENT):
            aps = ()
            if v < MAPPERS_PER_SEGMENT:
                aps = (ApRecord(x=20.0 + 40.0 * v, y=40.0),)
            server.receive_report(
                UploadReport(
                    vehicle_id=f"veh-{k}-{v}",
                    segment_id=segment_id,
                    timestamp=float(v % 3),
                    aps=aps,
                    lattice_length_m=8.0,
                )
            )
    return server


def _round_submissions(assignments):
    """Deterministic parity labels for every assigned task."""
    out = {}
    for segment_id, messages in assignments.items():
        out[segment_id] = [
            LabelSubmission(
                vehicle_id=vehicle_id,
                labels=tuple(
                    (task_id, 1 if task_id % 2 == 0 else -1)
                    for task_id, _segment, _pattern in message.tasks
                ),
            )
            for vehicle_id, message in messages.items()
        ]
    return out


def _legacy_route(pools, submission):
    """The seed's wire routing: scan every open pool for the vehicle."""
    for segment_id, pool in pools.items():
        if submission.vehicle_id in pool.vehicle_order:
            return segment_id
    raise KeyError(f"no open round awaits {submission.vehicle_id!r}")


def _legacy_submit(pool, submission):
    """The seed's submit_labels: O(V) index scan + O(T) dict rebuild."""
    worker_index = pool.vehicle_order.index(submission.vehicle_id)
    expected = set(pool.assignment.tasks_of_worker.get(worker_index, []))
    answered = submission.as_dict()
    task_id_to_index = {task_id: i for i, (task_id, _) in enumerate(pool.tasks)}
    for task_id, label in answered.items():
        task_index = task_id_to_index[task_id]
        if task_index not in expected:
            raise ValueError(f"unassigned task {task_id}")
        pool.labels[task_index, worker_index] = label
    missing = expected - {task_id_to_index[t] for t in answered}
    if missing:
        raise ValueError(f"{len(missing)} assigned tasks unanswered")
    pool.submissions_seen[submission.vehicle_id] = True


def _legacy_latest(reports, vehicle_id):
    """The seed's latest_report_of: one full report-log scan per call."""
    candidates = [r for r in reports if r.vehicle_id == vehicle_id]
    if not candidates:
        return None
    return max(candidates, key=lambda r: r.timestamp)


def _legacy_aggregate(pool, store, config):
    """The seed's aggregate math (KOS + fusion), compute-only."""
    max_iterations = (
        100 if pool.assignment.n_workers >= config.min_workers_for_kos else 0
    )
    result = kos_inference(
        pool.labels, pool.assignment, max_iterations=max_iterations
    )
    reliabilities = {
        vehicle_id: float(result.worker_reliability[worker_index])
        for worker_index, vehicle_id in enumerate(pool.vehicle_order)
    }
    reports = []
    for vehicle_id in pool.vehicle_order:
        latest = _legacy_latest(store.reports, vehicle_id)
        if latest is None:
            continue
        reports.append(
            VehicleReport(
                vehicle_id=vehicle_id,
                ap_locations=tuple(r.to_point() for r in latest.aps),
                reliability=reliabilities[vehicle_id],
            )
        )
    fused = weighted_centroid_fusion(
        reports,
        alignment_radius_m=config.fusion_alignment_radius_m,
        min_support=config.fusion_min_support,
    )
    records = tuple(
        ApRecord(x=ap.location.x, y=ap.location.y, credits=ap.total_weight)
        for ap in fused
    )
    return reliabilities, records


def _run_legacy_round(server, submissions):
    results = {}
    for segment_id in _segment_ids():
        for submission in submissions[segment_id]:
            routed = _legacy_route(server._pools, submission)
            _legacy_submit(server._pools[routed], submission)
    for segment_id in _segment_ids():
        results[segment_id] = _legacy_aggregate(
            server._pools[segment_id],
            server.database.segment(segment_id),
            server.config,
        )
    return results


def _run_fast_round(server, submissions):
    results = {}
    rng = ensure_rng(0)  # KOS never draws here (random_init=False)
    for segment_id in _segment_ids():
        for submission in submissions[segment_id]:
            routed = server._open_rounds_by_vehicle[submission.vehicle_id][0]
            server.submit_labels(routed, submission)
    for segment_id in _segment_ids():
        outcome = _aggregate_round(server._aggregate_job(segment_id, rng))
        results[segment_id] = (dict(outcome.reliabilities), outcome.records)
    return results


def test_offline_round_indexed_vs_looped(trials):
    repeats = trials(3)
    legacy_server = _offline_server()
    fast_server = _offline_server()
    segment_ids = _segment_ids()
    legacy_assignments = legacy_server.open_rounds(segment_ids)
    fast_assignments = fast_server.open_rounds(segment_ids)
    assert legacy_assignments == fast_assignments  # same seed, same rounds
    submissions = _round_submissions(fast_assignments)

    legacy = _run_legacy_round(legacy_server, submissions)
    fast = _run_fast_round(fast_server, submissions)
    n_tasks = sum(len(p.tasks) for p in fast_server._pools.values())
    for segment_id in segment_ids:
        assert legacy[segment_id][0] == fast[segment_id][0]  # reliabilities
        assert legacy[segment_id][1] == fast[segment_id][1]  # fused records
        assert np.array_equal(
            legacy_server._pools[segment_id].labels,
            fast_server._pools[segment_id].labels,
        )

    looped_s = _best_of(
        lambda: _run_legacy_round(legacy_server, submissions), repeats
    )
    fast_s = _best_of(lambda: _run_fast_round(fast_server, submissions), repeats)
    speedup = looped_s / fast_s
    payload = {
        "n_segments": N_SEGMENTS,
        "n_vehicles": N_SEGMENTS * VEHICLES_PER_SEGMENT,
        "n_tasks": n_tasks,
        "looped_s": looped_s,
        "indexed_s": fast_s,
        "speedup": speedup,
    }
    _merge_artifact("offline_round", payload)
    print()
    print(
        f"offline round: {N_SEGMENTS} segments x {VEHICLES_PER_SEGMENT} "
        f"vehicles, {n_tasks} tasks; looped {looped_s*1e3:.1f} ms, "
        f"indexed {fast_s*1e3:.1f} ms ({speedup:.1f}x)"
    )
    # Acceptance: >= 3x on the multi-segment round.
    assert speedup >= 3.0


# -- section 3: download serving ------------------------------------------


def _legacy_snapshot(store) -> DownloadResponse:
    """The seed's snapshot: a fresh DownloadResponse per call."""
    return DownloadResponse(
        segment_id=store.segment_id,
        aps=tuple(store.fused_aps),
        generation=store.generation,
    )


def test_download_serving_cached_vs_rebuilt(trials):
    repeats = trials(3)
    server = _offline_server()
    segment_ids = _segment_ids()
    assignments = server.open_rounds(segment_ids)
    for segment_id, submissions in _round_submissions(assignments).items():
        for submission in submissions:
            server.submit_labels(segment_id, submission)
    server.aggregate_rounds(segment_ids)
    stores = [server.database.segment(s) for s in segment_ids]
    assert all(len(store.fused_aps) >= 1 for store in stores)

    def rebuilt():
        for i in range(N_DOWNLOADS):
            _legacy_snapshot(stores[i % N_SEGMENTS])

    def cached():
        for i in range(N_DOWNLOADS):
            server.download(segment_ids[i % N_SEGMENTS])

    assert _legacy_snapshot(stores[0]) == server.download(segment_ids[0])
    rebuilt_s = _best_of(rebuilt, repeats)
    cached_s = _best_of(cached, repeats)
    speedup = rebuilt_s / cached_s
    payload = {
        "n_downloads": N_DOWNLOADS,
        "fused_aps": sum(len(store.fused_aps) for store in stores),
        "rebuilt_s": rebuilt_s,
        "cached_s": cached_s,
        "speedup": speedup,
    }
    _merge_artifact("download_serving", payload)
    print()
    print(
        f"download serving: {N_DOWNLOADS} lookups; rebuilt "
        f"{rebuilt_s*1e3:.1f} ms, cached {cached_s*1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 2.0


# -- section 4: transport seam ---------------------------------------------


def _wire_label_frames(assignments):
    """Pre-encoded, segment-addressed label frames for every assignment.

    Encoding happens once, outside the timed region: the section
    measures what the transport seam adds to *serving* a wire round, and
    both variants consume byte-identical frames.
    """
    frames = []
    for segment_id, messages in assignments.items():
        for vehicle_id, message in messages.items():
            frames.append(
                encode_message(
                    LabelSubmission(
                        vehicle_id=vehicle_id,
                        labels=tuple(
                            (task_id, 1 if task_id % 2 == 0 else -1)
                            for task_id, _segment, _pattern in message.tasks
                        ),
                        segment_id=segment_id,
                    )
                )
            )
    return frames


def test_transport_overhead_on_wire_round(trials):
    """The in-process transport adds < 5 % to a six-segment wire round.

    Both variants speak the full wire protocol — every frame crosses the
    codec at the endpoint — so the comparison isolates exactly what the
    ``Transport`` seam costs over calling the endpoint directly.  Label
    resubmission is idempotent (labels are overwritten in place), so the
    round can be replayed for best-of-``trials`` timing without
    reopening it; aggregation stays outside the timed region.
    """
    repeats = trials(3)
    server = _offline_server()
    assignments = server.open_rounds(_segment_ids())
    frames = _wire_label_frames(assignments)
    transport = InProcessTransport(server)

    def direct_round():
        for frame in frames:
            assert server.handle_wire_message(frame) is None

    def transported_round():
        for frame in frames:
            assert transport.request(frame) is None

    direct_round()
    transported_round()
    direct_s = _best_of(direct_round, repeats)
    transport_s = _best_of(transported_round, repeats)
    overhead = transport_s / direct_s - 1.0
    payload = {
        "n_frames": len(frames),
        "direct_s": direct_s,
        "transport_s": transport_s,
        "overhead": overhead,
    }
    _merge_artifact("transport_round", payload)
    print()
    print(
        f"transport round: {len(frames)} wire frames; direct "
        f"{direct_s*1e3:.1f} ms, transported {transport_s*1e3:.1f} ms "
        f"({overhead*100:+.1f}%)"
    )
    # Acceptance: the transport seam costs < 5% of the wire round.
    assert transport_s <= 1.05 * direct_s
