"""Benchmarks: robustness extensions beyond the paper's noise model.

GPS fix noise and spatially correlated (Gudmundson) shadowing are the
two realistic stressors the paper's i.i.d.-noise evaluation omits; these
sweeps quantify how the engine's accuracy claims degrade under them.
"""

from repro.experiments.robustness import (
    run_correlated_shadowing_sweep,
    run_gps_noise_sweep,
)


def test_robustness_gps_noise(run_once, trials):
    table = run_once(
        run_gps_noise_sweep, n_trials=trials(2), seed=4001
    )
    print()
    print(table.render())
    rows = {row["gps_sigma_m"]: row for row in table}
    # Meter-level GPS noise is absorbed (consumer GPS is ~3–5 m).
    assert rows[2.0]["mean_error_m"] < rows[0.0]["mean_error_m"] + 3.0
    # 20 m noise visibly degrades accuracy or counting.
    assert (
        rows[20.0]["mean_error_m"] > rows[0.0]["mean_error_m"]
        or rows[20.0]["counting_error"] > rows[0.0]["counting_error"]
    )


def test_robustness_correlated_shadowing(run_once, trials):
    table = run_once(
        run_correlated_shadowing_sweep, n_trials=trials(2), seed=4002
    )
    print()
    print(table.render())
    sigmas = table.column("shadowing_sigma_db")
    errors = table.column("mean_error_m")
    # Correlated fades do not average out: heavier shadowing is worse
    # (or at least never better) across the sweep's ends.
    assert errors[-1] >= errors[0] - 1.0
    # At the paper's 0.5 dB the engine stays within a few meters.
    assert errors[0] < 8.0
