"""Benchmark: rush-hour load against the multi-process serving tier.

A closed-loop harness drives tens of thousands of simulated vehicle
endpoints through the v2 wire protocol against a
:class:`~repro.runtime.serving.ServingCluster`, across a 1/2/4/8
shard-process scaling curve (``REPRO_BENCH_SHARDS``):

1. **ingest** — every vehicle uploads once; frames are grouped by the
   cluster's placement table and pipelined over one persistent
   connection per shard, so the shards' WAL lanes (block format,
   ``O_DIRECT|O_DSYNC``) commit concurrently;
2. **upload latency** — a separate probe connection measures individual
   request round-trips (p50/p95/p99) while the ingest state is hot;
3. **rounds** — crowdsourcing rounds over mapper-populated segments:
   batched ``open_rounds`` over the control plane, label submissions
   pipelined per shard, batched ``aggregate_rounds``.

The measured numbers land in ``BENCH_serving.json`` together with a
device calibration section (single- vs multi-lane fsync throughput):
on a one-core container the round phase's compute cannot scale across
processes, and even the ingest phase is bounded by the device's
aggregate flush ceiling rather than by the shard count — the committed
curve is the honest measurement, and the calibration numbers say how
much headroom the device itself offered.  CI runs a shrunk
single-trial configuration (see ``REPRO_BENCH_*`` below) and uploads
the JSON plus the per-shard telemetry report as artifacts.

Environment knobs:

* ``REPRO_BENCH_VEHICLES`` — ingest endpoints (default 20000);
* ``REPRO_BENCH_SEGMENTS`` — segments per phase (default 16);
* ``REPRO_BENCH_ROUNDS``   — crowdsourcing rounds (default 2);
* ``REPRO_BENCH_SHARDS``   — comma-separated curve (default 1,2,4,8);
* ``REPRO_BENCH_PROBES``   — latency probe count (default 200);
* ``REPRO_BENCH_MIN_SCALING`` — assertion floor on the max-shard
  ingest speedup vs 1 shard (default 0.5: a catastrophic-regression
  guard, deliberately far below the committed measurement so CI boxes
  with exotic fsync behaviour never flake).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import socket
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.protocol import (
    ApRecord,
    LabelSubmission,
    UploadReport,
    encode_message,
)
from repro.middleware.server import ServerConfig
from repro.runtime.net import decode_frames, encode_frame
from repro.runtime.serving import ServingCluster
from repro.runtime.transport import TransportError

#: Minutes of wall clock at the default 20k-vehicle scale, so the
#: generic opt-in benchmark path skips it; CI runs the shrunk rush hour
#: in its dedicated `serving` job (see .github/workflows/ci.yml).
pytestmark = pytest.mark.slow

ARTIFACT = Path("BENCH_serving.json")
TELEMETRY_ARTIFACT = Path("BENCH_serving_telemetry.json")

SEED = 20260808
MAPPERS_PER_SEGMENT = 8
PIPELINE_CHUNK = 128


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def _shard_curve() -> list:
    raw = os.environ.get("REPRO_BENCH_SHARDS", "1,2,4,8")
    curve = sorted({int(part) for part in raw.split(",") if part.strip()})
    if not curve or curve[0] < 1:
        raise ValueError(f"REPRO_BENCH_SHARDS must list counts >= 1: {raw!r}")
    return curve


def _grid(index: int) -> Grid:
    return Grid(
        box=BoundingBox(index * 100.0, 0.0, index * 100.0 + 100.0, 80.0),
        lattice_length=10.0,
    )


def _upload_frame(vehicle_id: str, segment_id: str, aps=()) -> str:
    return encode_message(
        UploadReport(
            vehicle_id=vehicle_id,
            segment_id=segment_id,
            timestamp=1.0,
            aps=tuple(aps),
            lattice_length_m=10.0,
        )
    )


def _label_for(vehicle_id: str, task_id: int) -> int:
    return 1 if (task_id + len(vehicle_id)) % 2 == 0 else -1


# -- pipelined wire client ---------------------------------------------------


def _pipeline(address, frames, failures):
    """Send ``frames`` over one connection, ``PIPELINE_CHUNK`` at a time.

    Writes a chunk of length-prefixed frames in one ``sendall``, then
    drains exactly that many reply frames before the next chunk — deep
    enough to keep the shard's serve loop busy, shallow enough that the
    tiny ack replies never back up the kernel buffers.  Any non-ack
    reply (an error or busy frame) is appended to ``failures``.
    """
    host, port = address
    with socket.create_connection((host, port), timeout=60.0) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        for start in range(0, len(frames), PIPELINE_CHUNK):
            chunk = frames[start : start + PIPELINE_CHUNK]
            sock.sendall(b"".join(encode_frame(f) for f in chunk))
            buffer = b""
            replies = []
            while len(replies) < len(chunk):
                data = sock.recv(65536)
                if not data:
                    raise TransportError("shard closed mid-pipeline")
                buffer += data
                decoded, buffer = decode_frames(buffer)
                replies.extend(decoded)
            failures.extend(r for r in replies if r is not None)


def _blast(cluster, frames_by_shard):
    """Pipeline each shard's frames concurrently; return (wall_s, failures)."""
    failures: list = []
    threads = [
        threading.Thread(
            target=_pipeline,
            args=(cluster.shard_address(index), frames, failures),
            daemon=True,
        )
        for index, frames in frames_by_shard.items()
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, failures


# -- device calibration ------------------------------------------------------


def _fsync_lane(path, n_writes, queue):
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    block = b"\x5a" * 4096
    started = time.perf_counter()
    for _ in range(n_writes):
        os.write(fd, block)
        os.fsync(fd)
    queue.put(time.perf_counter() - started)
    os.close(fd)


def _calibrate_device(directory: Path, n_writes: int = 200) -> dict:
    """4 KB append+fsync throughput for 1 and 4 concurrent lanes.

    This is the physical context for the scaling curve: the ratio of
    the two rates is the most the WAL-bound ingest phase could ever
    scale on this device, regardless of shard count.
    """
    context = multiprocessing.get_context("fork")

    def run(lanes: int) -> float:
        queue = context.Queue()
        workers = [
            context.Process(
                target=_fsync_lane,
                args=(directory / f"lane-{lanes}-{i}", n_writes, queue),
            )
            for i in range(lanes)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - started
        for _ in workers:
            queue.get()
        return lanes * n_writes / wall

    single = run(1)
    four = run(4)
    return {
        "writes_per_lane": n_writes,
        "single_lane_fsyncs_per_s": round(single, 1),
        "four_lane_fsyncs_per_s": round(four, 1),
        "lane_scaling": round(four / single, 3),
    }


# -- one topology ------------------------------------------------------------


def _run_topology(n_shards, base_dir, n_vehicles, n_segments, n_rounds):
    ingest_segments = [f"ing-{i}" for i in range(n_segments)]
    round_segments = [f"rnd-{i}" for i in range(n_segments)]

    with ServingCluster(
        base_dir / f"shards-{n_shards}",
        ServerConfig(),
        n_shards=n_shards,
        rng=SEED,
        wal_format="block",
    ) as cluster:
        for index, segment_id in enumerate(ingest_segments + round_segments):
            cluster.register_segment(segment_id, _grid(index))
            # Rebalance round-robin over the shards via the live handoff
            # path: hash placement is only statistically even, and a
            # lopsided curve would measure one WAL lane, not n_shards.
            cluster.handoff_segment(segment_id, index % n_shards)

        # -- phase 1: rush-hour ingest ----------------------------------
        frames_by_shard: dict = {}
        for v in range(n_vehicles):
            segment_id = ingest_segments[v % len(ingest_segments)]
            frames_by_shard.setdefault(
                cluster.shard_index_of(segment_id), []
            ).append(_upload_frame(f"veh-{v}", segment_id))
        ingest_wall, failures = _blast(cluster, frames_by_shard)
        assert not failures, f"ingest rejected frames: {failures[:3]}"

        # -- phase 2: upload latency probe ------------------------------
        n_probes = _env_int("REPRO_BENCH_PROBES", 200)
        probe_segment = ingest_segments[0]
        host, port = cluster.shard_address(
            cluster.shard_index_of(probe_segment)
        )
        latencies = []
        with socket.create_connection((host, port), timeout=60.0) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            for p in range(n_probes):
                frame = encode_frame(
                    _upload_frame(f"probe-{p}", probe_segment)
                )
                started = time.perf_counter()
                sock.sendall(frame)
                buffer = b""
                while True:
                    data = sock.recv(65536)
                    if not data:
                        raise TransportError("shard closed mid-probe")
                    buffer += data
                    decoded, buffer = decode_frames(buffer)
                    if decoded:
                        break
                latencies.append((time.perf_counter() - started) * 1e3)
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99])

        # -- phase 3: crowdsourcing rounds ------------------------------
        for index, segment_id in enumerate(round_segments):
            base_x = (n_segments + index) * 100.0
            mapper_frames: dict = {}
            for m in range(MAPPERS_PER_SEGMENT):
                mapper_frames.setdefault(
                    cluster.shard_index_of(segment_id), []
                ).append(
                    _upload_frame(
                        f"map-{index}-{m}",
                        segment_id,
                        aps=(
                            ApRecord(x=base_x + 15.0 + 8.0 * m, y=30.0),
                            ApRecord(x=base_x + 55.0, y=45.0 + 3.0 * m),
                        ),
                    )
                )
            _, mapper_failures = _blast(cluster, mapper_frames)
            assert not mapper_failures

        rounds_started = time.perf_counter()
        for _ in range(n_rounds):
            assignments = cluster.open_rounds(round_segments)
            label_frames: dict = {}
            for segment_id in round_segments:
                shard = cluster.shard_index_of(segment_id)
                for vehicle_id, message in assignments[segment_id].items():
                    label_frames.setdefault(shard, []).append(
                        encode_message(
                            LabelSubmission(
                                vehicle_id=vehicle_id,
                                labels=tuple(
                                    (tid, _label_for(vehicle_id, tid))
                                    for tid, _, _ in message.tasks
                                ),
                                segment_id=segment_id,
                            )
                        )
                    )
            _, label_failures = _blast(cluster, label_frames)
            assert not label_failures, (
                f"labels rejected: {label_failures[:3]}"
            )
            cluster.aggregate_rounds(round_segments)
        rounds_wall = time.perf_counter() - rounds_started

        telemetry = cluster.telemetry_report()

    total_uploads = n_vehicles + n_probes
    total_rounds = len(round_segments) * n_rounds
    return {
        "ingest": {
            "uploads": n_vehicles,
            "wall_s": round(ingest_wall, 4),
            "uploads_per_s": round(n_vehicles / ingest_wall, 1),
        },
        "latency_ms": {
            "probes": n_probes,
            "p50": round(float(p50), 3),
            "p95": round(float(p95), 3),
            "p99": round(float(p99), 3),
        },
        "rounds": {
            "segment_rounds": total_rounds,
            "wall_s": round(rounds_wall, 4),
            "rounds_per_s": round(total_rounds / rounds_wall, 2),
        },
        "uploads_total": total_uploads,
        "telemetry": telemetry,
    }


# -- the benchmark -----------------------------------------------------------


def test_rush_hour_scaling_curve(trials):
    repeats = trials(1)
    n_vehicles = _env_int("REPRO_BENCH_VEHICLES", 20000)
    n_segments = _env_int("REPRO_BENCH_SEGMENTS", 16)
    n_rounds = _env_int("REPRO_BENCH_ROUNDS", 2)
    curve = _shard_curve()

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        base_dir = Path(tmp)
        device = _calibrate_device(base_dir)
        topologies: dict = {}
        telemetry: dict = {}
        for n_shards in curve:
            best = None
            for repeat in range(repeats):
                result = _run_topology(
                    n_shards,
                    base_dir / f"r{repeat}",
                    n_vehicles,
                    n_segments,
                    n_rounds,
                )
                if (
                    best is None
                    or result["ingest"]["uploads_per_s"]
                    > best["ingest"]["uploads_per_s"]
                ):
                    best = result
            telemetry[str(n_shards)] = best.pop("telemetry")
            topologies[str(n_shards)] = best

    base = topologies[str(curve[0])]
    scaling = {
        "ingest_vs_1shard": {
            str(n): round(
                topologies[str(n)]["ingest"]["uploads_per_s"]
                / base["ingest"]["uploads_per_s"],
                3,
            )
            for n in curve
        },
        "rounds_vs_1shard": {
            str(n): round(
                topologies[str(n)]["rounds"]["rounds_per_s"]
                / base["rounds"]["rounds_per_s"],
                3,
            )
            for n in curve
        },
    }

    payload = {
        "device": device,
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "vehicles": n_vehicles,
            "segments_per_phase": n_segments,
            "rounds": n_rounds,
            "mappers_per_segment": MAPPERS_PER_SEGMENT,
            "wal_format": "block",
            "shard_curve": curve,
            "trials": repeats,
        },
        "topologies": topologies,
        "scaling": scaling,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    TELEMETRY_ARTIFACT.write_text(
        json.dumps(telemetry, indent=2, sort_keys=True) + "\n"
    )

    # Sanity invariants — exact, environment-independent.
    for result in topologies.values():
        lat = result["latency_ms"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"]
        assert result["ingest"]["uploads_per_s"] > 0
        assert result["rounds"]["rounds_per_s"] > 0

    # The scaling guard is a floor, not the committed measurement: on a
    # one-core container only the WAL lanes can overlap, so the honest
    # curve tops out well below the shard count (see the device
    # calibration section for the ceiling the disk itself imposed).
    if len(curve) > 1:
        floor = float(os.environ.get("REPRO_BENCH_MIN_SCALING", "0.5"))
        top = scaling["ingest_vs_1shard"][str(curve[-1])]
        assert top >= floor, (
            f"{curve[-1]}-shard ingest scaled {top}x vs 1 shard, "
            f"below the {floor}x regression floor"
        )
