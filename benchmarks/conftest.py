"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark runs its experiment exactly once under pytest-benchmark
(``rounds=1``) — these are reproduction harnesses whose value is the
printed table, not statistical timing — and asserts the paper's
qualitative *shape* on the result.

Set ``REPRO_BENCH_TRIALS`` to average over more Monte-Carlo trials (the
defaults keep the full suite to a few minutes).
"""

from __future__ import annotations

import os

import pytest


def pytest_collection_modifyitems(items):
    """Tag every benchmark item so the opt-in path is explicit.

    Tier-1 verification (`pytest -x -q`) collects only ``tests/``; running
    ``pytest benchmarks`` opts into these, and ``-m "not benchmark"``
    deselects them even when both paths are given.
    """
    for item in items:
        item.add_marker(pytest.mark.benchmark)


@pytest.fixture
def trials():
    """Callable mapping a default trial count through the env override."""

    def resolve(default: int) -> int:
        raw = os.environ.get("REPRO_BENCH_TRIALS", "")
        if not raw:
            return default
        value = int(raw)
        if value < 1:
            raise ValueError(f"REPRO_BENCH_TRIALS must be >= 1, got {value}")
        return value

    return resolve


@pytest.fixture
def run_once(benchmark):
    """Run a harness exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
