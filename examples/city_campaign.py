"""City-scale campaign: map a 4-segment district with one API call.

Uses :class:`repro.middleware.FleetCampaign` — the one-call entry point a
deployment scripts against: enroll vehicles with routes, run, read the
fused city map and query it through the lookup service.

Run:  python examples/city_campaign.py
"""

from repro.core import EngineConfig, WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.handoff.topology import analyze_interference, density_per_km2
from repro.metrics import mean_distance_error
from repro.middleware import FleetCampaign, SegmentPlanner, ServerConfig
from repro.radio import PathLossModel
from repro.sim import AccessPoint, World


def build_district():
    area = BoundingBox(0, 0, 400, 300)
    sites = [
        ("ap-nw", Point(80, 230)), ("ap-ne", Point(320, 220)),
        ("ap-sw", Point(70, 60)), ("ap-se", Point(330, 80)),
        ("ap-mid", Point(200, 150)),
    ]
    world = World(
        access_points=[
            AccessPoint(ap_id=name, position=p, radio_range_m=70.0)
            for name, p in sites
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )
    return area, world


def main() -> None:
    area, world = build_district()
    planner = SegmentPlanner(area, n_rows=2, n_cols=2)
    print(f"District: {area.width:.0f} m x {area.height:.0f} m, "
          f"{planner.n_segments} road segments, {len(world)} APs")

    engine_config = EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=70.0,
    )
    # Union fusion: segment-splitting a loop leaves each vehicle short,
    # geometry-poor trace fragments per segment, so cross-vehicle
    # corroboration is rare — publish the union and let map consumers
    # weigh entries by credits/support.
    campaign = FleetCampaign(
        world, planner, engine_config, server_config=ServerConfig()
    )

    # Two bus lines covering complementary halves, plus a roving shuttle.
    campaign.add_vehicle(
        "bus-north",
        Trajectory.rectangle(20, 160, 380, 280), n_samples=160, speed_mph=15.0,
    )
    campaign.add_vehicle(
        "bus-south",
        Trajectory.rectangle(20, 20, 380, 140), n_samples=160, speed_mph=15.0,
    )
    campaign.add_vehicle(
        "shuttle",
        Trajectory.rectangle(120, 80, 300, 220), n_samples=160, speed_mph=15.0,
    )

    outcome = campaign.run(rng=7)
    print(f"\nSegments mapped: {sorted(outcome.segments_mapped)}")
    for vehicle_id, segments in outcome.per_vehicle_segments.items():
        q = outcome.reliabilities[vehicle_id]
        print(f"  {vehicle_id:10s} covered {sorted(segments)}  q={q:.2f}")

    city = outcome.city_map(dedup_radius_m=20.0)
    error = mean_distance_error(
        world.ap_positions(), city, max_match_distance_m=30.0
    )
    print(f"\nCity map: {len(city)} AP entries (true: {len(world)}), "
          f"mean matched error {error:.2f} m")
    print("(extra entries are single-witness road-side ghosts; longer "
          "campaigns with more drives prune them via credits/support)")

    service = outcome.lookup_service()
    here = Point(200, 140)
    nearby = service.aps_near(here, 100.0)
    print(f"APs within 100 m of the district center: {len(nearby)}")
    print(f"Density: {density_per_km2(city, area):.1f} APs/km^2")
    interference = analyze_interference(city, interference_range_m=150.0)
    print(f"Interference: {interference.n_conflicts} conflicting pairs, "
          f"{interference.residual_conflicts} residual after channel plan")


if __name__ == "__main__":
    main()
