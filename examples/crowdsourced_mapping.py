"""Crowdsourced AP mapping: the full middleware loop with a spammer.

Four crowd-vehicles drive the same road segment — one of them a pure
spammer that answers mapping tasks at random.  The crowd-server assigns
pattern-verification tasks on a bipartite graph, runs iterative inference
to learn each vehicle's reliability, fuses the reports with
reliability-weighted centroid processing, and a user-vehicle downloads
the published map for nearby-AP lookup.

Run:  python examples/crowdsourced_mapping.py
"""

from repro.core import EngineConfig, OnlineCsEngine, WindowConfig
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.metrics import mean_distance_error
from repro.middleware import CrowdServer, CrowdVehicleClient, ServerConfig
from repro.middleware import UserVehicleClient
from repro.mobility import PathFollower
from repro.radio import PathLossModel
from repro.sim import AccessPoint, RssCollector, World
from repro.sim.collector import CollectorConfig

SEGMENT = "main-street"


def build_deployment():
    channel = PathLossModel(shadowing_sigma_db=0.5)
    world = World(
        access_points=[
            AccessPoint(ap_id="cafe", position=Point(30, 30), radio_range_m=60.0),
            AccessPoint(ap_id="library", position=Point(150, 30), radio_range_m=60.0),
            AccessPoint(ap_id="plaza", position=Point(90, 120), radio_range_m=60.0),
        ],
        channel=channel,
    )
    route = Trajectory.rectangle(10, 10, 170, 140)
    grid = Grid(box=BoundingBox(-50, -50, 230, 200), lattice_length=8.0)
    return world, route, grid


def main() -> None:
    world, route, grid = build_deployment()
    engine_config = EngineConfig(
        window=WindowConfig(size=36, step=12),
        readings_per_round=6,
        max_aps_per_round=4,
        communication_radius_m=60.0,
    )
    server = CrowdServer(
        ServerConfig(workers_per_task=4, perturbed_variants_per_pattern=2,
                     fusion_min_support=2),
        rng=11,
    )
    server.register_segment(SEGMENT, grid)

    # --- crowd-vehicles sense and upload -------------------------------
    clients = []
    for index in range(4):
        is_spammer = index == 3
        collector = RssCollector(
            world,
            CollectorConfig(sample_period_s=1.0, communication_radius_m=60.0),
            rng=20 + index,
        )
        follower = PathFollower(route, 5.0, start_offset_m=110.0 * index)
        trace = collector.collect_along(follower, n_samples=120)
        engine = OnlineCsEngine(
            world.channel, engine_config, grid=grid, rng=40 + index
        )
        client = CrowdVehicleClient(
            vehicle_id=f"{'spammer' if is_spammer else 'vehicle'}-{index}",
            engine=engine,
            spam_probability=1.0 if is_spammer else 0.0,
            rng=60 + index,
        )
        result = client.sense(trace)
        print(f"{client.vehicle_id}: sensed {result.n_aps} APs over "
              f"{len(trace)} readings")
        server.receive_report(client.build_report(SEGMENT, float(index)))
        clients.append(client)

    # --- the server crowdsources the mapping tasks ----------------------
    assignments = server.open_round(SEGMENT)
    for client in clients:
        submission = client.answer_tasks(assignments[client.vehicle_id], grid)
        server.submit_labels(SEGMENT, submission)
    response = server.aggregate(SEGMENT)

    print("\nInferred reliabilities (iterative inference, §5.3):")
    for client in clients:
        print(f"  {client.vehicle_id:12s}  q = "
              f"{server.reliability_of(client.vehicle_id):.2f}")

    # --- a user-vehicle downloads and uses the map ----------------------
    user = UserVehicleClient(vehicle_id="commuter")
    user.ingest_download(response)
    fused = user.ap_locations(SEGMENT)
    error = mean_distance_error(world.ap_positions(), fused)
    print(f"\nPublished map (generation {response.generation}): "
          f"{len(fused)} APs, mean error {error:.2f} m")
    here = Point(20, 20)
    nearest = user.nearest_aps(here, count=2)
    print(f"Driving at ({here.x:.0f},{here.y:.0f}), nearest known APs:")
    for location, distance in nearest:
        print(f"  ({location.x:6.1f}, {location.y:6.1f})  {distance:6.1f} m away")


if __name__ == "__main__":
    main()
