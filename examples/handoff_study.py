"""Handoff study: BRR vs AllAP on a synthetic VanLan campus (§6.3).

Synthesizes a VanLan-style beacon trace (11 APs, van at 25 mph, bursty
Gilbert–Elliott losses), looks up the APs with CrowdWiFi from 300
subsampled readings, then compares the two handoff policies on session
connectivity and 10 KB TCP transfer performance — including how both
degrade when the AP map is artificially corrupted.

Run:  python examples/handoff_study.py
"""

import numpy as np

from repro.experiments.fig10_vanlan import lookup_vanlan_aps
from repro.handoff import (
    AllApPolicy,
    BrrPolicy,
    TransferConfig,
    corrupt_ap_map,
    run_transfers,
    synthesize_vanlan,
)
from repro.handoff.connectivity import analyze_sessions, connectivity_timeline


def build_policy(cls, trace, estimated_map):
    ap_positions = {ap.ap_id: ap.position for ap in trace.world.access_points}
    return cls(
        estimated_map=estimated_map,
        ap_positions=ap_positions,
        vicinity_radius_m=trace.config.radio_range_m,
        map_match_radius_m=25.0,
    )


def main() -> None:
    print("Synthesizing a 10-minute VanLan drive...")
    trace = synthesize_vanlan(duration_s=600.0, rng=5)
    truth = trace.world.ap_positions()
    received = sum(e.received for e in trace.events)
    print(f"  {len(trace.events)} beacon opportunities, {received} received")

    print("\nLooking up APs from 300 subsampled beacons...")
    located = lookup_vanlan_aps(trace, n_readings=300)
    estimated_map = list(located.values())
    per_ap = [
        trace.world.ap(ap_id).position.distance_to(p)
        for ap_id, p in located.items()
    ]
    print(f"  found {len(located)}/{len(truth)} APs, "
          f"median error {np.median(per_ap):.2f} m (paper: 2.07 m)")

    print("\nConnectivity under the two handoff policies:")
    print(f"  {'policy':8s} {'connected':>10s} {'interruptions':>14s} "
          f"{'median session':>15s}")
    for name, cls in (("BRR", BrrPolicy), ("AllAP", AllApPolicy)):
        policy = build_policy(cls, trace, estimated_map)
        timeline = connectivity_timeline(trace, policy)
        stats = analyze_sessions(timeline)
        print(f"  {name:8s} {stats.total_connected_s:8d} s "
              f"{stats.interruptions:14d} {stats.median_session_s:13.1f} s")

    print("\n10 KB TCP transfers under increasing counting error:")
    print(f"  {'count err':>10s} {'BRR median':>12s} {'AllAP median':>13s} "
          f"{'BRR tput':>9s} {'AllAP tput':>11s}")
    for error_pct in (0, 100, 200, 300):
        corrupted = corrupt_ap_map(
            truth, counting_error=error_pct / 100.0, rng=7
        )
        row = []
        for cls in (BrrPolicy, AllApPolicy):
            stats = run_transfers(
                trace, build_policy(cls, trace, corrupted),
                TransferConfig(), rng=8,
            )
            row.append(stats)
        brr, allap = row
        print(
            f"  {error_pct:8d} % {brr.median_transfer_time_s:10.2f} s "
            f"{allap.median_transfer_time_s:11.2f} s "
            f"{brr.transfers_per_session:9.1f} {allap.transfers_per_session:11.1f}"
        )


if __name__ == "__main__":
    main()
