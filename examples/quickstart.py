"""Quickstart: count and localize roadside APs from one simulated drive.

Builds the paper's UCI campus scenario, drives an RSS collector once
around the loop, runs the online compressive-sensing engine on the trace,
and prints the estimated AP map next to the ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import EngineConfig, OnlineCsEngine
from repro.metrics import match_estimates, mean_distance_error
from repro.mobility import PathFollower, mph_to_mps
from repro.sim import RssCollector, uci_campus


def main() -> None:
    # 1. The environment: 8 roadside APs on a 300 m x 180 m campus map.
    scenario = uci_campus()
    print(f"Scenario: {scenario.name}, {len(scenario.world)} APs, "
          f"grid of {scenario.grid.n_points} points "
          f"({scenario.grid.lattice_length:.0f} m lattice)")

    # 2. Drive the loop at 25 mph, collecting 180 RSS readings.
    collector = RssCollector(scenario.world, scenario.collector_config, rng=7)
    follower = PathFollower(scenario.route, mph_to_mps(25.0))
    trace = collector.collect_along(follower, n_samples=180)
    print(f"Collected {len(trace)} drive-by RSS readings")

    # 3. Online compressive sensing with the paper's configuration
    #    (sliding window 60/10, 8 m lattice, 30 dB SNR).
    engine = OnlineCsEngine(
        scenario.world.channel, EngineConfig(), grid=scenario.grid, rng=42
    )
    result = engine.process_trace(trace)

    # 4. Compare against ground truth.
    truth = scenario.true_ap_positions
    print(f"\nEstimated {result.n_aps} APs (true: {len(truth)})")
    print(f"{'estimate':>22}    {'credits':>7}    {'nearest true AP':>18}")
    matches = {
        est: dist
        for _, est, dist in match_estimates(truth, result.locations)
    }
    for index, estimate in enumerate(result.estimates):
        distance = matches.get(index, float("nan"))
        print(
            f"  ({estimate.location.x:7.1f}, {estimate.location.y:6.1f})"
            f"    {estimate.credits:7.1f}    {distance:15.2f} m"
        )
    print(f"\nMean estimation error: "
          f"{mean_distance_error(truth, result.locations):.2f} m "
          f"(paper: 1.83 m at 180 readings)")


if __name__ == "__main__":
    main()
