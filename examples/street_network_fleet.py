"""Fleet mapping on a street network: buses + a patrol car map downtown.

Builds a Manhattan-style street grid with roadside APs near several
intersections, routes two fixed bus loops and one random patrol car over
it, runs each vehicle's online CS engine, and fuses the three maps —
the deployment story of the paper's introduction (public transit and
official vehicles as natural crowd-vehicles) on a realistic road graph.

Run:  python examples/street_network_fleet.py
"""

from repro.core import EngineConfig, OnlineCsEngine, WindowConfig
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.metrics import mean_distance_error
from repro.mobility import PathFollower, StreetGrid, mph_to_mps
from repro.radio import PathLossModel
from repro.sim import AccessPoint, RssCollector, World
from repro.sim.collector import CollectorConfig


def build_downtown():
    streets = StreetGrid(BoundingBox(0, 0, 480, 360), n_rows=4, n_cols=5)
    # Roadside APs a few meters off intersections where a route *turns*:
    # a vehicle that only ever passes an AP on one straight street cannot
    # tell it from its mirror image across the road, but two perpendicular
    # passes at a corner pin it down.
    sites = [
        ("coffee", Point(12.0, 10.0)),    # bus-12's (0,0) corner
        ("garage", Point(9.0, 130.0)),    # bus-40's (1,0) corner
        ("mall", Point(468.0, 231.0)),    # bus-12's (2,4) corner
        ("hotel", Point(352.0, 350.0)),   # bus-40's (3,3) corner
    ]
    aps = [
        AccessPoint(ap_id=name, position=position, radio_range_m=70.0)
        for name, position in sites
    ]
    world = World(
        access_points=aps,
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )
    return streets, world


def main() -> None:
    streets, world = build_downtown()
    print(f"Downtown: {streets.n_intersections} intersections, "
          f"{len(world)} roadside APs")

    routes = {
        "bus-12": streets.loop_route([(0, 0), (0, 4), (2, 4), (2, 0)]),
        "bus-40": streets.loop_route([(1, 0), (1, 3), (3, 3), (3, 0)]),
        # A patrol covers much dead ground between AP pockets, so give it
        # a long wander and collect fewer readings from it below.
        "patrol-7": streets.random_patrol(40, start=(2, 2), rng=3),
    }
    engine_config = EngineConfig(
        window=WindowConfig(size=36, step=12),
        readings_per_round=6,
        max_aps_per_round=4,
        communication_radius_m=70.0,
        lattice_length_m=8.0,
    )
    grid = Grid(box=BoundingBox(-70, -70, 550, 430), lattice_length=8.0)

    reports = []
    for index, (vehicle_id, route) in enumerate(routes.items()):
        collector = RssCollector(
            world,
            CollectorConfig(sample_period_s=1.0, communication_radius_m=70.0),
            rng=10 + index,
        )
        follower = PathFollower(route, mph_to_mps(20.0))
        n_samples = 140 if vehicle_id.startswith("bus") else 80
        trace = collector.collect_along(follower, n_samples=n_samples)
        engine = OnlineCsEngine(
            world.channel, engine_config, grid=grid, rng=30 + index
        )
        result = engine.process_trace(trace)
        print(f"  {vehicle_id:9s} route {route.length:6.0f} m, "
              f"{len(trace)} readings -> {result.n_aps} APs sensed")
        reports.append(
            VehicleReport(
                vehicle_id=vehicle_id,
                ap_locations=tuple(result.locations),
                reliability=0.9,
            )
        )

    # Union fusion: each bus line covers corners the other never visits,
    # so a support-2 rule would discard genuinely single-witness APs.
    fused = weighted_centroid_fusion(
        reports, alignment_radius_m=16.0, min_support=1
    )
    locations = [ap.location for ap in fused]
    error = mean_distance_error(
        world.ap_positions(), locations, max_match_distance_m=30.0
    )
    print(f"\nFused downtown map: {len(locations)} entries "
          f"(true: {len(world)} APs), mean matched error {error:.2f} m")
    for ap in fused:
        print(f"  ({ap.location.x:6.1f}, {ap.location.y:6.1f}) "
              f"support={ap.support} weight={ap.total_weight:.2f}")
    confirmed = [ap for ap in fused if ap.support >= 2]
    print(f"\n{len(confirmed)} entries are corroborated by 2+ vehicles; "
          "single-witness entries may be mirror ghosts — more drives (or "
          "the crowd-server's credit filtering) would prune them.")

    # --- topology analysis over the crowdsensed map (Fig. 1's third
    # application) -------------------------------------------------------
    from repro.handoff.topology import (
        analyze_interference,
        density_per_km2,
        route_coverage,
    )

    area = BoundingBox(0, 0, 480, 360)
    print("\nTopology analysis of the fused map:")
    print(f"  density: {density_per_km2(locations, area):.1f} APs/km^2")
    for vehicle_id, route in routes.items():
        report = route_coverage(locations, route, radio_range_m=70.0)
        print(f"  {vehicle_id:9s} route coverage "
              f"{100 * report.covered_fraction:5.1f} %, "
              f"longest gap {report.longest_gap_m:5.0f} m")
    interference = analyze_interference(
        locations, interference_range_m=120.0
    )
    print(f"  interference: {interference.n_conflicts} conflicting pairs, "
          f"channel plan {sorted(set(interference.channels.values()))}, "
          f"{interference.residual_conflicts} residual conflicts")


if __name__ == "__main__":
    main()
