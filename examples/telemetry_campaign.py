"""Instrumented campaign: capture telemetry + a run manifest, then report.

Runs a small two-vehicle, two-segment :class:`FleetCampaign` with a
:class:`JsonlRecorder` attached, writes the JSONL event stream and a
machine-readable run manifest next to each other, and prints the same
summary ``crowdwifi-repro report`` renders offline.  CI runs this to
produce its telemetry artifacts.

Run:  python examples/telemetry_campaign.py [output-dir]
"""

import sys
import time
from pathlib import Path

from repro.core import EngineConfig, WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware import FleetCampaign, SegmentPlanner
from repro.obs import JsonlRecorder, build_manifest, render_report
from repro.radio import PathLossModel
from repro.sim import AccessPoint, World

SEED = 42


def build_campaign() -> FleetCampaign:
    world = World(
        access_points=[
            AccessPoint(ap_id="west", position=Point(60, 70), radio_range_m=60.0),
            AccessPoint(ap_id="east", position=Point(260, 70), radio_range_m=60.0),
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )
    planner = SegmentPlanner(BoundingBox(0, 0, 320, 140), n_rows=1, n_cols=2)
    engine_config = EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=60.0,
    )
    campaign = FleetCampaign(world, planner, engine_config)
    route = Trajectory(
        [Point(10, 30), Point(310, 30), Point(310, 110), Point(10, 110)],
        closed=True,
    )
    campaign.add_vehicle("bus-0", route, n_samples=120, speed_mph=12.0)
    campaign.add_vehicle("bus-1", route, n_samples=120, speed_mph=12.0)
    return campaign


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("telemetry-out")
    out_dir.mkdir(parents=True, exist_ok=True)
    jsonl_path = out_dir / "campaign.jsonl"
    manifest_path = out_dir / "campaign.manifest.json"

    campaign = build_campaign()
    start = time.perf_counter()
    with JsonlRecorder(str(jsonl_path)) as recorder:
        outcome = campaign.run(rng=SEED, telemetry=recorder)
        wall_s = time.perf_counter() - start
        manifest = build_manifest(
            "telemetry_campaign",
            seed=SEED,
            config={"vehicles": 2, "segments": 2, "n_samples": 120},
            wall_s=wall_s,
            recorder=recorder,
        )
    manifest.write(str(manifest_path))

    print(f"Segments mapped: {sorted(outcome.segments_mapped)}; "
          f"city map has {len(outcome.city_map())} AP entries")
    print(f"[wrote {jsonl_path}]")
    print(f"[wrote {manifest_path}]")
    print()
    print(render_report(recorder, title=f"run report — {jsonl_path}"))


if __name__ == "__main__":
    main()
