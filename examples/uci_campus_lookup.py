"""UCI campus lookup in depth: watch the online CS pipeline round by round.

Reproduces the Fig. 5 experiment with full diagnostics: per-round BIC
decisions, credit accumulation, and an ASCII map of truth vs estimates at
the 60 / 120 / 180-reading checkpoints.

Run:  python examples/uci_campus_lookup.py
"""

from repro.core import EngineConfig, OnlineCsEngine
from repro.metrics import mean_distance_error
from repro.mobility import PathFollower, mph_to_mps
from repro.sim import RssCollector, uci_campus


def ascii_map(scenario, estimates, *, cols=60, rows=18) -> str:
    """Render truth (X) and estimates (o, O = overlapping) on a grid."""
    area = scenario.area
    canvas = [["." for _ in range(cols)] for _ in range(rows)]

    def plot(point, symbol):
        col = int((point.x - area.min_x) / area.width * (cols - 1))
        row = int((point.y - area.min_y) / area.height * (rows - 1))
        row = rows - 1 - max(0, min(row, rows - 1))
        col = max(0, min(col, cols - 1))
        current = canvas[row][col]
        canvas[row][col] = "O" if current not in (".", symbol) else symbol

    for ap in scenario.world.access_points:
        plot(ap.position, "X")
    for location in estimates:
        plot(location, "o")
    legend = "X = true AP   o = estimate   O = overlapping"
    return "\n".join("".join(line) for line in canvas) + "\n" + legend


def main() -> None:
    scenario = uci_campus()
    truth = scenario.true_ap_positions
    collector = RssCollector(scenario.world, scenario.collector_config, rng=1)
    follower = PathFollower(scenario.route, mph_to_mps(25.0))
    trace = collector.collect_along(follower, n_samples=180)

    for checkpoint in (60, 120, 180):
        engine = OnlineCsEngine(
            scenario.world.channel, EngineConfig(), grid=scenario.grid, rng=2
        )
        result = engine.process_trace(trace[:checkpoint])
        error = mean_distance_error(truth, result.locations)
        print(f"\n=== After {checkpoint} RSS readings "
              f"({len(result.rounds)} sliding-window rounds) ===")
        for diag in result.rounds:
            locations = ", ".join(
                f"({p.x:.0f},{p.y:.0f})" for p in diag.chosen_locations
            )
            print(
                f"  round {diag.round_index:2d}: K={diag.chosen_k} "
                f"from {diag.n_hypotheses:3d} hypotheses  ->  {locations}"
            )
        print(f"\nConsolidated estimate: {result.n_aps} APs, "
              f"mean error {error:.2f} m")
        print(ascii_map(scenario, result.locations))


if __name__ == "__main__":
    main()
