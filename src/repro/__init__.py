"""CrowdWiFi reproduction: crowdsensing of roadside WiFi networks.

A full reimplementation of *CrowdWiFi: Efficient Crowdsensing of Roadside
WiFi Networks* (ACM Middleware 2014): the vehicle-side online compressive
sensing engine, the server-side crowdsourcing aggregation with iterative
reliability inference, the baseline localizers the paper compares against,
the vehicular-network simulation substrate, and the handoff/connectivity
applications of the evaluation.

Quickstart
----------
>>> from repro import sim, core
>>> scenario = sim.uci_campus()
>>> # ... drive a collector along scenario.route, then:
>>> # engine = core.OnlineCsEngine(scenario.world.channel, grid=scenario.grid)
>>> # result = engine.process_trace(trace)

See ``examples/quickstart.py`` for the complete flow.
"""

from repro import baselines, core, crowd, geo, handoff, metrics, middleware
from repro import mobility, radio, sim, util

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "crowd",
    "geo",
    "handoff",
    "metrics",
    "middleware",
    "mobility",
    "radio",
    "sim",
    "util",
    "__version__",
]
