"""Baseline AP counting-and-localization algorithms (§6.1's comparators).

All baselines consume the same drive-by RSS traces as CrowdWiFi — without
source-AP identities, matching the paper's problem setting — and return
estimated AP locations:

* :class:`LgmmLocalizer` — the grid-based Gaussian-mixture EM algorithm
  of Zhang et al. [20] ("LGMM"): EM over AP positions constrained to grid
  points, with BIC model selection over the AP count.
* :class:`MdsLocalizer` — the multidimensional-scaling radio-scan
  approach of Koo & Cha [9]: cluster readings into AP groups, embed the
  groups by classical MDS over RSS-implied dissimilarities, and anchor
  the embedding to the absolute frame by Procrustes alignment.
* :class:`SkyhookLocalizer` — a Place Lab-style war-driving fingerprint
  localizer [4, 15] (the paper notes Skyhook's proprietary algorithm is
  similar to Place Lab's): rank-weighted centroid of the hearing
  positions, with optional crowdsourced fusion across vehicles.
"""

from repro.baselines.common import ClusteredReadings, cluster_readings
from repro.baselines.lgmm import LgmmLocalizer
from repro.baselines.mds import MdsLocalizer
from repro.baselines.skyhook import SkyhookLocalizer

__all__ = [
    "cluster_readings",
    "ClusteredReadings",
    "LgmmLocalizer",
    "MdsLocalizer",
    "SkyhookLocalizer",
]
