"""Shared helpers for the baseline localizers.

The baselines face the same blind-source problem as CrowdWiFi: readings
are not tagged with the AP they came from.  :func:`cluster_readings`
groups a trace into candidate per-AP reading sets with k-means over
(position, RSS) features and selects the group count K by the silhouette
criterion — the generic device the original baseline papers rely on
(scan grouping in [9], mixture initialisation in [20]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.geo.points import Point, points_as_array
from repro.radio.rss import RssMeasurement
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "ClusteredReadings",
    "MIN_SPLIT_SILHOUETTE",
    "GROUP_PENALTY",
    "cluster_readings",
    "group_positions",
    "group_rss",
]


@dataclass(frozen=True)
class ClusteredReadings:
    """A grouping of trace indices into candidate per-AP clusters."""

    groups: List[List[int]]
    score: float

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def _features(measurements: Sequence[RssMeasurement],
              rss_weight: float) -> np.ndarray:
    coords = points_as_array([m.position for m in measurements])
    rss = np.array([m.rss_dbm for m in measurements])[:, None]
    spatial_scale = max(float(coords.std()), 1e-9)
    rss_scale = max(float(rss.std()), 1e-9)
    return np.hstack([coords / spatial_scale, rss_weight * rss / rss_scale])


def _kmeans(features: np.ndarray, k: int, rng,
            *, n_iterations: int = 30) -> np.ndarray:
    n = features.shape[0]
    chosen = rng.choice(n, size=k, replace=False)
    centers = features[chosen].copy()
    labels = np.zeros(n, dtype=int)
    for iteration in range(n_iterations):
        distances = np.linalg.norm(
            features[:, None, :] - centers[None, :, :], axis=-1
        )
        new_labels = distances.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for j in range(k):
            members = features[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return labels


def _silhouette(features: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient; −1 when any cluster is empty/singleton-only."""
    unique = np.unique(labels)
    if len(unique) < 2:
        return -1.0
    n = features.shape[0]
    distances = np.linalg.norm(
        features[:, None, :] - features[None, :, :], axis=-1
    )
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        if not same.any():
            scores[i] = 0.0
            continue
        a = distances[i, same].mean()
        b = min(
            distances[i, labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        scores[i] = (b - a) / max(a, b, 1e-12)
    return float(scores.mean())


#: A split must reach this raw silhouette to be considered at all —
#: single-source traces (blobs or drive lines) top out below ~0.5 while
#: genuinely multi-source traces score ≥ 0.65.
MIN_SPLIT_SILHOUETTE = 0.55

#: Complexity penalty per group: among acceptable splits the score
#: ``silhouette − penalty·k`` is maximised, which stops silhouette's
#: mild preference for shattering tight clusters further.
GROUP_PENALTY = 0.04


def cluster_readings(
    measurements: Sequence[RssMeasurement],
    *,
    max_groups: int = 10,
    rss_weight: float = 0.5,
    restarts: int = 2,
    min_split_silhouette: float = MIN_SPLIT_SILHOUETTE,
    rng: RngLike = None,
) -> ClusteredReadings:
    """Group a trace into candidate per-AP reading sets.

    Runs k-means for K = 2 … max_groups (with restarts); a split is
    accepted only when its raw silhouette clears
    ``min_split_silhouette``, and among accepted splits the
    complexity-penalised score ``silhouette − 0.04·K`` is maximised.
    When no split qualifies the trace stays a single group.
    """
    measurements = list(measurements)
    if not measurements:
        raise ValueError("cannot cluster an empty trace")
    if max_groups < 1:
        raise ValueError(f"max_groups must be >= 1, got {max_groups}")
    generator = ensure_rng(rng)
    n = len(measurements)
    features = _features(measurements, rss_weight)

    best_groups: List[List[int]] = [list(range(n))]
    best_raw = 0.0
    best_penalized = float("-inf")
    for k in range(2, min(max_groups, n) + 1):
        for _ in range(restarts):
            labels = _kmeans(features, k, generator)
            if len(np.unique(labels)) < k:
                continue
            raw = _silhouette(features, labels)
            if raw < min_split_silhouette:
                continue
            penalized = raw - GROUP_PENALTY * k
            if penalized > best_penalized:
                best_penalized = penalized
                best_raw = raw
                best_groups = [
                    np.flatnonzero(labels == j).tolist() for j in range(k)
                ]
    return ClusteredReadings(groups=best_groups, score=best_raw)


def group_positions(
    measurements: Sequence[RssMeasurement], group: Sequence[int]
) -> List[Point]:
    """Positions of the readings in one group."""
    return [measurements[i].position for i in group]


def group_rss(
    measurements: Sequence[RssMeasurement], group: Sequence[int]
) -> np.ndarray:
    """RSS values (dBm) of the readings in one group."""
    return np.array([measurements[i].rss_dbm for i in group], dtype=float)
