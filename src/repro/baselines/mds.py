"""MDS — multidimensional-scaling radio-scan localization (Koo & Cha [9]).

The original system builds an AP map from the *dissimilarities* between
pairs of APs observed in radio scans, embeds them with MDS into a
relative configuration, and anchors that configuration to absolute
coordinates.  Our adaptation to drive-by traces:

1. cluster the readings into candidate per-AP groups
   (:func:`repro.baselines.common.cluster_readings`);
2. estimate a ranging-based position prior per group — the RSS-implied
   distance of each reading defines an annulus around its position; the
   prior is the implied-weighted centroid;
3. compute pairwise group dissimilarities from the priors plus a
   co-audibility correction (groups heard from the same spots are close);
4. classical MDS (Torgerson double-centering) embeds the groups in 2-D;
5. orthogonal Procrustes aligns the embedding onto the priors' absolute
   frame (MDS output is only defined up to rotation/translation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.linalg import orthogonal_procrustes

from repro.baselines.common import cluster_readings, group_positions, group_rss
from repro.geo.points import Point, points_as_array
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement
from repro.util.rng import RngLike, ensure_rng

__all__ = ["MdsConfig", "MdsLocalizer", "classical_mds", "procrustes_anchor"]


@dataclass(frozen=True)
class MdsConfig:
    """Tunables of the MDS baseline."""

    max_aps: int = 10
    rss_weight: float = 0.5
    co_audibility_radius_m: float = 25.0

    def __post_init__(self) -> None:
        if self.max_aps < 1:
            raise ValueError(f"max_aps must be >= 1, got {self.max_aps}")
        if self.co_audibility_radius_m <= 0:
            raise ValueError(
                "co_audibility_radius_m must be > 0, "
                f"got {self.co_audibility_radius_m}"
            )


class MdsLocalizer:
    """Counting + localization via MDS over scan dissimilarities."""

    def __init__(
        self,
        channel: PathLossModel,
        config: Optional[MdsConfig] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        self.channel = channel
        self.config = config if config is not None else MdsConfig()
        self._rng = ensure_rng(rng)

    def estimate(self, trace: Sequence[RssMeasurement]) -> List[Point]:
        """Estimate AP locations from a drive-by trace."""
        measurements = list(trace)
        if not measurements:
            return []
        clustered = cluster_readings(
            measurements,
            max_groups=self.config.max_aps,
            rss_weight=self.config.rss_weight,
            rng=self._rng,
        )
        priors = np.array(
            [
                self._group_prior(measurements, group)
                for group in clustered.groups
            ]
        )
        k = len(priors)
        if k == 1:
            return [Point(float(priors[0, 0]), float(priors[0, 1]))]

        dissimilarity = self._dissimilarities(measurements, clustered.groups, priors)
        embedding = classical_mds(dissimilarity, dimensions=2)
        anchored = procrustes_anchor(embedding, priors)
        return [Point(float(x), float(y)) for x, y in anchored]

    # ------------------------------------------------------------------

    def _group_prior(
        self, measurements: Sequence[RssMeasurement], group: Sequence[int]
    ) -> np.ndarray:
        """Implied-distance-weighted centroid of the group's positions.

        Readings that imply a *small* distance (strong RSS) pin the AP
        near their own position, so they get the large weights.
        """
        positions = points_as_array(group_positions(measurements, group))
        rss = group_rss(measurements, group)
        implied = self.channel.distance_for_rss(rss)
        weights = 1.0 / np.maximum(implied, 1.0)
        weights /= weights.sum()
        return (positions * weights[:, None]).sum(axis=0)

    def _dissimilarities(
        self,
        measurements: Sequence[RssMeasurement],
        groups: Sequence[Sequence[int]],
        priors: np.ndarray,
    ) -> np.ndarray:
        """Pairwise AP dissimilarities.

        Base dissimilarity is the prior separation; pairs that are
        co-audible (some reading position hears both groups within the
        co-audibility radius of its strongest readings) are pulled closer,
        mirroring [9]'s use of scan co-occurrence.
        """
        k = len(groups)
        base = np.linalg.norm(
            priors[:, None, :] - priors[None, :, :], axis=-1
        )
        hearing_sets = []
        for group in groups:
            positions = points_as_array(group_positions(measurements, group))
            hearing_sets.append(positions)
        adjusted = base.copy()
        for a in range(k):
            for b in range(a + 1, k):
                min_gap = np.min(
                    np.linalg.norm(
                        hearing_sets[a][:, None, :] - hearing_sets[b][None, :, :],
                        axis=-1,
                    )
                )
                if min_gap <= self.config.co_audibility_radius_m:
                    shrink = 0.8  # co-heard APs are closer than priors suggest
                    adjusted[a, b] *= shrink
                    adjusted[b, a] *= shrink
        np.fill_diagonal(adjusted, 0.0)
        return adjusted


def classical_mds(dissimilarity: np.ndarray, *, dimensions: int = 2) -> np.ndarray:
    """Torgerson classical scaling of a symmetric dissimilarity matrix.

    Returns a (k, dimensions) configuration reproducing the
    dissimilarities as Euclidean distances as well as a rank-``dimensions``
    approximation allows.
    """
    D = np.asarray(dissimilarity, dtype=float)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise ValueError(f"dissimilarity must be square, got {D.shape}")
    if not np.allclose(D, D.T, atol=1e-9):
        raise ValueError("dissimilarity matrix must be symmetric")
    k = D.shape[0]
    if dimensions < 1:
        raise ValueError(f"dimensions must be >= 1, got {dimensions}")
    J = np.eye(k) - np.ones((k, k)) / k
    B = -0.5 * J @ (D**2) @ J
    eigenvalues, eigenvectors = np.linalg.eigh(B)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    top_values = np.clip(eigenvalues[order], 0.0, None)
    return eigenvectors[:, order] * np.sqrt(top_values)[None, :]


def procrustes_anchor(
    embedding: np.ndarray, anchors: np.ndarray
) -> np.ndarray:
    """Rigidly align a relative MDS embedding onto absolute anchor points.

    Centers both configurations, finds the optimal rotation (orthogonal
    Procrustes, reflection allowed), and translates back to the anchors'
    centroid.  Scale is preserved from the embedding, which already
    carries metric distances.
    """
    X = np.asarray(embedding, dtype=float)
    Y = np.asarray(anchors, dtype=float)
    if X.shape != Y.shape:
        raise ValueError(f"shape mismatch: embedding {X.shape} vs anchors {Y.shape}")
    x_center = X.mean(axis=0)
    y_center = Y.mean(axis=0)
    rotation, _ = orthogonal_procrustes(X - x_center, Y - y_center)
    return (X - x_center) @ rotation + y_center
