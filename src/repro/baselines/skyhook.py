"""Skyhook — Place Lab-style war-driving fingerprint localization [4, 15].

Skyhook's algorithm is proprietary; the paper states it is similar to
Place Lab's [5], which (a) records where each beacon was heard during
war-driving, (b) ranks readings by signal strength, and (c) places the AP
at a rank-weighted centroid of the hearing positions.  Counting comes
from grouping the scan data.  Skyhook additionally *crowdsources*:
reports from multiple drives are fused, with inconsistent contributors
down-weighted by rank-order correlation — which is why it tracks
CrowdWiFi more closely than LGMM/MDS in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.stats import spearmanr

from repro.baselines.common import cluster_readings, group_positions, group_rss
from repro.geo.points import Point, points_as_array
from repro.radio.rss import RssMeasurement
from repro.util.rng import RngLike, ensure_rng

__all__ = ["SkyhookConfig", "SkyhookLocalizer"]


@dataclass(frozen=True)
class SkyhookConfig:
    """Tunables of the Skyhook baseline."""

    max_aps: int = 10
    rss_weight: float = 0.5
    rank_exponent: float = 1.0
    fusion_radius_m: float = 20.0

    def __post_init__(self) -> None:
        if self.max_aps < 1:
            raise ValueError(f"max_aps must be >= 1, got {self.max_aps}")
        if self.rank_exponent < 0:
            raise ValueError(
                f"rank_exponent must be >= 0, got {self.rank_exponent}"
            )
        if self.fusion_radius_m <= 0:
            raise ValueError(
                f"fusion_radius_m must be > 0, got {self.fusion_radius_m}"
            )


class SkyhookLocalizer:
    """Rank-weighted fingerprint localization with crowdsourced fusion."""

    def __init__(
        self, config: Optional[SkyhookConfig] = None, *, rng: RngLike = None
    ) -> None:
        self.config = config if config is not None else SkyhookConfig()
        self._rng = ensure_rng(rng)

    def estimate(self, trace: Sequence[RssMeasurement]) -> List[Point]:
        """Single-drive estimate: group, then rank-weighted centroids.

        War-driving databases are keyed by BSSID, so when the trace
        carries source identities (as real 802.11 scans do) readings are
        grouped by them; identity-free traces fall back to clustering.
        """
        measurements = list(trace)
        if not measurements:
            return []
        groups = self._group(measurements)
        return [
            self._rank_weighted_centroid(measurements, group)
            for group in groups
        ]

    def _group(self, measurements: Sequence[RssMeasurement]) -> List[List[int]]:
        if all(m.source_ap is not None for m in measurements):
            by_id = {}
            for index, m in enumerate(measurements):
                by_id.setdefault(m.source_ap, []).append(index)
            return [by_id[key] for key in sorted(by_id)]
        clustered = cluster_readings(
            measurements,
            max_groups=self.config.max_aps,
            rss_weight=self.config.rss_weight,
            rng=self._rng,
        )
        return clustered.groups

    def estimate_crowdsourced(
        self, traces: Sequence[Sequence[RssMeasurement]]
    ) -> List[Point]:
        """Fuse estimates from multiple drives.

        Each drive produces its own estimate list; drives are weighted by
        the Spearman rank-order correlation of their per-AP RSS profile
        with the consensus (drives that rank APs consistently with the
        majority count more), then co-located estimates are merged by
        weighted centroid.
        """
        per_drive: List[List[Point]] = []
        drive_profiles: List[np.ndarray] = []
        for trace in traces:
            measurements = list(trace)
            if not measurements:
                continue
            estimates = self.estimate(measurements)
            if not estimates:
                continue
            per_drive.append(estimates)
            drive_profiles.append(self._profile(measurements))
        if not per_drive:
            return []
        if len(per_drive) == 1:
            return per_drive[0]

        weights = self._drive_weights(drive_profiles)
        return self._fuse(per_drive, weights)

    # ------------------------------------------------------------------

    def _rank_weighted_centroid(
        self, measurements: Sequence[RssMeasurement], group: Sequence[int]
    ) -> Point:
        """Place Lab's core: centroid weighted by signal-strength rank."""
        positions = points_as_array(group_positions(measurements, group))
        rss = group_rss(measurements, group)
        order = np.argsort(np.argsort(rss))  # 0 = weakest
        ranks = (order + 1).astype(float)
        weights = ranks**self.config.rank_exponent
        weights /= weights.sum()
        xy = (positions * weights[:, None]).sum(axis=0)
        return Point(float(xy[0]), float(xy[1]))

    @staticmethod
    def _profile(measurements: Sequence[RssMeasurement]) -> np.ndarray:
        """A coarse RSS-vs-odometer profile used for drive consistency."""
        rss = np.array([m.rss_dbm for m in measurements], dtype=float)
        bins = np.array_split(rss, min(10, len(rss)))
        return np.array([b.mean() for b in bins if len(b)])

    @staticmethod
    def _drive_weights(profiles: List[np.ndarray]) -> np.ndarray:
        """Spearman correlation of each drive's profile with the consensus."""
        length = min(len(p) for p in profiles)
        stacked = np.array([p[:length] for p in profiles])
        consensus = stacked.mean(axis=0)
        weights = np.zeros(len(profiles))
        for i, profile in enumerate(stacked):
            if length < 3 or np.all(profile == profile[0]):
                weights[i] = 0.5
                continue
            correlation = spearmanr(profile, consensus).correlation
            weights[i] = max(float(correlation), 0.0) if not np.isnan(
                correlation
            ) else 0.0
        if weights.sum() == 0:
            weights[:] = 1.0
        return weights / weights.sum()

    def _fuse(
        self, per_drive: List[List[Point]], weights: np.ndarray
    ) -> List[Point]:
        """Greedy weighted merge of co-located estimates across drives."""
        clusters: List[dict] = []
        for drive_index, estimates in enumerate(per_drive):
            weight = float(weights[drive_index])
            for location in estimates:
                placed = False
                for cluster in clusters:
                    if cluster["center"].distance_to(location) <= (
                        self.config.fusion_radius_m
                    ):
                        cluster["points"].append(location)
                        cluster["weights"].append(weight)
                        total = sum(cluster["weights"])
                        cluster["center"] = Point(
                            sum(p.x * w for p, w in zip(
                                cluster["points"], cluster["weights"]
                            )) / total,
                            sum(p.y * w for p, w in zip(
                                cluster["points"], cluster["weights"]
                            )) / total,
                        )
                        placed = True
                        break
                if not placed:
                    clusters.append(
                        {
                            "center": location,
                            "points": [location],
                            "weights": [weight],
                        }
                    )
        clusters.sort(key=lambda c: sum(c["weights"]), reverse=True)
        return [c["center"] for c in clusters]
