"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    python -m repro.cli list
    python -m repro.cli fig5
    python -m repro.cli fig7a --trials 50
    python -m repro.cli fig8a --csv-dir out/
    python -m repro.cli all
    python -m repro.cli report out/telemetry.jsonl

Each command runs the corresponding experiment harness, prints its
paper-style table(s), and optionally writes them as CSV.  When
``--csv-dir`` is given, a machine-readable run manifest (seed, config,
git revision, wall time) is written next to the CSVs.  The ``lint``
and ``report`` subcommands ride the same entry point: the former runs
the crowdlint static-analysis pass, the latter renders a telemetry
summary from :class:`~repro.obs.recorder.JsonlRecorder` streams.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.ablations import run_ablation_online_vs_offline
from repro.experiments.city_scale import run_city_scale
from repro.experiments.robustness import (
    run_correlated_shadowing_sweep,
    run_gps_noise_sweep,
)
from repro.experiments import (
    run_ablation_combinations,
    run_ablation_credit,
    run_ablation_refine,
    run_ablation_solvers,
    run_ablation_window,
    run_fig5,
    run_fig6,
    run_fig7_tasks,
    run_fig7_workers,
    run_fig8_measurements,
    run_fig8_sparsity,
    run_fig9,
    run_fig10,
    run_fig11,
)
from repro.obs.manifest import build_manifest
from repro.util.tables import ResultTable

__all__ = ["EXPERIMENTS", "build_parser", "main"]


def _tables_of(result) -> List[Tuple[str, ResultTable]]:
    """Normalise any harness result into named tables."""
    if isinstance(result, ResultTable):
        return [(result.title or "table", result)]
    if isinstance(result, tuple):
        return [
            (table.title or f"table{i}", table)
            for i, table in enumerate(result)
        ]
    if isinstance(result, dict):
        out: List[Tuple[str, ResultTable]] = []
        for key, value in result.items():
            if isinstance(value, ResultTable):
                out.append((key, value))
        return out
    raise TypeError(f"unexpected harness result type {type(result)!r}")


def _with_trials(
    fn: Callable,
    supports_trials: bool,
    supports_shards: bool = False,
    supports_transport: bool = False,
    supports_stream: bool = False,
) -> Callable:
    def runner(
        trials,
        seed: int,
        shards: int = 1,
        transport: str = "inprocess",
        durable_dir: Optional[Path] = None,
        wal_format: Optional[str] = None,
        stream: bool = False,
    ):
        kwargs = {"seed": seed}
        if supports_trials and trials is not None:
            kwargs["n_trials"] = trials
        if supports_shards and shards != 1:
            kwargs["n_shards"] = shards
        if supports_transport:
            if transport != "inprocess":
                kwargs["transport"] = transport
            if durable_dir is not None:
                kwargs["durable_dir"] = durable_dir
            if wal_format is not None:
                kwargs["wal_format"] = wal_format
        elif (
            transport != "inprocess"
            or durable_dir is not None
            or wal_format is not None
        ):
            raise SystemExit(
                "--transport/--durable-dir/--wal-format only apply to "
                "campaign harnesses (currently: city-scale)"
            )
        if supports_stream:
            if stream:
                kwargs["stream"] = True
        elif stream:
            raise SystemExit(
                "--stream only applies to online-CS estimation "
                "harnesses (currently: fig8a, fig8c)"
            )
        return fn(**kwargs)

    return runner


EXPERIMENTS: Dict[str, Tuple[str, Callable]] = {
    "fig5": ("UCI trajectory snapshots", _with_trials(run_fig5, True)),
    "fig6": ("lattice-size sweep", _with_trials(run_fig6, True)),
    "fig7a": ("crowdsourcing vs workers/task", _with_trials(run_fig7_workers, True)),
    "fig7b": ("crowdsourcing vs tasks/worker", _with_trials(run_fig7_tasks, True)),
    "fig8a": (
        "comparison vs sparsity k",
        _with_trials(run_fig8_sparsity, True, supports_stream=True),
    ),
    "fig8c": (
        "comparison vs measurements M",
        _with_trials(run_fig8_measurements, True, supports_stream=True),
    ),
    "fig9": ("Open-Mesh testbed", _with_trials(run_fig9, True)),
    "fig10": ("VanLan connectivity", _with_trials(run_fig10, False)),
    "fig11": ("transfers under lookup errors", _with_trials(run_fig11, False)),
    "ablation-solvers": ("solver choice", _with_trials(run_ablation_solvers, True)),
    "ablation-window": ("window size/step", _with_trials(run_ablation_window, True)),
    "ablation-credit": ("credit threshold", _with_trials(run_ablation_credit, True)),
    "ablation-combinations": (
        "combination search", _with_trials(run_ablation_combinations, True)
    ),
    "ablation-refine": ("refinement on/off", _with_trials(run_ablation_refine, True)),
    "ablation-online-offline": (
        "online window vs batch CS",
        _with_trials(run_ablation_online_vs_offline, True),
    ),
    "robustness-gps": (
        "accuracy vs GPS noise", _with_trials(run_gps_noise_sweep, True)
    ),
    "robustness-shadowing": (
        "accuracy vs correlated shadowing",
        _with_trials(run_correlated_shadowing_sweep, True),
    ),
    "city-scale": (
        "fleet size vs map quality",
        _with_trials(
            run_city_scale, True, supports_shards=True, supports_transport=True
        ),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the CrowdWiFi paper's evaluation figures.",
        epilog=(
            "The 'lint' subcommand runs the crowdlint static-analysis pass "
            "instead (see 'crowdwifi-repro lint --help'); the 'report' "
            "subcommand renders a telemetry summary from JSONL streams "
            "(see 'crowdwifi-repro report --help')."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all'",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="Monte-Carlo trials (harness default when omitted)",
    )
    parser.add_argument(
        "--seed", type=int, default=2014, help="base random seed"
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help=(
            "server shards behind the campaign endpoint (harnesses that "
            "run a FleetCampaign; outcomes are bit-identical for any "
            "shard count — see docs/RUNTIME.md)"
        ),
    )
    parser.add_argument(
        "--transport", choices=("inprocess", "tcp", "serving"),
        default="inprocess",
        help=(
            "how campaign clients reach the server: 'tcp' runs every "
            "exchange over a loopback socket; 'serving' runs each shard "
            "as its own worker process behind its own listener "
            "(requires --durable-dir; see docs/SERVING.md).  Campaign "
            "harnesses only; outcomes are bit-identical for all three"
        ),
    )
    parser.add_argument(
        "--durable-dir", type=Path, default=None,
        help=(
            "journal campaign servers under this directory so runs can "
            "be crash-recovered and audited (campaign harnesses only; "
            "see docs/RUNTIME.md §6; required for --transport serving)"
        ),
    )
    parser.add_argument(
        "--wal-format", choices=("jsonl", "block"), default=None,
        help=(
            "WAL format for the serving tier's shard workers: 'block' "
            "uses 4 KB-aligned O_DIRECT lanes whose commits overlap "
            "across processes (--transport serving only; see "
            "docs/SERVING.md)"
        ),
    )
    parser.add_argument(
        "--stream", action="store_true",
        help=(
            "feed each vehicle trace through the incremental streaming "
            "engine one reading at a time instead of the batch wrapper "
            "(online-CS harnesses only; outcomes are bit-identical — "
            "see docs/ARCHITECTURE.md §2)"
        ),
    )
    parser.add_argument(
        "--csv-dir", type=Path, default=None,
        help="also write each table as CSV into this directory",
    )
    return parser


def _run_one(name: str, args) -> None:
    description, runner = EXPERIMENTS[name]
    print(f"== {name}: {description} ==")
    if args.trials is not None and args.trials < 1:
        raise SystemExit("--trials must be >= 1")
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.transport == "serving" and args.durable_dir is None:
        raise SystemExit(
            "--transport serving requires --durable-dir (every shard "
            "worker journals into its own WAL lane under it)"
        )
    if args.wal_format is not None and args.transport != "serving":
        raise SystemExit("--wal-format only applies to --transport serving")
    start = time.perf_counter()
    result = runner(
        args.trials,
        args.seed,
        shards=args.shards,
        transport=args.transport,
        durable_dir=args.durable_dir,
        wal_format=args.wal_format,
        stream=args.stream,
    )
    wall_s = time.perf_counter() - start
    for title, table in _tables_of(result):
        print()
        print(table.render())
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            safe = title.lower().replace(" ", "_").replace("/", "-")[:60]
            path = args.csv_dir / f"{name}_{safe}.csv"
            path.write_text(table.to_csv())
            print(f"[wrote {path}]")
    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        manifest = build_manifest(
            name,
            seed=args.seed,
            config={
                "trials": args.trials,
                "shards": args.shards,
                "transport": args.transport,
                "wal_format": args.wal_format,
                "stream": args.stream,
            },
            wall_s=wall_s,
        )
        manifest_path = args.csv_dir / f"{name}.manifest.json"
        manifest.write(manifest_path)
        print(f"[wrote {manifest_path}]")
    print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "lint":
        # Static analysis rides the same entry point so CI and developers
        # need only one installed script: `crowdwifi-repro lint`.
        from repro.tools.lint import main as lint_main

        return lint_main(raw[1:])
    if raw and raw[0] == "report":
        # Telemetry rendering rides the same entry point for the same
        # reason: `crowdwifi-repro report run.jsonl`.
        from repro.obs.report import main as report_main

        return report_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    if args.experiment == "all":
        for name in EXPERIMENTS:
            _run_one(name, args)
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            "use 'list' to see the options",
            file=sys.stderr,
        )
        return 2
    _run_one(args.experiment, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
