"""CrowdWiFi's primary contribution: the online compressive-sensing engine.

Submodules, bottom-up:

* :mod:`repro.core.l1` — ℓ1-minimization solvers (exact LP basis pursuit,
  FISTA basis-pursuit denoising, orthogonal matching pursuit).
* :mod:`repro.core.cs_problem` — assembly of the sparse-recovery problem
  ``Y = Φ Ψ Θ + ε`` on a grid, including the Proposition-1
  orthogonalization preprocessing.
* :mod:`repro.core.combinations` — enumeration of (AP, RSS) assignment
  hypotheses, exhaustive for small windows and clustering-pruned above
  (Proposition 2 makes exhaustive search Ω(M^M)).
* :mod:`repro.core.centroid` — threshold-centroid refinement of recovered
  coefficient vectors (§4.3.4).
* :mod:`repro.core.bic` — Gaussian-mixture BIC model selection (§4.3.5).
* :mod:`repro.core.consolidate` — credit-based consolidation across
  sliding-window iterations (§4.3.6).
* :mod:`repro.core.window` — sliding-window scheduling of RSS readings
  (§4.3.2).
* :mod:`repro.core.engine` — :class:`OnlineCsEngine`, the full pipeline of
  Fig. 2's online half.
"""

from repro.core.l1 import (
    L1Solver,
    solve_basis_pursuit,
    solve_bpdn_fista,
    solve_omp,
)
from repro.core.cs_problem import CsProblem, orthogonalize
from repro.core.combinations import CombinationEnumerator, enumerate_partitions
from repro.core.centroid import threshold_centroid
from repro.core.bic import bic_score, select_by_bic
from repro.core.consolidate import ApEstimate, CreditConsolidator
from repro.core.window import SlidingWindow, WindowConfig
from repro.core.engine import EngineConfig, OnlineCsEngine, OnlineCsResult
from repro.core.offline import OfflineConfig, OfflineCsEstimator
from repro.core.refine import refine_hypothesis, refine_location

__all__ = [
    "L1Solver",
    "solve_basis_pursuit",
    "solve_bpdn_fista",
    "solve_omp",
    "CsProblem",
    "orthogonalize",
    "CombinationEnumerator",
    "enumerate_partitions",
    "threshold_centroid",
    "bic_score",
    "select_by_bic",
    "ApEstimate",
    "CreditConsolidator",
    "SlidingWindow",
    "WindowConfig",
    "OnlineCsEngine",
    "EngineConfig",
    "OnlineCsResult",
    "OfflineCsEstimator",
    "OfflineConfig",
    "refine_location",
    "refine_hypothesis",
]
