"""Bayesian information criterion model selection (§4.3.5).

Within one sliding-window round the engine proposes many hypotheses
(K APs at particular locations).  Maximum likelihood alone always prefers
more mixture components, so the paper scores each hypothesis with

    BIC = 2 · max log p(R | v)  −  v · log(m)

where v = 2K free parameters (the AP coordinates) and m is the number of
RSS samples in the round, and keeps the hypothesis with the *largest*
BIC.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geo.points import Point
from repro.radio.gmm import DEFAULT_SIGMA_FACTOR, gmm_log_likelihood
from repro.radio.pathloss import PathLossModel

__all__ = ["bic_score", "score_hypothesis", "select_by_bic"]


def bic_score(
    log_likelihood: float,
    n_parameters: int,
    n_samples: int,
) -> float:
    """``2·logL − v·log(m)``; larger is better.

    ``n_samples`` must be ≥ 1 (the log of 1 gives a zero penalty, which is
    correct: a single sample cannot penalize complexity meaningfully).
    """
    import math

    if n_parameters < 0:
        raise ValueError(f"n_parameters must be >= 0, got {n_parameters}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    return 2.0 * log_likelihood - n_parameters * math.log(n_samples)


def score_hypothesis(
    rss_dbm: Sequence[float],
    measurement_points: Sequence[Point],
    ap_locations: Sequence[Point],
    channel: PathLossModel,
    *,
    sigma_factor: float = DEFAULT_SIGMA_FACTOR,
) -> float:
    """BIC of one (AP count, AP locations) hypothesis for the round's data."""
    log_likelihood = gmm_log_likelihood(
        rss_dbm,
        measurement_points,
        ap_locations,
        channel,
        sigma_factor=sigma_factor,
    )
    return bic_score(
        log_likelihood,
        n_parameters=2 * len(ap_locations),
        n_samples=max(len(list(rss_dbm)), 1),
    )


def select_by_bic(
    hypotheses: Sequence[Sequence[Point]],
    rss_dbm: Sequence[float],
    measurement_points: Sequence[Point],
    channel: PathLossModel,
    *,
    sigma_factor: float = DEFAULT_SIGMA_FACTOR,
) -> Tuple[Optional[List[Point]], float, List[float]]:
    """Pick the hypothesis with the maximum BIC.

    Returns ``(best_hypothesis, best_score, all_scores)``; the best
    hypothesis is ``None`` when the input is empty.
    """
    best: Optional[List[Point]] = None
    best_score = float("-inf")
    scores: List[float] = []
    for hypothesis in hypotheses:
        score = score_hypothesis(
            rss_dbm,
            measurement_points,
            hypothesis,
            channel,
            sigma_factor=sigma_factor,
        )
        scores.append(score)
        if score > best_score:
            best_score = score
            best = list(hypothesis)
    return best, best_score, scores
