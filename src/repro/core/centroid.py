"""Threshold-centroid processing of recovered coefficient vectors (§4.3.4).

An ideal recovery is a 1-sparse indicator landing exactly on a grid point,
but with noise and off-grid APs the recovered θ has a few non-zero
coefficients spread over neighbouring cells.  The paper compensates for
the grid-quantization error by keeping the dominant coefficients — those
above a threshold ζ — and taking their coefficient-weighted centroid as
the location estimate (Eq. 3).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.geo.grid import Grid
from repro.geo.points import Point

__all__ = ["threshold_centroid"]


def threshold_centroid(
    theta: np.ndarray,
    grid: Grid,
    *,
    threshold_fraction: float = 0.3,
) -> Tuple[Point, np.ndarray]:
    """Weighted centroid of the dominant coefficients of ``theta``.

    Parameters
    ----------
    theta:
        Recovered (N,) coefficient vector; negative entries are clipped
        (the AP indicator is non-negative by construction).
    grid:
        The lattice the coefficients live on.
    threshold_fraction:
        The threshold ζ expressed as a fraction of the peak coefficient:
        cells with ``θ(n) ≥ ζ_frac · max θ`` form the candidate set S.

    Returns
    -------
    (Point, ndarray)
        The centroid location and the selected support indices S, in
        descending coefficient order.

    Raises
    ------
    ValueError
        If ``theta`` has the wrong length or no positive coefficient at
        all (nothing was recovered).
    """
    theta = np.asarray(theta, dtype=float).ravel()
    if theta.size != grid.n_points:
        raise ValueError(
            f"theta has {theta.size} entries but the grid has {grid.n_points} points"
        )
    if not 0.0 < threshold_fraction <= 1.0:
        raise ValueError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    positive = np.clip(theta, 0.0, None)
    peak = positive.max()
    if peak <= 0.0:
        raise ValueError("theta has no positive coefficient; recovery found nothing")

    cutoff = threshold_fraction * peak
    support = np.flatnonzero(positive >= cutoff)
    support = support[np.argsort(positive[support])[::-1]]

    weights = positive[support]
    coords = grid.coordinates()[support]
    total = weights.sum()
    centroid_xy = (coords * weights[:, None]).sum(axis=0) / total
    return Point(float(centroid_xy[0]), float(centroid_xy[1])), support
