"""(AP, RSS) assignment enumeration — §4.3.3 and Proposition 2.

The problem formulation does not say how many APs there are nor which RSS
reading came from which AP, so each round must consider *assignments* of
the M window readings to K hypothetical APs for every K = 1 … K_max.
Proposition 2 shows exhaustive enumeration costs Ω(M^M); the sliding
window keeps M small, and above a configurable cutoff we prune the search
with location-aware constrained clustering (readings from one AP are
spatially and signal-wise coherent), generating a handful of candidate
partitions per K instead of all of them.

A *partition* is represented canonically as a tuple of frozensets of
reading indices; helper functions enumerate exact set partitions via
restricted-growth strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.points import Point, points_as_array
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "Partition",
    "enumerate_partitions",
    "count_partitions",
    "unique_blocks",
    "EnumeratorConfig",
    "CombinationEnumerator",
]

Partition = Tuple[Tuple[int, ...], ...]


def unique_blocks(partitions: Sequence[Partition]) -> List[Tuple[int, ...]]:
    """The distinct blocks across a set of partitions, first-seen order.

    The round hot path recovers per-AP columns *per block*, and blocks
    repeat heavily across hypotheses (every subset of a window can appear
    in many partitions), so the engine dedups here and solves each block
    exactly once per round.
    """
    seen = set()
    out: List[Tuple[int, ...]] = []
    for partition in partitions:
        for block in partition:
            if block not in seen:
                seen.add(block)
                out.append(block)
    return out


def _canonical(blocks: Sequence[Sequence[int]]) -> Partition:
    """Canonical form: blocks sorted by their smallest element, items sorted."""
    cleaned = [tuple(sorted(block)) for block in blocks if block]
    cleaned.sort(key=lambda block: block[0])
    return tuple(cleaned)


def enumerate_partitions(n_items: int, n_blocks: int) -> Iterator[Partition]:
    """All set partitions of ``range(n_items)`` into exactly ``n_blocks`` blocks.

    Uses restricted-growth strings; the count is the Stirling number of the
    second kind S(n, k).  Yields canonical partitions.
    """
    if n_items < 0 or n_blocks < 0:
        raise ValueError("n_items and n_blocks must be non-negative")
    if n_blocks == 0:
        if n_items == 0:
            yield ()
        return
    if n_blocks > n_items:
        return

    assignment = [0] * n_items

    def emit() -> Partition:
        blocks: List[List[int]] = [[] for _ in range(n_blocks)]
        for item, block in enumerate(assignment):
            blocks[block].append(item)
        return _canonical(blocks)

    def recurse(item: int, max_used: int) -> Iterator[Partition]:
        if item == n_items:
            if max_used + 1 == n_blocks:
                yield emit()
            return
        # Pruning: remaining items must still be able to open enough blocks.
        remaining = n_items - item
        needed = n_blocks - (max_used + 1)
        if needed > remaining:
            return
        for block in range(min(max_used + 1, n_blocks - 1) + 1):
            assignment[item] = block
            yield from recurse(item + 1, max(max_used, block))

    yield from recurse(0, -1)


def count_partitions(n_items: int, n_blocks: int) -> int:
    """Stirling number of the second kind S(n, k), by recurrence."""
    if n_items < 0 or n_blocks < 0:
        raise ValueError("n_items and n_blocks must be non-negative")
    if n_blocks == 0:
        return 1 if n_items == 0 else 0
    if n_blocks > n_items:
        return 0
    table = np.zeros((n_items + 1, n_blocks + 1), dtype=object)
    table[0, 0] = 1
    for n in range(1, n_items + 1):
        for k in range(1, min(n, n_blocks) + 1):
            table[n, k] = k * table[n - 1, k] + table[n - 1, k - 1]
    return int(table[n_items, n_blocks])


@dataclass(frozen=True)
class EnumeratorConfig:
    """Search-budget knobs for :class:`CombinationEnumerator`.

    Parameters
    ----------
    max_aps:
        Upper bound K_max on the hypothesised AP count (capped at M —
        each AP needs at least one reading).
    max_exhaustive_items:
        Window sizes up to this use exact set-partition enumeration;
        larger windows switch to clustering-pruned candidates.
    cluster_restarts:
        Number of k-means restarts per K in pruned mode (each restart can
        contribute one distinct candidate partition).
    rss_feature_weight:
        Relative weight of the RSS value (dBm) against position (m) in the
        clustering feature space.
    """

    max_aps: int = 5
    max_exhaustive_items: int = 7
    cluster_restarts: int = 3
    rss_feature_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.max_aps < 1:
            raise ValueError(f"max_aps must be >= 1, got {self.max_aps}")
        if self.max_exhaustive_items < 1:
            raise ValueError(
                f"max_exhaustive_items must be >= 1, got {self.max_exhaustive_items}"
            )
        if self.cluster_restarts < 1:
            raise ValueError(
                f"cluster_restarts must be >= 1, got {self.cluster_restarts}"
            )
        if self.rss_feature_weight < 0:
            raise ValueError(
                f"rss_feature_weight must be >= 0, got {self.rss_feature_weight}"
            )


class CombinationEnumerator:
    """Generates candidate (AP, RSS) assignments for one window of readings."""

    def __init__(
        self, config: Optional[EnumeratorConfig] = None, *, rng: RngLike = None
    ) -> None:
        self.config = config if config is not None else EnumeratorConfig()
        self._rng = ensure_rng(rng)
        # Exhaustive enumeration is a pure function of (n, k_max) — no
        # RNG — so successive windows of the same size (every round of a
        # steady stream) reuse one enumeration.  The clustering path
        # draws from the shared RNG and is never cached.
        self._exhaustive_cache: dict = {}

    def candidate_partitions(
        self,
        positions: Sequence[Point],
        rss_dbm: Sequence[float],
    ) -> List[Partition]:
        """Candidate partitions across all K = 1 … K_max.

        Exact enumeration below the exhaustive cutoff; clustering-pruned
        above it.  Always includes the K=1 partition.  Duplicates are
        removed while preserving first-seen order.
        """
        n = len(positions)
        if n != len(rss_dbm):
            raise ValueError(
                f"{n} positions but {len(rss_dbm)} RSS values"
            )
        if n == 0:
            return []
        k_max = min(self.config.max_aps, n)
        seen = set()
        out: List[Partition] = []

        def push(partition: Partition) -> None:
            if partition not in seen:
                seen.add(partition)
                out.append(partition)

        if n <= self.config.max_exhaustive_items:
            cached = self._exhaustive_cache.get((n, k_max))
            if cached is None:
                for k in range(1, k_max + 1):
                    for partition in enumerate_partitions(n, k):
                        push(partition)
                self._exhaustive_cache[(n, k_max)] = out
                return out
            return list(cached)

        for k in range(1, k_max + 1):
            if k == 1:
                push((tuple(range(n)),))
                continue
            for restart in range(self.config.cluster_restarts):
                partition = self._cluster_once(positions, rss_dbm, k, restart)
                if partition is not None:
                    push(partition)
        return out

    def _cluster_once(
        self,
        positions: Sequence[Point],
        rss_dbm: Sequence[float],
        k: int,
        restart: int,
    ) -> Partition:
        """One k-means run over (x, y, weighted RSS) features.

        Returns ``None`` when the run collapses to fewer than ``k``
        non-empty clusters (the data does not support that many APs).
        """
        coords = points_as_array(positions)
        rss = np.asarray(rss_dbm, dtype=float)[:, None]
        spatial_scale = max(float(coords.std()), 1e-9)
        rss_scale = max(float(rss.std()), 1e-9)
        features = np.hstack(
            [
                coords / spatial_scale,
                self.config.rss_feature_weight * rss / rss_scale,
            ]
        )
        n = features.shape[0]
        # Deterministic first restart (k-means++ style greedy seeding from
        # point 0), randomised afterwards.
        if restart == 0:
            centers = _greedy_seed(features, k)
        else:
            choice = self._rng.choice(n, size=k, replace=False)
            centers = features[choice]

        labels = np.zeros(n, dtype=int)
        for _ in range(25):
            distances = np.linalg.norm(
                features[:, None, :] - centers[None, :, :], axis=-1
            )
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for j in range(k):
                members = features[labels == j]
                if len(members):
                    centers[j] = members.mean(axis=0)
        blocks = [np.flatnonzero(labels == j).tolist() for j in range(k)]
        if sum(1 for b in blocks if b) < k:
            return None
        return _canonical(blocks)


def _greedy_seed(features: np.ndarray, k: int) -> np.ndarray:
    """Farthest-point seeding: start at item 0, then repeatedly take the
    point farthest from all chosen centers."""
    chosen = [0]
    for _ in range(1, k):
        distances = np.min(
            np.linalg.norm(features[:, None, :] - features[chosen][None, :, :], axis=-1),
            axis=1,
        )
        distances[chosen] = -np.inf
        chosen.append(int(np.argmax(distances)))
    return features[chosen].copy()
