"""Credit-based consolidation of per-round estimates (§4.3.6).

Each sliding-window round emits a set of AP location estimates (the
BIC-maximising hypothesis); each estimate is granted one credit.  The
consolidator maintains the running AP set:

* a new estimate that *aligns* with an existing one (within the alignment
  radius) is merged — the merged location is the credit-weighted centroid
  of the two, and credits add;
* otherwise it opens a new entry;
* at the end (or on demand), entries at or below the credit threshold
  (paper: 1) are filtered out as spurious.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.geo.points import Point
from repro.obs.recorder import NULL_RECORDER, Recorder

__all__ = ["ApEstimate", "CreditConsolidator"]


@dataclass(frozen=True)
class ApEstimate:
    """A consolidated AP location estimate with its accumulated credits."""

    location: Point
    credits: float
    first_round: int
    last_round: int

    def merged_with(self, other_location: Point, other_credits: float,
                    round_index: int) -> "ApEstimate":
        """Credit-weighted merge with a new observation (Eq. 3 style)."""
        total = self.credits + other_credits
        merged_location = Point(
            (self.location.x * self.credits + other_location.x * other_credits)
            / total,
            (self.location.y * self.credits + other_location.y * other_credits)
            / total,
        )
        return replace(
            self,
            location=merged_location,
            credits=total,
            last_round=round_index,
        )


@dataclass
class CreditConsolidator:
    """Accumulates and cleans AP estimates across rounds.

    Parameters
    ----------
    alignment_radius_m:
        Two estimates closer than this are considered the same AP.  A
        natural choice is about one lattice diagonal.
    credit_filter_threshold:
        Estimates with credits ≤ this value are dropped by
        :meth:`filtered_estimates` (paper: 1 — "if a location estimate has
        only one credit, it is removed").
    recorder:
        Optional telemetry sink counting credit-table transitions (merges
        vs newly opened entries); the default null recorder makes every
        hook a no-op.
    """

    alignment_radius_m: float = 12.0
    credit_filter_threshold: float = 1.0
    merge_radius_m: Optional[float] = None
    recorder: Recorder = field(default=NULL_RECORDER, repr=False, compare=False)
    _estimates: List[ApEstimate] = field(default_factory=list)
    _round_counter: int = 0

    def __post_init__(self) -> None:
        if self.alignment_radius_m <= 0:
            raise ValueError(
                f"alignment_radius_m must be > 0, got {self.alignment_radius_m}"
            )
        if self.credit_filter_threshold < 0:
            raise ValueError(
                "credit_filter_threshold must be >= 0, "
                f"got {self.credit_filter_threshold}"
            )
        if self.merge_radius_m is not None and self.merge_radius_m <= 0:
            raise ValueError(
                f"merge_radius_m must be > 0, got {self.merge_radius_m}"
            )

    @property
    def effective_merge_radius_m(self) -> float:
        """Final-pass merge radius (defaults to 1.5× the alignment radius).

        Overlapping sliding windows can leave low-credit "echoes" of a
        well-established AP just outside the alignment radius (the echo was
        estimated from the window's edge readings); the final merge pass
        folds them into their strong neighbour.
        """
        if self.merge_radius_m is not None:
            return self.merge_radius_m
        return 1.5 * self.alignment_radius_m

    @property
    def round_counter(self) -> int:
        """How many rounds have been ingested."""
        return self._round_counter

    def ingest_round(self, locations: Sequence[Point],
                     credit_per_estimate: float = 1.0) -> None:
        """Merge one round's winning estimates into the running AP set.

        Estimates within a single round are first deduplicated against each
        other (two same-round estimates inside the alignment radius merge),
        then matched against the running set.
        """
        if credit_per_estimate <= 0:
            raise ValueError(
                f"credit_per_estimate must be > 0, got {credit_per_estimate}"
            )
        round_index = self._round_counter
        self._round_counter += 1
        self.recorder.count("consolidate.rounds")
        for location in locations:
            self._ingest_single(location, credit_per_estimate, round_index)
        if self.recorder.enabled:
            self.recorder.gauge("consolidate.table", len(self._estimates))

    def _ingest_single(
        self, location: Point, credits: float, round_index: int
    ) -> None:
        best_index = -1
        best_distance = self.alignment_radius_m
        for index, estimate in enumerate(self._estimates):
            distance = estimate.location.distance_to(location)
            if distance <= best_distance:
                best_distance = distance
                best_index = index
        if best_index >= 0:
            self.recorder.count("consolidate.merged")
            self._estimates[best_index] = self._estimates[best_index].merged_with(
                location, credits, round_index
            )
        else:
            self.recorder.count("consolidate.opened")
            self._estimates.append(
                ApEstimate(
                    location=location,
                    credits=credits,
                    first_round=round_index,
                    last_round=round_index,
                )
            )

    def all_estimates(self) -> List[ApEstimate]:
        """Every running estimate, spurious or not (credit-descending)."""
        return sorted(self._estimates, key=lambda e: e.credits, reverse=True)

    def filtered_estimates(self) -> List[ApEstimate]:
        """Estimates surviving the spurious-credit filter (§4.3.6).

        After the credit filter, a merge pass folds estimates within the
        merge radius of a higher-credit estimate into it (credit-weighted).
        """
        survivors = [
            e for e in self._estimates if e.credits > self.credit_filter_threshold
        ]
        if not survivors and self._estimates:
            # With very few rounds nothing can accumulate 2 credits; rather
            # than report an empty map, fall back to the full set — this is
            # the paper's "or when RSS data collection is complete" clause,
            # where early readouts are returned unfiltered.
            if self._round_counter <= 1:
                survivors = list(self._estimates)
        merged = self._merge_pass(
            sorted(survivors, key=lambda e: e.credits, reverse=True)
        )
        if self.recorder.enabled:
            self.recorder.gauge("consolidate.survivors", len(merged))
        return sorted(merged, key=lambda e: e.credits, reverse=True)

    def _merge_pass(self, estimates: List[ApEstimate]) -> List[ApEstimate]:
        """Fold each estimate into the first stronger one within reach."""
        radius = self.effective_merge_radius_m
        merged: List[ApEstimate] = []
        for estimate in estimates:  # credit-descending
            target_index = -1
            best_distance = radius
            for index, anchor in enumerate(merged):
                distance = anchor.location.distance_to(estimate.location)
                if distance <= best_distance:
                    best_distance = distance
                    target_index = index
            if target_index >= 0:
                merged[target_index] = merged[target_index].merged_with(
                    estimate.location, estimate.credits, estimate.last_round
                )
            else:
                merged.append(estimate)
        return merged

    def locations(self, *, filtered: bool = True) -> List[Point]:
        """Just the locations of the (optionally filtered) estimates."""
        source = self.filtered_estimates() if filtered else self.all_estimates()
        return [e.location for e in source]

    def reset(self) -> None:
        """Forget all accumulated state."""
        self._estimates.clear()
        self._round_counter = 0
