"""Assembly of the grid-domain sparse-recovery problem (§4.2.2).

The AP lookup problem is ``Y = Φ Ψ Θ + ε`` where

* Ψ (N × N) is the *signature basis*: ``Ψ[i, j]`` is the RSS expected at
  grid point i from an AP at grid point j under the path-loss model;
* Φ (M × N) selects the rows of Ψ at the vehicle's reference points, so
  ``A = Φ Ψ`` is simply Ψ restricted to the RP rows;
* Θ (N × K) has one 1-sparse indicator column per AP.

Because Φ and Ψ are coherent in the spatial domain, Proposition 1
orthogonalizes the system first:  with ``Q = orth(Aᵀ)ᵀ`` and
``T = Q A⁺``, the transformed measurements ``Y' = T Y`` satisfy
``Y' = Q Θ + ε'`` with row-orthonormal Q, and Θ is recovered from
``(Q, Y')`` by ℓ1-minimization.

:class:`CsProblem` also exposes a *candidate-column* pruning: an AP whose
grid cell is farther than the communication radius from every reference
point that heard it cannot be the source, so those columns are excluded
from the search.  This is an exact constraint of the radio model, not an
approximation, and it shrinks the effective N dramatically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import orth

from repro.core.centroid import threshold_centroid
from repro.core.l1 import L1Solver, l1_solve_batch
from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.radio.pathloss import PathLossModel

__all__ = [
    "orthogonalize",
    "orthogonalize_system",
    "RecoveryResult",
    "RoundRecoveryContext",
    "CsProblem",
]


def orthogonalize_system(A: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Proposition-1 factorization: ``(Q, T)`` with ``Q = orth(Aᵀ)ᵀ``.

    ``Q`` has orthonormal rows spanning the row space of A and
    ``T = Q A⁺`` maps measurements into the transformed system
    ``Ty = Q θ + ε'``.  The pair depends only on ``A``, never on the
    measurements, so it is the unit of caching for a round: every
    hypothesis block sharing the same rows reuses one ``(Q, T)``.
    """
    A = np.asarray(A, dtype=float)
    if A.ndim != 2:
        raise ValueError(f"A must be 2-D, got shape {A.shape}")
    Q = orth(A.T).T  # (r, N) with orthonormal rows
    T = Q @ np.linalg.pinv(A)  # (r, M)
    return Q, T


def orthogonalize(A: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Proposition-1 preprocessing: return ``(Q, y')`` with ``Q = orth(Aᵀ)ᵀ``.

    ``y' = T y`` with ``T = Q A⁺``.  Q has orthonormal rows spanning the
    row space of A, so the transformed system is incoherent and suitable
    for ℓ1 recovery.
    """
    A = np.asarray(A, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if A.ndim != 2 or A.shape[0] != y.size:
        raise ValueError(
            f"incompatible shapes A={A.shape}, y={y.shape}"
        )
    Q, T = orthogonalize_system(A)
    return Q, T @ y


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of recovering one AP column."""

    location: Point
    coefficients: np.ndarray
    support: np.ndarray
    residual_norm: float


class _CrossRoundCache:
    """Cross-round memoization shared by every round of one problem.

    A sliding window advancing by ``step`` keeps ``size − step`` of its
    readings, so consecutive rounds re-derive mostly the same per-cell
    sensing rows and per-block Proposition-1 factorizations — but the
    per-*round* context cache cannot see that, because its keys are whole
    RP tuples which change every round.  This cache keys by what is
    actually stable: individual grid cells (sensing/distance rows) and
    *cell* tuples (candidate columns, ``(Q, T)`` factorizations plus
    their hoisted Lipschitz constants, and FISTA warm starts).  Every
    cached value is a pure function of its key given the problem's grid,
    channel and radius, so cross-round reuse is bitwise identical to
    recomputation.
    """

    MAX_ROWS = 4096
    MAX_BLOCKS = 1024

    def __init__(self) -> None:
        # cell -> (distance_row, sensing_row), each (N,)
        self.rows: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        # cells -> candidate column indices
        self.columns: "OrderedDict[Tuple[int, ...], np.ndarray]" = (
            OrderedDict()
        )
        # cells -> [Q, T, lipschitz-or-None] (Lipschitz filled lazily)
        self.ortho: "OrderedDict[Tuple[int, ...], List[object]]" = (
            OrderedDict()
        )
        # cells -> [theta_local, cold_sweep_count]
        self.warm: "OrderedDict[Tuple[int, ...], List[object]]" = (
            OrderedDict()
        )
        # (cells, y bytes, solver knobs) -> theta_local.  An ℓ1 solve is
        # a deterministic function of its system and settings, so when a
        # window shift re-subsamples the very same readings the previous
        # round's solution can be returned outright — the solve is
        # skipped, not warm-started.
        self.solutions: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self.stats: Dict[str, int] = {
            "rows.hits": 0,
            "rows.misses": 0,
            "columns.hits": 0,
            "columns.misses": 0,
            "ortho.hits": 0,
            "ortho.misses": 0,
            "warm.hits": 0,
            "warm.misses": 0,
            "warm.iterations_saved": 0,
            "solve.hits": 0,
            "solve.misses": 0,
        }

    def get(self, cache: "OrderedDict", key, family: str):
        hit = cache.get(key)
        if hit is None:
            self.stats[family + ".misses"] += 1
        else:
            cache.move_to_end(key)
            self.stats[family + ".hits"] += 1
        return hit

    def put(self, cache: "OrderedDict", key, value, limit: int) -> None:
        cache[key] = value
        if len(cache) > limit:
            cache.popitem(last=False)


class RoundRecoveryContext:
    """Shared recovery state for one sliding-window round.

    A round evaluates hundreds of assignment hypotheses whose blocks are
    all subsets of the same handful of reference points.  The context
    computes the RP-to-grid distance matrix, the sensing rows ``A`` and
    the per-RP reachability masks once; block recoveries then index into
    them instead of recomputing (the dominant cost of a naive round).
    """

    #: Cap on the per-block memo dicts; one round's block universe is
    #: bounded by the partition search (≤ 2^M blocks for exhaustive M ≤ 7).
    MAX_CACHED_BLOCKS = 512

    def __init__(self, problem: "CsProblem", rp_indices: np.ndarray) -> None:
        rp_indices = np.asarray(rp_indices, dtype=int)
        if rp_indices.ndim != 1 or rp_indices.size == 0:
            raise ValueError("rp_indices must be a non-empty 1-D index array")
        self.problem = problem
        self.rp_indices = rp_indices
        self.distances, self.sensing = problem._rp_rows(rp_indices)  # (m, N)
        if problem.communication_radius_m is None:
            self.reachable = None
        else:
            limit = problem.communication_radius_m + problem.grid.diameter
            self.reachable = self.distances <= limit  # (m, N) bool
        # Proposition-1 factorizations, keyed by the block's row tuple.
        # (Q, T) depends only on the block's sensing submatrix, which the
        # rows determine, so one entry serves every hypothesis that
        # contains the block — the QR/projection work of a round is done
        # once per distinct block instead of once per hypothesis.
        self._ortho_cache: "OrderedDict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._column_cache: "OrderedDict[Tuple[int, ...], np.ndarray]" = (
            OrderedDict()
        )

    def _cache_put(self, cache: OrderedDict, key, value) -> None:
        cache[key] = value
        if len(cache) > self.MAX_CACHED_BLOCKS:
            cache.popitem(last=False)

    def block_cells(self, rows: np.ndarray) -> Tuple[int, ...]:
        """The grid-cell tuple a block's rows map to.

        This is the block's identity across rounds: a window shift
        renumbers row positions, but a block covering the same physical
        cells keeps the same cell tuple, which keys every cross-round
        cache.
        """
        return tuple(int(c) for c in self.rp_indices[np.asarray(rows, dtype=int)])

    def cached_columns(self, rows: np.ndarray) -> np.ndarray:
        """Memoized :meth:`candidate_columns` for a block's row tuple."""
        key = tuple(int(r) for r in rows)
        hit = self._column_cache.get(key)
        if hit is None:
            cross = self.problem._cross_cache
            if cross is not None:
                cells = self.block_cells(rows)
                hit = cross.get(cross.columns, cells, "columns")
                if hit is None:
                    hit = self.candidate_columns(np.asarray(rows, dtype=int))
                    cross.put(cross.columns, cells, hit, cross.MAX_BLOCKS)
            else:
                hit = self.candidate_columns(np.asarray(rows, dtype=int))
            self._cache_put(self._column_cache, key, hit)
        return hit

    def orthogonalized_block(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized Proposition-1 ``(Q, T)`` for a block's sensing rows."""
        key = tuple(int(r) for r in rows)
        hit = self._ortho_cache.get(key)
        if hit is None:
            cross = self.problem._cross_cache
            if cross is not None:
                cells = self.block_cells(rows)
                entry = cross.get(cross.ortho, cells, "ortho")
                if entry is None:
                    hit = self._orthogonalize_rows(rows)
                    cross.put(
                        cross.ortho, cells, [hit[0], hit[1], None],
                        cross.MAX_BLOCKS,
                    )
                else:
                    hit = (entry[0], entry[1])
            else:
                hit = self._orthogonalize_rows(rows)
            self._cache_put(self._ortho_cache, key, hit)
        return hit

    def _orthogonalize_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        columns = self.cached_columns(rows)
        A = self.sensing[np.ix_(np.asarray(rows, dtype=int), columns)]
        return orthogonalize_system(A)

    def block_lipschitz(self, rows: np.ndarray) -> float:
        """The gradient Lipschitz constant ``‖Q‖₂²`` of a block's system.

        Cached alongside the ``(Q, T)`` factorization when cross-round
        caching is on (always the *computed* spectral norm, never an
        assumed value, so cached and fresh solves stay bitwise equal);
        recomputed per call otherwise.
        """
        Q, _ = self.orthogonalized_block(rows)
        cross = self.problem._cross_cache
        if cross is None:
            return float(np.linalg.norm(Q, ord=2) ** 2)
        entry = cross.ortho.get(self.block_cells(rows))
        if entry is None:
            return float(np.linalg.norm(Q, ord=2) ** 2)
        if entry[2] is None:
            entry[2] = float(np.linalg.norm(Q, ord=2) ** 2)
        return float(entry[2])  # type: ignore[arg-type]

    def candidate_columns(self, rows: np.ndarray) -> np.ndarray:
        """Column pruning for a block given by row positions (0-based
        indices into this round's RP list)."""
        if self.reachable is None:
            return np.arange(self.problem.n_grid_points)
        mask = self.reachable[rows].all(axis=0)
        if not mask.any():
            mask = self.reachable[rows].any(axis=0)
        if not mask.any():
            return np.arange(self.problem.n_grid_points)
        return np.flatnonzero(mask)

    def recover_location(
        self,
        y: np.ndarray,
        rows: np.ndarray,
        *,
        method: L1Solver = L1Solver.FISTA,
        use_orthogonalization: bool = True,
        noise_tolerance: Optional[float] = None,
        centroid_threshold: float = 0.3,
        warm_start: bool = False,
        work_dtype: Optional[object] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> RecoveryResult:
        """Recover one AP from the block's readings (cached matrices).

        ``warm_start`` (FISTA only, opt-in — never applied silently so
        repeated recoveries of one block stay deterministic) seeds the
        solver from this block's previous-round solution via the
        cross-round cache; ``work_dtype`` selects the solver's opt-in
        reduced-precision path.  Independently of warm starting, when
        cross-round caching is on and a window shift re-presents the
        *identical* system — same cells, bitwise-equal readings, same
        solver knobs — the previous solution is returned without solving
        at all (counted under ``solve.hits``); reuse of a deterministic
        solve is bitwise identical to recomputation.
        """
        y = np.asarray(y, dtype=float).ravel()
        rows = np.asarray(rows, dtype=int)
        columns = self.cached_columns(rows)
        is_fista = method != "matched" and L1Solver(method) is L1Solver.FISTA
        cross = self.problem._cross_cache
        cells = self.block_cells(rows) if cross is not None else None
        solution_key = None
        if cross is not None and method != "matched":
            solution_key = (
                cells,
                y.tobytes(),
                str(getattr(method, "value", method)),
                use_orthogonalization,
                noise_tolerance,
                warm_start,
                None if work_dtype is None else np.dtype(work_dtype).name,
            )
            cached_theta = cross.get(cross.solutions, solution_key, "solve")
            if cached_theta is not None:
                if warm_start and is_fista:
                    entry = cross.warm.get(cells)
                    if entry is not None:
                        entry[0] = cached_theta
                return self._finish_recovery(
                    y, rows, columns, cached_theta, centroid_threshold
                )
        A = self.sensing[np.ix_(rows, columns)]
        ortho = None
        lipschitz = None
        if use_orthogonalization and method != "matched":
            ortho = self.orthogonalized_block(rows)
            if is_fista:
                lipschitz = self.block_lipschitz(rows)
        theta0 = None
        sweeps_out = None
        warm_entry = None
        warm_cells = None
        if warm_start and is_fista and cross is not None:
            warm_cells = cells
            warm_entry = cross.get(cross.warm, warm_cells, "warm")
            if warm_entry is not None:
                theta0 = warm_entry[0]
            sweeps_out = np.zeros(1, dtype=np.int64)
        theta_local = self.problem._solve_block(
            A, y, method=method,
            use_orthogonalization=use_orthogonalization,
            noise_tolerance=noise_tolerance,
            ortho=ortho,
            lipschitz=lipschitz,
            theta0=theta0,
            adaptive_restart=False,
            work_dtype=work_dtype if is_fista else None,
            sweep_counts=sweeps_out,
            recorder=recorder,
        )
        if solution_key is not None:
            cross.put(
                cross.solutions, solution_key, theta_local, cross.MAX_BLOCKS
            )
        if warm_cells is not None and sweeps_out is not None:
            sweeps = int(sweeps_out[0])
            if warm_entry is None:
                cross.put(
                    cross.warm, warm_cells, [theta_local, sweeps],
                    cross.MAX_BLOCKS,
                )
            else:
                cold = int(warm_entry[1])  # type: ignore[arg-type]
                cross.stats["warm.iterations_saved"] += max(0, cold - sweeps)
                warm_entry[0] = theta_local
        return self._finish_recovery(
            y, rows, columns, theta_local, centroid_threshold
        )

    def _finish_recovery(
        self,
        y: np.ndarray,
        rows: np.ndarray,
        columns: np.ndarray,
        theta_local: np.ndarray,
        centroid_threshold: float,
    ) -> RecoveryResult:
        """Embed local coefficients and refine to coordinates + residual."""
        theta = np.zeros(self.problem.n_grid_points)
        theta[columns] = np.maximum(theta_local, 0.0)
        location, support = threshold_centroid(
            theta, self.problem.grid, threshold_fraction=centroid_threshold
        )
        fitted = self.sensing[rows, self.problem.grid.snap(location)]
        residual = float(np.linalg.norm(y - fitted))
        return RecoveryResult(
            location=location,
            coefficients=theta,
            support=support,
            residual_norm=residual,
        )

    def recover_blocks(
        self,
        rss: np.ndarray,
        blocks: Sequence[Tuple[int, ...]],
        *,
        method: L1Solver = L1Solver.FISTA,
        use_orthogonalization: bool = True,
        noise_tolerance: Optional[float] = None,
        centroid_threshold: float = 0.3,
        warm_start: bool = False,
        work_dtype: Optional[object] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> Dict[Tuple[int, ...], Optional[RecoveryResult]]:
        """Batched recovery of many hypothesis blocks in one pass.

        ``rss`` is the round's full subsampled reading vector; each block
        is a tuple of row positions into it (``y = rss[block]``), so a
        block's recovery is a pure function of the block and the results
        can be shared by every hypothesis that contains it.  Duplicates
        are solved once.  The matched filter is vectorized across
        same-size blocks in single numpy calls; the ℓ1 solvers run on the
        cached Proposition-1 factorizations through
        :func:`repro.core.l1.l1_solve_batch`.  A block whose solve raises
        maps to ``None`` (hypotheses containing it are infeasible).

        A live ``recorder`` counts block instances vs deduped solves and
        failures; instrumentation stays at batch granularity so the
        default :data:`~repro.obs.recorder.NULL_RECORDER` costs a few
        no-op calls per round, not per block.
        """
        rss = np.asarray(rss, dtype=float).ravel()
        unique: List[Tuple[int, ...]] = []
        seen = set()
        for block in blocks:
            key = tuple(int(i) for i in block)
            if key not in seen:
                seen.add(key)
                unique.append(key)
        recorder.count("engine.blocks.instances", len(blocks))
        recorder.count("engine.blocks.unique", len(unique))
        results: Dict[Tuple[int, ...], Optional[RecoveryResult]] = {}
        if method == "matched":
            self._recover_blocks_matched(
                rss, unique, results, centroid_threshold
            )
        else:
            for block in unique:
                rows = np.asarray(block, dtype=int)
                try:
                    results[block] = self.recover_location(
                        rss[rows],
                        rows,
                        method=method,
                        use_orthogonalization=use_orthogonalization,
                        noise_tolerance=noise_tolerance,
                        centroid_threshold=centroid_threshold,
                        warm_start=warm_start,
                        work_dtype=work_dtype,
                        recorder=recorder,
                    )
                except (ValueError, RuntimeError):
                    results[block] = None
        if recorder.enabled:
            failed = sum(1 for value in results.values() if value is None)
            recorder.count("engine.blocks.solved", len(results) - failed)
            recorder.count("engine.blocks.failed", failed)
        return results

    def _recover_blocks_matched(
        self,
        rss: np.ndarray,
        unique: List[Tuple[int, ...]],
        results: Dict[Tuple[int, ...], Optional[RecoveryResult]],
        centroid_threshold: float,
    ) -> None:
        """Vectorized matched-filter recovery, grouped by block size.

        The residual grid ``‖y_b − A_b[:, n]‖²`` for all blocks of one
        size is a single einsum over a (blocks, size, N) difference
        tensor; per-block work after that is only the candidate-column
        softmax and centroid, which are O(N).
        """
        n_cells = self.sensing.shape[1]
        by_size: Dict[int, List[Tuple[int, ...]]] = {}
        for block in unique:
            by_size.setdefault(len(block), []).append(block)
        for size, group in by_size.items():
            # Chunk so the (b, size, N) tensor stays modest.
            chunk = max(1, int(4_000_000 // max(1, size * n_cells)))
            for start in range(0, len(group), chunk):
                part = group[start:start + chunk]
                row_matrix = np.asarray(part, dtype=int)  # (b, size)
                readings = rss[row_matrix]  # (b, size)
                diff = self.sensing[row_matrix] - readings[:, :, None]
                squared = np.einsum("bsn,bsn->bn", diff, diff)  # (b, N)
                for i, block in enumerate(part):
                    rows = row_matrix[i]
                    try:
                        columns = self.cached_columns(rows)
                        residuals = np.sqrt(squared[i, columns])
                        theta_local = CsProblem._matched_weights(residuals)
                        results[block] = self._finish_recovery(
                            readings[i], rows, columns, theta_local,
                            centroid_threshold,
                        )
                    except (ValueError, RuntimeError):
                        results[block] = None


class CsProblem:
    """The CS recovery machinery for one grid + channel.

    The signature basis Ψ is computed lazily and cached; all recovery
    calls share it.

    Parameters
    ----------
    grid:
        The lattice the AP indicators live on.
    channel:
        Path-loss model generating the signatures.
    communication_radius_m:
        Radius used for exact candidate-column pruning; ``None`` disables
        pruning.
    """

    #: Grids at or below this many points may materialise the full Ψ.
    MAX_DENSE_PSI_POINTS = 4096

    #: Round contexts memoized per reference-point set (LRU).
    MAX_CACHED_CONTEXTS = 32

    def __init__(
        self,
        grid: Grid,
        channel: PathLossModel,
        *,
        communication_radius_m: Optional[float] = None,
        cross_round_cache: bool = True,
    ) -> None:
        if communication_radius_m is not None and communication_radius_m <= 0:
            raise ValueError(
                f"communication_radius_m must be > 0, got {communication_radius_m}"
            )
        self.grid = grid
        self.channel = channel
        self.communication_radius_m = communication_radius_m
        self._psi: Optional[np.ndarray] = None
        self._coords = grid.coordinates()
        self._context_cache: "OrderedDict[Tuple[int, ...], RoundRecoveryContext]" = (
            OrderedDict()
        )
        # Cell-keyed memoization that survives across rounds (bitwise
        # identical to recomputation; see :class:`_CrossRoundCache`).
        self._cross_cache: Optional[_CrossRoundCache] = (
            _CrossRoundCache() if cross_round_cache else None
        )

    @property
    def cache_stats(self) -> Dict[str, int]:
        """Cross-round cache counters (empty when caching is disabled)."""
        if self._cross_cache is None:
            return {}
        return dict(self._cross_cache.stats)

    @property
    def n_grid_points(self) -> int:
        """N, the number of lattice cells an AP indicator can occupy (§4.2.2)."""
        return self.grid.n_points

    @property
    def psi(self) -> np.ndarray:
        """The full N × N signature basis Ψ (cached; small grids only).

        Sensing rows are normally computed on demand (``A`` is only M × N),
        so the quadratic Ψ is materialised only when a caller explicitly
        asks for it, and refused beyond :attr:`MAX_DENSE_PSI_POINTS`.
        """
        if self.n_grid_points > self.MAX_DENSE_PSI_POINTS:
            raise MemoryError(
                f"refusing to materialise a {self.n_grid_points}² signature "
                "basis; use sensing_matrix(), which is only M × N"
            )
        if self._psi is None:
            deltas = self._coords[:, None, :] - self._coords[None, :, :]
            distances = np.sqrt((deltas**2).sum(axis=-1))
            self._psi = self.channel.mean_rss_dbm(distances)
        return self._psi

    def measurement_rows(self, positions: Sequence[Point]) -> np.ndarray:
        """Grid indices (Φ rows) of the vehicle's reference points."""
        if not positions:
            raise ValueError("need at least one measurement position")
        return np.array([self.grid.snap(p) for p in positions], dtype=int)

    def _rp_to_grid_distances(self, rp_indices: np.ndarray) -> np.ndarray:
        """(m, N) Euclidean distances from each RP grid cell to every cell."""
        rp_coords = self._coords[rp_indices]  # (m, 2)
        deltas = self._coords[None, :, :] - rp_coords[:, None, :]
        return np.sqrt((deltas**2).sum(axis=-1))

    def _rp_rows(self, rp_indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Distance and sensing rows for the given RP cells, row-cached.

        Both the distance row and the sensing row of one cell are pure
        elementwise functions of that cell's coordinates, so assembling
        the (m, N) matrices from per-cell cached rows is bitwise
        identical to the batched computation — overlapping windows reuse
        the expensive ``log10`` sensing rows instead of recomputing them
        every round.
        """
        cross = self._cross_cache
        if cross is None:
            distances = self._rp_to_grid_distances(rp_indices)
            return distances, self.channel.mean_rss_dbm(distances)
        m, n_cells = rp_indices.size, self.n_grid_points
        distances = np.empty((m, n_cells))
        sensing = np.empty((m, n_cells))
        for i, cell in enumerate(rp_indices):
            cell = int(cell)
            rows = cross.get(cross.rows, cell, "rows")
            if rows is None:
                deltas = self._coords - self._coords[cell]
                distance_row = np.sqrt((deltas**2).sum(axis=-1))
                rows = (distance_row, self.channel.mean_rss_dbm(distance_row))
                cross.put(cross.rows, cell, rows, cross.MAX_ROWS)
            distances[i] = rows[0]
            sensing[i] = rows[1]
        return distances, sensing

    def sensing_matrix(self, rp_indices: np.ndarray) -> np.ndarray:
        """``A = Φ Ψ``: the Ψ rows at the given RP grid indices.

        Computed directly from RP-to-grid distances — the full Ψ is never
        formed, so arbitrarily fine lattices stay cheap (A is M × N).
        """
        rp_indices = np.asarray(rp_indices, dtype=int)
        if rp_indices.ndim != 1 or rp_indices.size == 0:
            raise ValueError("rp_indices must be a non-empty 1-D index array")
        return self.channel.mean_rss_dbm(self._rp_to_grid_distances(rp_indices))

    def candidate_columns(self, rp_indices: np.ndarray) -> np.ndarray:
        """Grid columns within communication radius of *every* RP row.

        A reading taken at RP i can only have come from an AP within the
        communication radius of RP i; a column must therefore be reachable
        from all RPs assigned to that AP.  Without a configured radius all
        columns are candidates.
        """
        rp_indices = np.asarray(rp_indices, dtype=int)
        if self.communication_radius_m is None:
            return np.arange(self.n_grid_points)
        distances = self._rp_to_grid_distances(rp_indices)  # (m, N)
        # Allow one lattice diagonal of slack for snap quantization.
        limit = self.communication_radius_m + self.grid.diameter
        mask = (distances <= limit).all(axis=0)
        if not mask.any():
            # Over-constrained (e.g. inconsistent assignment hypothesis):
            # fall back to columns reachable from at least one RP.
            mask = (distances <= limit).any(axis=0)
        if not mask.any():
            return np.arange(self.n_grid_points)
        return np.flatnonzero(mask)

    def recover_column(
        self,
        y: np.ndarray,
        rp_indices: np.ndarray,
        *,
        method: L1Solver = L1Solver.FISTA,
        use_orthogonalization: bool = True,
        noise_tolerance: Optional[float] = None,
        sparsity_budget: int = 4,
    ) -> np.ndarray:
        """Recover one AP indicator column θ from its assigned readings.

        Parameters
        ----------
        y:
            RSS readings (dBm) assigned to this AP, one per RP row.
        rp_indices:
            Grid indices where those readings were taken.
        method:
            ``"basis_pursuit"`` / ``"fista"`` / ``"omp"`` from
            :class:`L1Solver`, or the string ``"matched"`` for the exact
            maximum-likelihood 1-sparse matched filter (fast path).
        use_orthogonalization:
            Apply Proposition 1 before solving (recommended; Φ and Ψ are
            spatially coherent).
        noise_tolerance:
            Basis-pursuit equality relaxation.  ``None`` auto-scales it so
            the best single-column fit is always feasible (exact equality
            is infeasible for any noisy over-determined block).

        Returns
        -------
        numpy.ndarray
            Full-length (N,) non-negative coefficient vector.
        """
        y = np.asarray(y, dtype=float).ravel()
        rp_indices = np.asarray(rp_indices, dtype=int)
        if y.size != rp_indices.size:
            raise ValueError(
                f"{y.size} readings but {rp_indices.size} RP indices"
            )
        columns = self.candidate_columns(rp_indices)
        A = self.sensing_matrix(rp_indices)[:, columns]
        theta_local = self._solve_block(
            A,
            y,
            method=method,
            use_orthogonalization=use_orthogonalization,
            noise_tolerance=noise_tolerance,
            sparsity_budget=sparsity_budget,
        )
        theta = np.zeros(self.n_grid_points)
        theta[columns] = np.maximum(theta_local, 0.0)
        return theta

    def round_context(self, rp_indices: np.ndarray) -> RoundRecoveryContext:
        """The shared recovery context for one round's RPs (memoized).

        Keyed by the reference-point index tuple: a problem is bound to
        one grid, so (grid, RP set) identifies the round's orthogonalized
        system, and repeated rounds over the same RPs — or repeated
        hypothesis sweeps within one round — reuse the context's sensing
        rows, reachability masks, and Proposition-1 factorizations.
        """
        rp_indices = np.asarray(rp_indices, dtype=int)
        if rp_indices.ndim != 1 or rp_indices.size == 0:
            raise ValueError("rp_indices must be a non-empty 1-D index array")
        key = tuple(int(i) for i in rp_indices)
        context = self._context_cache.get(key)
        if context is None:
            context = RoundRecoveryContext(self, rp_indices)
            self._context_cache[key] = context
            if len(self._context_cache) > self.MAX_CACHED_CONTEXTS:
                self._context_cache.popitem(last=False)
        else:
            self._context_cache.move_to_end(key)
        return context

    def _solve_block(
        self,
        A: np.ndarray,
        y: np.ndarray,
        *,
        method: L1Solver = L1Solver.FISTA,
        use_orthogonalization: bool = True,
        noise_tolerance: Optional[float] = None,
        sparsity_budget: int = 4,
        ortho: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        lipschitz: Optional[float] = None,
        theta0: Optional[np.ndarray] = None,
        adaptive_restart: bool = False,
        work_dtype: Optional[object] = None,
        sweep_counts: Optional[np.ndarray] = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> np.ndarray:
        """Solve one block's recovery on an already-assembled system.

        ``ortho`` is an optional precomputed Proposition-1 ``(Q, T)``
        pair for this exact ``A`` (see
        :meth:`RoundRecoveryContext.orthogonalized_block`); when absent
        the factorization is computed on the spot.  All ℓ1 methods are
        dispatched through :func:`repro.core.l1.l1_solve_batch` as a
        single-column batch, so looped and batched recoveries share one
        code path.  ``lipschitz``/``theta0``/``adaptive_restart``/
        ``work_dtype``/``sweep_counts`` are FISTA-only warm-solve knobs,
        forwarded untouched.
        """
        if method == "matched":
            return self._matched_filter(A, y)
        solver = L1Solver(method)
        if use_orthogonalization:
            if ortho is None:
                ortho = orthogonalize_system(A)
            Q, T = ortho
            system_A, system_y = Q, T @ y
        else:
            system_A, system_y = A, y
        if solver is not L1Solver.OMP and noise_tolerance is None:
            # Feasibility floor: the ℓ∞ residual of the best
            # single-column fit, with 5% headroom.
            best_fit = float(
                np.abs(system_A - system_y[:, None]).max(axis=0).min()
            )
            noise_tolerance = 1.05 * best_fit
        fista_knobs = {}
        if solver is L1Solver.FISTA:
            fista_knobs = dict(
                theta0=theta0,
                adaptive_restart=adaptive_restart,
                lipschitz=lipschitz,
                work_dtype=work_dtype,
                sweep_counts=sweep_counts,
            )
        return l1_solve_batch(
            system_A,
            system_y[:, None],
            method=solver,
            noise_tolerance=0.0 if noise_tolerance is None else noise_tolerance,
            sparsity=sparsity_budget,
            nonnegative=True,
            recorder=recorder,
            **fista_knobs,
        )[:, 0]

    @staticmethod
    def _matched_weights(residuals: np.ndarray) -> np.ndarray:
        """Softmax weighting of per-column matched-filter residuals."""
        squared = residuals**2
        spread = max(float(np.std(squared)), 1e-9)
        weights = np.exp(-(squared - squared.min()) / spread)
        return weights / weights.sum()

    @staticmethod
    def _matched_filter(A: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Exact ML recovery of a unit-coefficient 1-sparse column.

        The residual ``‖y − A[:, n]‖₂`` is computed for every candidate
        column; the output coefficients are softmax weights of the negative
        squared residuals, so downstream threshold-centroid processing sees
        a peaked-but-smooth vector and can interpolate between cells.
        """
        residuals = np.linalg.norm(A - y[:, None], axis=0)
        return CsProblem._matched_weights(residuals)

    def recover_location(
        self,
        y: np.ndarray,
        rp_indices: np.ndarray,
        *,
        method: L1Solver = L1Solver.FISTA,
        use_orthogonalization: bool = True,
        noise_tolerance: Optional[float] = None,
        centroid_threshold: float = 0.3,
    ) -> RecoveryResult:
        """Recover a column and refine it to coordinates (§4.3.4)."""
        theta = self.recover_column(
            y,
            rp_indices,
            method=method,
            use_orthogonalization=use_orthogonalization,
            noise_tolerance=noise_tolerance,
        )
        location, support = threshold_centroid(
            theta, self.grid, threshold_fraction=centroid_threshold
        )
        fitted = self.sensing_matrix(rp_indices)[:, self.grid.snap(location)]
        residual = float(np.linalg.norm(np.asarray(y, dtype=float) - fitted))
        return RecoveryResult(
            location=location,
            coefficients=theta,
            support=support,
            residual_norm=residual,
        )
