"""The online compressive-sensing engine — the full vehicle-side pipeline.

Per sliding-window round (Fig. 2, online half):

1. take the window's readings; subsample to a tractable per-round set
   (Proposition 2 makes the combination step explode otherwise);
2. form the grid — either a fixed scenario grid or the paper's online
   grid formation from the round's reference points (§4.3.1);
3. optionally add Gaussian white noise to the observation vector at a
   configured SNR (matching the robustness experiments of §6.1);
4. enumerate candidate (AP, RSS) assignments (§4.3.3);
5. recover each hypothesised AP's column via ℓ1-minimization on the
   orthogonalized system (§4.2.2 / Proposition 1) and refine with
   threshold-centroid processing (§4.3.4);
6. score each hypothesis with GMM + BIC and keep the maximiser (§4.3.5);
7. grant credits to the winning locations and consolidate across rounds
   (§4.3.6).

The consolidated, credit-filtered AP set is the engine's output — the
coarse-grained estimate a crowd-vehicle uploads to the crowd-server.

The per-round pipeline itself lives in
:class:`~repro.core.stream.StreamingCsEngine`, which consumes readings
one at a time; :class:`OnlineCsEngine.process_trace` is a thin batch
wrapper that feeds a collected trace through the streaming consumer, so
batch and streaming share one implementation and agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.consolidate import ApEstimate
from repro.core.window import SlidingWindow, WindowConfig
from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.radio.gmm import DEFAULT_SIGMA_FACTOR
from repro.radio.pathloss import PathLossModel
from repro.obs.recorder import Recorder, ensure_recorder
from repro.radio.rss import RssMeasurement, RssTrace
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "EngineConfig",
    "RoundDiagnostics",
    "OnlineCsResult",
    "OnlineCsEngine",
]


@dataclass(frozen=True)
class EngineConfig:
    """All tunables of the online CS pipeline, with the paper's defaults.

    Parameters
    ----------
    window:
        Sliding-window size/step (paper: 60 / 10 for the UCI simulation).
    lattice_length_m:
        Grid lattice edge (paper: 8 m UCI, 10 m testbed).
    communication_radius_m:
        Collector radio reach ``r_m`` — pads the online grid and prunes
        candidate columns.
    readings_per_round:
        Number of readings subsampled (evenly in time) from each window
        for the combination search.  Keeps the Proposition-2 blowup at
        bay while the full window still feeds the BIC likelihood.
    solver:
        ``"basis_pursuit"`` / ``"fista"`` / ``"omp"`` / ``"matched"``.
        The default ``"matched"`` is the exact maximum-likelihood solver
        for the unit-coefficient 1-sparse per-AP columns (equivalent to
        the ℓ0 program the ℓ1 relaxations approximate) and is both the
        most accurate and the fastest; the ℓ1 solvers are kept faithful
        to the paper and compared in the solver ablation benchmark.
    solver_warm_start:
        Seed each block's FISTA solve from its previous-round solution
        (blocks are keyed by grid cells, so overlapping windows hit).
        FISTA only; other solvers ignore it.  Warm solves converge to
        the same objective from a closer start — coefficients can differ
        within the solver tolerance.
    solver_dtype:
        ``"float64"`` (default, exact) or ``"float32"`` — opt-in reduced
        precision for the FISTA inner loop, roughly halving solve time
        at ~1e-4 coefficient deviation (see docs/ARCHITECTURE.md §2).
        Only valid with ``solver="fista"``.
    cross_round_cache:
        Reuse sensing rows, candidate columns and Proposition-1
        factorizations across overlapping windows, keyed by grid cells.
        Pure recomputation avoidance: every cached value is a function
        of its key, so results are bit-identical with the cache on or
        off.  Also bounds the per-reading TTL work via the streaming
        deadline heap.
    refine / refine_max_shift_m:
        Continuous ML refinement of the winning hypothesis's locations
        (see :mod:`repro.core.refine`); the shift cap defaults to three
        lattice lengths.
    snr_db:
        When set, AWGN at this SNR is added to each round's observation
        vector (§6.1 sets 30 dB).
    max_aps_per_round:
        K_max of the per-round hypothesis search.
    centroid_threshold:
        ζ of §4.3.4, as a fraction of the peak coefficient.
    respect_ttl:
        Honour each reading's TTL (§4.3.2): readings that have expired
        relative to the newest timestamp in their window are dropped
        before the round is processed.  Off by default — the evaluation
        traces are short relative to the default TTL.
    alignment_radius_m / credit_filter_threshold:
        Consolidation knobs (§4.3.6); alignment defaults to 1.5 lattice
        lengths, floored at 10 m (per-round estimate scatter comes from
        noise and geometry, not cell size).
    sigma_factor:
        GMM σ scaling for BIC scoring.
    """

    window: WindowConfig = field(default_factory=WindowConfig)
    lattice_length_m: float = 8.0
    communication_radius_m: float = 100.0
    readings_per_round: int = 7
    solver: str = "matched"
    use_orthogonalization: bool = True
    solver_warm_start: bool = True
    solver_dtype: str = "float64"
    cross_round_cache: bool = True
    snr_db: Optional[float] = 30.0
    max_aps_per_round: int = 5
    max_exhaustive_items: int = 7
    centroid_threshold: float = 0.3
    respect_ttl: bool = False
    refine: bool = True
    refine_max_shift_m: Optional[float] = None
    alignment_radius_m: Optional[float] = None
    credit_filter_threshold: float = 1.0
    sigma_factor: float = DEFAULT_SIGMA_FACTOR

    def __post_init__(self) -> None:
        if self.lattice_length_m <= 0:
            raise ValueError(
                f"lattice_length_m must be > 0, got {self.lattice_length_m}"
            )
        if self.communication_radius_m <= 0:
            raise ValueError(
                f"communication_radius_m must be > 0, got {self.communication_radius_m}"
            )
        if self.readings_per_round < 1:
            raise ValueError(
                f"readings_per_round must be >= 1, got {self.readings_per_round}"
            )
        if self.max_aps_per_round < 1:
            raise ValueError(
                f"max_aps_per_round must be >= 1, got {self.max_aps_per_round}"
            )
        if not 0.0 < self.centroid_threshold <= 1.0:
            raise ValueError(
                f"centroid_threshold must be in (0, 1], got {self.centroid_threshold}"
            )
        if self.solver_dtype not in ("float64", "float32"):
            raise ValueError(
                f"solver_dtype must be 'float64' or 'float32', got {self.solver_dtype!r}"
            )
        if self.solver_dtype == "float32" and self.solver != "fista":
            raise ValueError(
                "solver_dtype='float32' only applies to the FISTA solver, "
                f"not {self.solver!r}"
            )

    @property
    def effective_alignment_radius_m(self) -> float:
        """Consolidation alignment radius: 1.5 lattice lengths, floored.

        The floor matters for very fine lattices: per-round estimates of
        one AP scatter by a few meters regardless of cell size (the
        scatter comes from noise and reading geometry, not quantization),
        so the radius must not shrink below that scatter.
        """
        if self.alignment_radius_m is not None:
            return self.alignment_radius_m
        return max(1.5 * self.lattice_length_m, 10.0)

    @property
    def effective_refine_max_shift_m(self) -> float:
        """Refinement shift cap (§4.3.4): three lattice lengths by default.

        Bounds how far the continuous ML re-fit may move a winning grid
        estimate, keeping refinement a local polish rather than a search.
        """
        if self.refine_max_shift_m is not None:
            return self.refine_max_shift_m
        return 3.0 * self.lattice_length_m


@dataclass(frozen=True)
class RoundDiagnostics:
    """What one sliding-window round decided."""

    round_index: int
    n_readings: int
    n_hypotheses: int
    chosen_k: int
    chosen_locations: List[Point]
    bic_score: float


@dataclass(frozen=True)
class OnlineCsResult:
    """Final output of a trace's worth of online CS."""

    estimates: List[ApEstimate]
    rounds: List[RoundDiagnostics]

    @property
    def locations(self) -> List[Point]:
        """Estimated AP locations, credit-descending."""
        return [e.location for e in self.estimates]

    @property
    def n_aps(self) -> int:
        """Estimated AP count."""
        return len(self.estimates)


class OnlineCsEngine:
    """Vehicle-side online compressive sensing (§4).

    Parameters
    ----------
    channel:
        The path-loss model assumed by the recovery (the vehicle knows the
        AP transmit regime from the standard).
    config:
        Pipeline tunables.
    grid:
        A fixed grid to recover on.  When ``None``, each round forms its
        own grid from its reference points (§4.3.1's online formation).
    rng:
        Seed or generator for the observation-noise draws; all entropy
        flows through it.
    recorder:
        Telemetry sink (see :mod:`repro.obs`).  ``None`` means the no-op
        :class:`~repro.obs.recorder.NullRecorder`; a live recorder
        collects per-round block/solve counts, hypothesis counts, BIC
        scores and span timings without changing any output.
    """

    def __init__(
        self,
        channel: PathLossModel,
        config: Optional[EngineConfig] = None,
        *,
        grid: Optional[Grid] = None,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.channel = channel
        self.config = config if config is not None else EngineConfig()
        self.fixed_grid = grid
        self.recorder = ensure_recorder(recorder)
        self._rng = ensure_rng(rng)
        self._window = SlidingWindow(self.config.window)
        # Deferred import: stream.py pulls EngineConfig and the result
        # types from this module at import time.
        from repro.core.stream import StreamingCsEngine

        self._stream = StreamingCsEngine(
            channel,
            self.config,
            grid=grid,
            rng=self._rng,
            recorder=self.recorder,
        )
        self._enumerator = self._stream._enumerator
        self._fixed_problem = self._stream._fixed_problem

    def process_trace(
        self, trace: Union[RssTrace, Sequence[RssMeasurement]]
    ) -> OnlineCsResult:
        """Run the full pipeline (steps 1–7 of Fig. 2's online half) over a
        collected trace and return the consolidated, credit-filtered AP set.

        Batch is a thin wrapper over :class:`~repro.core.stream.StreamingCsEngine`:
        readings are fed through the incremental consumer one at a time
        (no trace-length materialization), so batch and streaming share
        one round pipeline and produce bit-identical results.
        """
        stream = self._stream
        stream.reset()
        with self.recorder.span("engine.trace"):
            for measurement in trace:
                stream.push(measurement)
            return stream.finalize()

    def estimate(
        self, trace: Union[RssTrace, Sequence[RssMeasurement]]
    ) -> List[Point]:
        """Convenience wrapper returning just the estimated AP locations."""
        return self.process_trace(trace).locations

    # ------------------------------------------------------------------
    # internals

    def _subsample_indices(self, window_length: int) -> np.ndarray:
        """Evenly spaced subsample indices (keeps combinations small)."""
        return self._stream._subsample_indices(window_length)
