"""The online compressive-sensing engine — the full vehicle-side pipeline.

Per sliding-window round (Fig. 2, online half):

1. take the window's readings; subsample to a tractable per-round set
   (Proposition 2 makes the combination step explode otherwise);
2. form the grid — either a fixed scenario grid or the paper's online
   grid formation from the round's reference points (§4.3.1);
3. optionally add Gaussian white noise to the observation vector at a
   configured SNR (matching the robustness experiments of §6.1);
4. enumerate candidate (AP, RSS) assignments (§4.3.3);
5. recover each hypothesised AP's column via ℓ1-minimization on the
   orthogonalized system (§4.2.2 / Proposition 1) and refine with
   threshold-centroid processing (§4.3.4);
6. score each hypothesis with GMM + BIC and keep the maximiser (§4.3.5);
7. grant credits to the winning locations and consolidate across rounds
   (§4.3.6).

The consolidated, credit-filtered AP set is the engine's output — the
coarse-grained estimate a crowd-vehicle uploads to the crowd-server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.bic import score_hypothesis
from repro.core.combinations import (
    CombinationEnumerator,
    EnumeratorConfig,
    unique_blocks,
)
from repro.core.consolidate import ApEstimate, CreditConsolidator
from repro.core.cs_problem import CsProblem
from repro.core.refine import refine_hypothesis
from repro.core.window import SlidingWindow, WindowConfig
from repro.geo.grid import Grid, grid_from_reference_points
from repro.geo.points import Point
from repro.radio.gmm import DEFAULT_SIGMA_FACTOR
from repro.radio.pathloss import PathLossModel, snr_noise_sigma
from repro.obs.recorder import Recorder, ensure_recorder
from repro.radio.rss import RssMeasurement, RssTrace
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "EngineConfig",
    "RoundDiagnostics",
    "OnlineCsResult",
    "OnlineCsEngine",
]


@dataclass(frozen=True)
class EngineConfig:
    """All tunables of the online CS pipeline, with the paper's defaults.

    Parameters
    ----------
    window:
        Sliding-window size/step (paper: 60 / 10 for the UCI simulation).
    lattice_length_m:
        Grid lattice edge (paper: 8 m UCI, 10 m testbed).
    communication_radius_m:
        Collector radio reach ``r_m`` — pads the online grid and prunes
        candidate columns.
    readings_per_round:
        Number of readings subsampled (evenly in time) from each window
        for the combination search.  Keeps the Proposition-2 blowup at
        bay while the full window still feeds the BIC likelihood.
    solver:
        ``"basis_pursuit"`` / ``"fista"`` / ``"omp"`` / ``"matched"``.
        The default ``"matched"`` is the exact maximum-likelihood solver
        for the unit-coefficient 1-sparse per-AP columns (equivalent to
        the ℓ0 program the ℓ1 relaxations approximate) and is both the
        most accurate and the fastest; the ℓ1 solvers are kept faithful
        to the paper and compared in the solver ablation benchmark.
    refine / refine_max_shift_m:
        Continuous ML refinement of the winning hypothesis's locations
        (see :mod:`repro.core.refine`); the shift cap defaults to three
        lattice lengths.
    snr_db:
        When set, AWGN at this SNR is added to each round's observation
        vector (§6.1 sets 30 dB).
    max_aps_per_round:
        K_max of the per-round hypothesis search.
    centroid_threshold:
        ζ of §4.3.4, as a fraction of the peak coefficient.
    respect_ttl:
        Honour each reading's TTL (§4.3.2): readings that have expired
        relative to the newest timestamp in their window are dropped
        before the round is processed.  Off by default — the evaluation
        traces are short relative to the default TTL.
    alignment_radius_m / credit_filter_threshold:
        Consolidation knobs (§4.3.6); alignment defaults to 1.5 lattice
        lengths, floored at 10 m (per-round estimate scatter comes from
        noise and geometry, not cell size).
    sigma_factor:
        GMM σ scaling for BIC scoring.
    """

    window: WindowConfig = field(default_factory=WindowConfig)
    lattice_length_m: float = 8.0
    communication_radius_m: float = 100.0
    readings_per_round: int = 7
    solver: str = "matched"
    use_orthogonalization: bool = True
    snr_db: Optional[float] = 30.0
    max_aps_per_round: int = 5
    max_exhaustive_items: int = 7
    centroid_threshold: float = 0.3
    respect_ttl: bool = False
    refine: bool = True
    refine_max_shift_m: Optional[float] = None
    alignment_radius_m: Optional[float] = None
    credit_filter_threshold: float = 1.0
    sigma_factor: float = DEFAULT_SIGMA_FACTOR

    def __post_init__(self) -> None:
        if self.lattice_length_m <= 0:
            raise ValueError(
                f"lattice_length_m must be > 0, got {self.lattice_length_m}"
            )
        if self.communication_radius_m <= 0:
            raise ValueError(
                f"communication_radius_m must be > 0, got {self.communication_radius_m}"
            )
        if self.readings_per_round < 1:
            raise ValueError(
                f"readings_per_round must be >= 1, got {self.readings_per_round}"
            )
        if self.max_aps_per_round < 1:
            raise ValueError(
                f"max_aps_per_round must be >= 1, got {self.max_aps_per_round}"
            )
        if not 0.0 < self.centroid_threshold <= 1.0:
            raise ValueError(
                f"centroid_threshold must be in (0, 1], got {self.centroid_threshold}"
            )

    @property
    def effective_alignment_radius_m(self) -> float:
        """Consolidation alignment radius: 1.5 lattice lengths, floored.

        The floor matters for very fine lattices: per-round estimates of
        one AP scatter by a few meters regardless of cell size (the
        scatter comes from noise and reading geometry, not quantization),
        so the radius must not shrink below that scatter.
        """
        if self.alignment_radius_m is not None:
            return self.alignment_radius_m
        return max(1.5 * self.lattice_length_m, 10.0)

    @property
    def effective_refine_max_shift_m(self) -> float:
        """Refinement shift cap (§4.3.4): three lattice lengths by default.

        Bounds how far the continuous ML re-fit may move a winning grid
        estimate, keeping refinement a local polish rather than a search.
        """
        if self.refine_max_shift_m is not None:
            return self.refine_max_shift_m
        return 3.0 * self.lattice_length_m


@dataclass(frozen=True)
class RoundDiagnostics:
    """What one sliding-window round decided."""

    round_index: int
    n_readings: int
    n_hypotheses: int
    chosen_k: int
    chosen_locations: List[Point]
    bic_score: float


@dataclass(frozen=True)
class OnlineCsResult:
    """Final output of a trace's worth of online CS."""

    estimates: List[ApEstimate]
    rounds: List[RoundDiagnostics]

    @property
    def locations(self) -> List[Point]:
        """Estimated AP locations, credit-descending."""
        return [e.location for e in self.estimates]

    @property
    def n_aps(self) -> int:
        """Estimated AP count."""
        return len(self.estimates)


class OnlineCsEngine:
    """Vehicle-side online compressive sensing (§4).

    Parameters
    ----------
    channel:
        The path-loss model assumed by the recovery (the vehicle knows the
        AP transmit regime from the standard).
    config:
        Pipeline tunables.
    grid:
        A fixed grid to recover on.  When ``None``, each round forms its
        own grid from its reference points (§4.3.1's online formation).
    rng:
        Seed or generator for the observation-noise draws; all entropy
        flows through it.
    recorder:
        Telemetry sink (see :mod:`repro.obs`).  ``None`` means the no-op
        :class:`~repro.obs.recorder.NullRecorder`; a live recorder
        collects per-round block/solve counts, hypothesis counts, BIC
        scores and span timings without changing any output.
    """

    def __init__(
        self,
        channel: PathLossModel,
        config: Optional[EngineConfig] = None,
        *,
        grid: Optional[Grid] = None,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.channel = channel
        self.config = config if config is not None else EngineConfig()
        self.fixed_grid = grid
        self.recorder = ensure_recorder(recorder)
        self._rng = ensure_rng(rng)
        self._window = SlidingWindow(self.config.window)
        self._enumerator = CombinationEnumerator(
            EnumeratorConfig(
                max_aps=self.config.max_aps_per_round,
                max_exhaustive_items=self.config.max_exhaustive_items,
            ),
            rng=self._rng,
        )
        self._fixed_problem: Optional[CsProblem] = None
        if grid is not None:
            self._fixed_problem = CsProblem(
                grid,
                channel,
                communication_radius_m=self.config.communication_radius_m,
            )

    def process_trace(
        self, trace: Union[RssTrace, Sequence[RssMeasurement]]
    ) -> OnlineCsResult:
        """Run the full pipeline (steps 1–7 of Fig. 2's online half) over a
        collected trace and return the consolidated, credit-filtered AP set."""
        measurements = list(trace)
        consolidator = CreditConsolidator(
            alignment_radius_m=self.config.effective_alignment_radius_m,
            credit_filter_threshold=self.config.credit_filter_threshold,
            recorder=self.recorder,
        )
        diagnostics: List[RoundDiagnostics] = []
        with self.recorder.span("engine.trace"):
            for round_index, (start, end) in enumerate(
                self._window.rounds(len(measurements))
            ):
                window = measurements[start:end]
                round_result = self._process_round(round_index, window)
                if round_result is None:
                    continue
                diagnostics.append(round_result)
                consolidator.ingest_round(round_result.chosen_locations)
        return OnlineCsResult(
            estimates=consolidator.filtered_estimates(),
            rounds=diagnostics,
        )

    def estimate(
        self, trace: Union[RssTrace, Sequence[RssMeasurement]]
    ) -> List[Point]:
        """Convenience wrapper returning just the estimated AP locations."""
        return self.process_trace(trace).locations

    # ------------------------------------------------------------------
    # internals

    def _process_round(
        self, round_index: int, window: List[RssMeasurement]
    ) -> Optional[RoundDiagnostics]:
        if not window:
            return None
        recorder = self.recorder
        if self.config.respect_ttl:
            now = window[-1].timestamp
            window = [m for m in window if not m.expired(now)]
            if not window:
                return None
        recorder.count("engine.rounds")
        recorder.count("engine.readings", len(window))
        with recorder.span("engine.window_advance"):
            window_positions = [m.position for m in window]
            window_rss = self._add_observation_noise(
                np.array([m.rss_dbm for m in window], dtype=float)
            )
            subsample_indices = self._subsample_indices(len(window))
            positions = [window_positions[i] for i in subsample_indices]
            rss = window_rss[subsample_indices]

            problem = self._problem_for(positions)
            rp_indices = problem.measurement_rows(positions)
            context = problem.round_context(rp_indices)

        partitions = self._enumerator.candidate_partitions(positions, rss.tolist())
        if not partitions:
            return None
        recorder.count("engine.partitions", len(partitions))

        # Hot path: blocks repeat across hypotheses, so recover each
        # distinct block once (batched, cached factorizations) and let
        # every partition read from the shared result map.
        with recorder.span("engine.recover_blocks"):
            recoveries = context.recover_blocks(
                rss,
                unique_blocks(partitions),
                method=self.config.solver,
                use_orthogonalization=self.config.use_orthogonalization,
                centroid_threshold=self.config.centroid_threshold,
                recorder=recorder,
            )

        best_locations: Optional[List[Point]] = None
        best_score = float("-inf")
        evaluated = 0
        with recorder.span("engine.bic_scoring"):
            for partition in partitions:
                locations = self._locations_for(partition, recoveries)
                if locations is None:
                    continue
                evaluated += 1
                # BIC is scored against the FULL window, not just the
                # subsample that drove the combination search — the window
                # is the round's data set R_n (§4.3.5), and the mixture
                # likelihood needs no reading-to-AP assignment.
                score = score_hypothesis(
                    window_rss.tolist(),
                    window_positions,
                    locations,
                    self.channel,
                    sigma_factor=self.config.sigma_factor,
                )
                if score > best_score:
                    best_score = score
                    best_locations = locations
        recorder.count("engine.hypotheses", evaluated)
        if best_locations is None:
            return None
        if recorder.enabled:
            recorder.observe("engine.bic.best", best_score)
            recorder.observe("engine.round.k", len(best_locations))
        if self.config.refine:
            with recorder.span("engine.refine"):
                best_locations = self._refine_with_window(
                    best_locations, window_positions, window_rss
                )
        return RoundDiagnostics(
            round_index=round_index,
            n_readings=len(window),
            n_hypotheses=evaluated,
            chosen_k=len(best_locations),
            chosen_locations=best_locations,
            bic_score=best_score,
        )

    def _subsample_indices(self, window_length: int) -> np.ndarray:
        """Evenly spaced subsample indices (keeps combinations small)."""
        budget = self.config.readings_per_round
        if window_length <= budget:
            return np.arange(window_length)
        indices = np.linspace(0, window_length - 1, budget).round().astype(int)
        return np.unique(indices)

    def _refine_with_window(
        self,
        locations: List[Point],
        window_positions: List[Point],
        window_rss: np.ndarray,
    ) -> List[Point]:
        """Refine the winning hypothesis against every window reading.

        Each window reading is assigned to the hypothesis AP most likely
        to have produced it (smallest residual against the path-loss
        mean), then every AP is re-fit on its full reading set — far more
        data per AP than the combination subsample carries.
        """
        if not locations:
            return locations
        positions_xy = np.array([[p.x, p.y] for p in window_positions])
        ap_xy = np.array([[p.x, p.y] for p in locations])
        distances = np.linalg.norm(
            positions_xy[:, None, :] - ap_xy[None, :, :], axis=-1
        )
        expected = self.channel.mean_rss_dbm(distances)  # (n, k)
        assignment = np.abs(expected - window_rss[:, None]).argmin(axis=1)

        block_points: List[List[Point]] = []
        block_rss: List[List[float]] = []
        for k in range(len(locations)):
            members = np.flatnonzero(assignment == k)
            block_points.append([window_positions[i] for i in members])
            block_rss.append(window_rss[members].tolist())
        return refine_hypothesis(
            self.channel,
            block_points,
            block_rss,
            locations,
            max_shift_m=self.config.effective_refine_max_shift_m,
        )

    def _add_observation_noise(self, rss: np.ndarray) -> np.ndarray:
        if self.config.snr_db is None:
            return rss
        sigma = snr_noise_sigma(rss, self.config.snr_db)
        if sigma == 0.0:
            return rss
        return rss + self._rng.normal(0.0, sigma, size=rss.shape)

    def _problem_for(self, positions: Sequence[Point]) -> CsProblem:
        if self._fixed_problem is not None:
            return self._fixed_problem
        grid = grid_from_reference_points(
            list(positions),
            self.config.communication_radius_m,
            self.config.lattice_length_m,
        )
        return CsProblem(
            grid,
            self.channel,
            communication_radius_m=self.config.communication_radius_m,
        )

    @staticmethod
    def _locations_for(partition, recoveries) -> Optional[List[Point]]:
        """Assemble a hypothesis's locations from the shared block map.

        ``None`` marks an infeasible hypothesis (one of its blocks failed
        to recover), matching the per-partition error handling of the
        pre-batched loop.
        """
        locations: List[Point] = []
        for block in partition:
            recovery = recoveries.get(block)
            if recovery is None:
                return None
            locations.append(recovery.location)
        return locations
