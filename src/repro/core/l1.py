"""ℓ1-minimization solvers for sparse recovery.

Three interchangeable solvers:

* :func:`solve_basis_pursuit` — exact basis pursuit
  ``min ‖θ‖₁ s.t. ‖Aθ − y‖₂ ≤ δ`` via linear programming (equality form
  when δ=0; otherwise an ℓ∞ surrogate keeps the problem linear).
* :func:`solve_bpdn_fista` — basis-pursuit denoising (LASSO form)
  ``min ½‖Aθ − y‖₂² + λ‖θ‖₁`` via FISTA, optionally with a
  non-negativity constraint (AP indicators are non-negative).
* :func:`solve_omp` — orthogonal matching pursuit for a known sparsity
  budget; exact and very fast for the 1-sparse per-AP columns.

All three accept the same ``(A, y)`` and return a dense coefficient
vector, so the engine can switch solver by name (see :class:`L1Solver`).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np
from scipy.optimize import linprog

__all__ = [
    "L1Solver",
    "solve_basis_pursuit",
    "solve_bpdn_fista",
    "solve_omp",
    "l1_solve",
]


class L1Solver(str, enum.Enum):
    """Solver selection for the CS recovery step."""

    BASIS_PURSUIT = "basis_pursuit"
    FISTA = "fista"
    OMP = "omp"


def _validate_system(A: np.ndarray, y: np.ndarray) -> tuple:
    A = np.asarray(A, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if A.ndim != 2:
        raise ValueError(f"A must be 2-D, got shape {A.shape}")
    if A.shape[0] != y.size:
        raise ValueError(
            f"A has {A.shape[0]} rows but y has {y.size} entries"
        )
    if A.shape[0] == 0 or A.shape[1] == 0:
        raise ValueError(f"degenerate system of shape {A.shape}")
    return A, y


def solve_basis_pursuit(
    A: np.ndarray,
    y: np.ndarray,
    *,
    noise_tolerance: float = 0.0,
    nonnegative: bool = False,
) -> np.ndarray:
    """Exact ℓ1-minimization by linear programming.

    With ``noise_tolerance == 0`` this is classical basis pursuit
    ``min ‖θ‖₁ s.t. Aθ = y``.  With a positive tolerance the equality is
    relaxed to the box ``|Aθ − y| ≤ noise_tolerance`` element-wise (an ℓ∞
    ball, which keeps the program linear; ‖·‖∞ ≤ δ ⊆ ‖·‖₂ ≤ δ√M).

    Uses the split ``θ = u − v`` with ``u, v ≥ 0`` so the objective
    ``Σ(u+v)`` equals ‖θ‖₁ at any optimum.
    """
    A, y = _validate_system(A, y)
    if noise_tolerance < 0:
        raise ValueError(f"noise_tolerance must be >= 0, got {noise_tolerance}")
    m, n = A.shape
    if nonnegative:
        # θ ≥ 0 directly: minimize 1ᵀθ.
        cost = np.ones(n)
        if noise_tolerance == 0:
            result = linprog(
                cost, A_eq=A, b_eq=y, bounds=[(0, None)] * n, method="highs"
            )
        else:
            A_ub = np.vstack([A, -A])
            b_ub = np.concatenate([y + noise_tolerance, -(y - noise_tolerance)])
            result = linprog(
                cost, A_ub=A_ub, b_ub=b_ub, bounds=[(0, None)] * n, method="highs"
            )
        if not result.success:
            raise RuntimeError(f"basis pursuit LP failed: {result.message}")
        return np.asarray(result.x, dtype=float)

    cost = np.ones(2 * n)
    A_split = np.hstack([A, -A])
    if noise_tolerance == 0:
        result = linprog(
            cost, A_eq=A_split, b_eq=y, bounds=[(0, None)] * (2 * n), method="highs"
        )
    else:
        A_ub = np.vstack([A_split, -A_split])
        b_ub = np.concatenate([y + noise_tolerance, -(y - noise_tolerance)])
        result = linprog(
            cost, A_ub=A_ub, b_ub=b_ub, bounds=[(0, None)] * (2 * n), method="highs"
        )
    if not result.success:
        raise RuntimeError(f"basis pursuit LP failed: {result.message}")
    x = np.asarray(result.x, dtype=float)
    return x[:n] - x[n:]


def solve_bpdn_fista(
    A: np.ndarray,
    y: np.ndarray,
    *,
    lam: Optional[float] = None,
    nonnegative: bool = False,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Basis-pursuit denoising via FISTA (accelerated proximal gradient).

    Solves ``min ½‖Aθ − y‖₂² + λ‖θ‖₁``.  When ``lam`` is omitted it is set
    to ``0.01 · ‖Aᵀy‖∞``, a standard noise-robust default (λ above
    ‖Aᵀy‖∞ yields the all-zero solution).
    """
    A, y = _validate_system(A, y)
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    correlation = A.T @ y
    if lam is None:
        lam = 0.01 * float(np.abs(correlation).max())
        if lam == 0.0:
            return np.zeros(A.shape[1])
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")

    # Lipschitz constant of the gradient: largest eigenvalue of AᵀA.
    lipschitz = float(np.linalg.norm(A, ord=2) ** 2)
    if lipschitz == 0.0:
        return np.zeros(A.shape[1])
    step = 1.0 / lipschitz

    theta = np.zeros(A.shape[1])
    momentum_point = theta.copy()
    t = 1.0
    for _ in range(max_iterations):
        gradient = A.T @ (A @ momentum_point - y)
        candidate = momentum_point - step * gradient
        # Proximal operator of λ‖·‖₁ (soft threshold), optionally one-sided.
        if nonnegative:
            new_theta = np.maximum(candidate - step * lam, 0.0)
        else:
            new_theta = np.sign(candidate) * np.maximum(
                np.abs(candidate) - step * lam, 0.0
            )
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
        momentum_point = new_theta + ((t - 1.0) / t_next) * (new_theta - theta)
        change = float(np.linalg.norm(new_theta - theta))
        theta = new_theta
        t = t_next
        if change <= tolerance * max(1.0, float(np.linalg.norm(theta))):
            break
    return theta


def solve_omp(
    A: np.ndarray,
    y: np.ndarray,
    *,
    sparsity: int,
    nonnegative: bool = False,
    residual_tolerance: float = 1e-10,
) -> np.ndarray:
    """Orthogonal matching pursuit with a fixed sparsity budget.

    Greedily selects the column most correlated with the residual, then
    re-fits all selected coefficients by least squares.  For the engine's
    per-AP recovery the budget is small (a handful of grid cells around the
    true location).
    """
    A, y = _validate_system(A, y)
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    n = A.shape[1]
    sparsity = min(sparsity, n, A.shape[0])

    norms = np.linalg.norm(A, axis=0)
    usable = norms > 1e-12
    residual = y.copy()
    support: list = []
    coefficients = np.zeros(0)
    for _ in range(sparsity):
        correlation = A.T @ residual
        correlation[~usable] = 0.0
        scores = np.abs(correlation) / np.where(usable, norms, 1.0)
        scores[support] = -np.inf
        best = int(np.argmax(scores))
        if not np.isfinite(scores[best]) or scores[best] <= 0:
            break
        support.append(best)
        submatrix = A[:, support]
        coefficients, *_ = np.linalg.lstsq(submatrix, y, rcond=None)
        residual = y - submatrix @ coefficients
        if float(np.linalg.norm(residual)) <= residual_tolerance:
            break

    theta = np.zeros(n)
    if support:
        theta[support] = coefficients
    if nonnegative:
        theta = np.maximum(theta, 0.0)
    return theta


def l1_solve(
    A: np.ndarray,
    y: np.ndarray,
    *,
    method: L1Solver = L1Solver.FISTA,
    noise_tolerance: float = 0.0,
    sparsity: int = 4,
    nonnegative: bool = True,
) -> np.ndarray:
    """Dispatch to the selected solver with engine-friendly defaults."""
    method = L1Solver(method)
    if method is L1Solver.BASIS_PURSUIT:
        return solve_basis_pursuit(
            A, y, noise_tolerance=noise_tolerance, nonnegative=nonnegative
        )
    if method is L1Solver.FISTA:
        return solve_bpdn_fista(A, y, nonnegative=nonnegative)
    if method is L1Solver.OMP:
        return solve_omp(A, y, sparsity=sparsity, nonnegative=nonnegative)
    raise ValueError(f"unknown solver {method!r}")  # pragma: no cover
