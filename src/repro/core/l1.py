"""ℓ1-minimization solvers for sparse recovery.

Three interchangeable solvers:

* :func:`solve_basis_pursuit` — exact basis pursuit
  ``min ‖θ‖₁ s.t. ‖Aθ − y‖₂ ≤ δ`` via linear programming (equality form
  when δ=0; otherwise an ℓ∞ surrogate keeps the problem linear).
* :func:`solve_bpdn_fista` — basis-pursuit denoising (LASSO form)
  ``min ½‖Aθ − y‖₂² + λ‖θ‖₁`` via FISTA, optionally with a
  non-negativity constraint (AP indicators are non-negative).
* :func:`solve_omp` — orthogonal matching pursuit for a known sparsity
  budget; exact and very fast for the 1-sparse per-AP columns.

All three accept the same ``(A, y)`` and return a dense coefficient
vector, so the engine can switch solver by name (see :class:`L1Solver`).

Every solver also has a *batched* multi-right-hand-side form reached
through :func:`l1_solve_batch`: one sensing matrix ``A`` shared by the k
columns of ``Y``, amortizing the per-system precomputation — the Gram
matrix and column norms for OMP, the Lipschitz constant for FISTA —
across all k solves.  Batched and looped solves agree column for column
(the OMP paths share one core; batched FISTA freezes each column at its
own convergence point, replicating the solo stopping rule).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy.optimize import linprog

from repro.obs.recorder import NULL_RECORDER, Recorder

__all__ = [
    "L1Solver",
    "solve_basis_pursuit",
    "solve_basis_pursuit_batch",
    "solve_bpdn_fista",
    "solve_bpdn_fista_batch",
    "solve_omp",
    "solve_omp_batch",
    "l1_solve",
    "l1_solve_batch",
    "GRAM_MAX_COLUMNS",
]

#: Systems wider than this skip the hoisted Gram matrix: its n² memory
#: and n²m flops would dwarf what it saves.  Engine systems are always
#: candidate-column-pruned well below this.
GRAM_MAX_COLUMNS = 2048


class L1Solver(str, enum.Enum):
    """Solver selection for the CS recovery step."""

    BASIS_PURSUIT = "basis_pursuit"
    FISTA = "fista"
    OMP = "omp"


def _validate_system(A: np.ndarray, y: np.ndarray) -> tuple:
    A = np.asarray(A, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if A.ndim != 2:
        raise ValueError(f"A must be 2-D, got shape {A.shape}")
    if A.shape[0] != y.size:
        raise ValueError(
            f"A has {A.shape[0]} rows but y has {y.size} entries"
        )
    if A.shape[0] == 0 or A.shape[1] == 0:
        raise ValueError(f"degenerate system of shape {A.shape}")
    return A, y


def _validate_batch_system(A: np.ndarray, Y: np.ndarray) -> tuple:
    """Validate a shared-A multi-RHS system; Y becomes (m, k)."""
    A = np.asarray(A, dtype=float)
    Y = np.asarray(Y, dtype=float)
    if Y.ndim == 1:
        Y = Y[:, None]
    if A.ndim != 2 or Y.ndim != 2:
        raise ValueError(
            f"A must be 2-D and Y 1-D or 2-D, got A={A.shape}, Y={Y.shape}"
        )
    if A.shape[0] != Y.shape[0]:
        raise ValueError(
            f"A has {A.shape[0]} rows but Y has {Y.shape[0]}"
        )
    if A.shape[0] == 0 or A.shape[1] == 0 or Y.shape[1] == 0:
        raise ValueError(
            f"degenerate batch system A={A.shape}, Y={Y.shape}"
        )
    return A, Y


def _gram(A: np.ndarray) -> np.ndarray:
    """The Gram matrix ``AᵀA``.

    Hoisted out of OMP's selection loop so it is computed once per solve
    (and once per *batch* in the multi-RHS path); the loop then updates
    correlations incrementally from Gram columns instead of re-touching
    ``A`` on every iteration.  Kept as a module-level function so tests
    can spy on how often it runs.
    """
    return A.T @ A


def solve_basis_pursuit(
    A: np.ndarray,
    y: np.ndarray,
    *,
    noise_tolerance: float = 0.0,
    nonnegative: bool = False,
) -> np.ndarray:
    """Exact ℓ1-minimization by linear programming.

    With ``noise_tolerance == 0`` this is classical basis pursuit
    ``min ‖θ‖₁ s.t. Aθ = y``.  With a positive tolerance the equality is
    relaxed to the box ``|Aθ − y| ≤ noise_tolerance`` element-wise (an ℓ∞
    ball, which keeps the program linear; ‖·‖∞ ≤ δ ⊆ ‖·‖₂ ≤ δ√M).

    Uses the split ``θ = u − v`` with ``u, v ≥ 0`` so the objective
    ``Σ(u+v)`` equals ‖θ‖₁ at any optimum.
    """
    A, y = _validate_system(A, y)
    if noise_tolerance < 0:
        raise ValueError(f"noise_tolerance must be >= 0, got {noise_tolerance}")
    m, n = A.shape
    if nonnegative:
        # θ ≥ 0 directly: minimize 1ᵀθ.
        cost = np.ones(n)
        if noise_tolerance == 0:
            result = linprog(
                cost, A_eq=A, b_eq=y, bounds=[(0, None)] * n, method="highs"
            )
        else:
            A_ub = np.vstack([A, -A])
            b_ub = np.concatenate([y + noise_tolerance, -(y - noise_tolerance)])
            result = linprog(
                cost, A_ub=A_ub, b_ub=b_ub, bounds=[(0, None)] * n, method="highs"
            )
        if not result.success:
            raise RuntimeError(f"basis pursuit LP failed: {result.message}")
        return np.asarray(result.x, dtype=float)

    cost = np.ones(2 * n)
    A_split = np.hstack([A, -A])
    if noise_tolerance == 0:
        result = linprog(
            cost, A_eq=A_split, b_eq=y, bounds=[(0, None)] * (2 * n), method="highs"
        )
    else:
        A_ub = np.vstack([A_split, -A_split])
        b_ub = np.concatenate([y + noise_tolerance, -(y - noise_tolerance)])
        result = linprog(
            cost, A_ub=A_ub, b_ub=b_ub, bounds=[(0, None)] * (2 * n), method="highs"
        )
    if not result.success:
        raise RuntimeError(f"basis pursuit LP failed: {result.message}")
    x = np.asarray(result.x, dtype=float)
    return x[:n] - x[n:]


def solve_bpdn_fista(
    A: np.ndarray,
    y: np.ndarray,
    *,
    lam: Optional[float] = None,
    nonnegative: bool = False,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Basis-pursuit denoising via FISTA (accelerated proximal gradient).

    Solves ``min ½‖Aθ − y‖₂² + λ‖θ‖₁``.  When ``lam`` is omitted it is set
    to ``0.01 · ‖Aᵀy‖∞``, a standard noise-robust default (λ above
    ‖Aᵀy‖∞ yields the all-zero solution).
    """
    A, y = _validate_system(A, y)
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    correlation = A.T @ y
    if lam is None:
        lam = 0.01 * float(np.abs(correlation).max())
        if lam == 0.0:
            return np.zeros(A.shape[1])
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")

    # Lipschitz constant of the gradient: largest eigenvalue of AᵀA.
    lipschitz = float(np.linalg.norm(A, ord=2) ** 2)
    if lipschitz == 0.0:
        return np.zeros(A.shape[1])
    step = 1.0 / lipschitz

    theta = np.zeros(A.shape[1])
    momentum_point = theta.copy()
    t = 1.0
    for _ in range(max_iterations):
        gradient = A.T @ (A @ momentum_point - y)
        candidate = momentum_point - step * gradient
        # Proximal operator of λ‖·‖₁ (soft threshold), optionally one-sided.
        if nonnegative:
            new_theta = np.maximum(candidate - step * lam, 0.0)
        else:
            new_theta = np.sign(candidate) * np.maximum(
                np.abs(candidate) - step * lam, 0.0
            )
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t * t)) / 2.0
        momentum_point = new_theta + ((t - 1.0) / t_next) * (new_theta - theta)
        change = float(np.linalg.norm(new_theta - theta))
        theta = new_theta
        t = t_next
        if change <= tolerance * max(1.0, float(np.linalg.norm(theta))):
            break
    return theta


def solve_bpdn_fista_batch(
    A: np.ndarray,
    Y: np.ndarray,
    *,
    lam: Optional[Union[float, Sequence[float]]] = None,
    nonnegative: bool = False,
    max_iterations: int = 500,
    tolerance: float = 1e-8,
    theta0: Optional[np.ndarray] = None,
    adaptive_restart: bool = False,
    lipschitz: Optional[float] = None,
    work_dtype: Optional[Union[str, np.dtype]] = None,
    sweep_counts: Optional[np.ndarray] = None,
    recorder: Recorder = NULL_RECORDER,
) -> np.ndarray:
    """FISTA for every column of ``Y`` against one shared ``A``.

    All k proximal-gradient recursions run as one matrix iteration: the
    Lipschitz constant (a spectral norm, the dominant setup cost) is
    computed once, and each gradient step is a single GEMM instead of k
    GEMVs.  The momentum scalar ``t`` is data-independent, so sharing it
    across columns reproduces the solo recursion exactly; a column that
    meets the solo stopping rule is *frozen* at that iterate, so early
    convergence of one column matches its per-column solve.  ``lam`` may
    be a scalar, a per-column sequence, or ``None`` for the per-column
    ``0.01 · ‖Aᵀyⱼ‖∞`` default.  Returns an (n, k) coefficient matrix.

    The streaming/warm extensions (all off by default; the default path
    reproduces the solo recursion column for column):

    ``theta0``
        Warm start: an (n,) or (n, k) initial iterate — round n+1 of a
        sliding window restarts from round n's solution instead of zero.
    ``adaptive_restart``
        O'Donoghue–Candès gradient restart: the momentum scalar becomes
        a per-column vector that resets to 1 whenever the momentum
        direction opposes descent.  Converges to the same minimizer in
        far fewer sweeps on ill-conditioned systems, but the iterate
        path no longer matches the solo recursion sweep for sweep.
    ``lipschitz``
        A precomputed gradient Lipschitz constant (``‖A‖₂²``), hoisted
        by callers that cache per-system factorizations so repeated
        solves skip the spectral norm.
    ``work_dtype``
        Iterate in this dtype (e.g. ``numpy.float32`` for the
        half-width BLAS fast path); the result is always returned as
        float64.  Accuracy is bounded by the dtype's epsilon — see
        docs/ARCHITECTURE.md §2 for the documented tolerance.
    ``sweep_counts``
        Optional (k,) integer out-array filled with the sweep at which
        each column froze (0 for columns inactive from the start) —
        how warm-start savings are measured without a live recorder.
    """
    A, Y = _validate_batch_system(A, Y)
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    n, k = A.shape[1], Y.shape[1]
    work = np.dtype(work_dtype) if work_dtype is not None else None
    if work is not None:
        A = np.ascontiguousarray(A, dtype=work)
        Y = np.ascontiguousarray(Y, dtype=work)
    correlation = A.T @ Y  # (n, k)
    if lam is None:
        lam_col = 0.01 * np.abs(correlation).max(axis=0).astype(float)
    else:
        lam_col = np.broadcast_to(
            np.asarray(lam, dtype=float), (k,)
        ).copy()
    if np.any(lam_col < 0):
        raise ValueError(f"lam must be >= 0, got {lam_col.min()}")
    if work is not None:
        lam_col = lam_col.astype(work)
    # Columns whose default λ degenerates to 0 have Aᵀy = 0: the solo
    # solver returns all-zeros for them without iterating.
    active = np.ones(k, dtype=bool)
    if lam is None:
        active &= lam_col > 0.0

    track = recorder.enabled or sweep_counts is not None
    compute = A.dtype
    if theta0 is None:
        theta_out = np.zeros((n, k))
    else:
        theta0 = np.asarray(theta0, dtype=float)
        if theta0.ndim == 1:
            theta0 = np.broadcast_to(theta0[:, None], (n, k))
        if theta0.shape != (n, k):
            raise ValueError(
                f"theta0 must have shape ({n},) or ({n}, {k}), "
                f"got {theta0.shape}"
            )
        theta_out = np.array(theta0, dtype=float)
    if lipschitz is None:
        lipschitz = float(np.linalg.norm(A, ord=2) ** 2)
    if lipschitz == 0.0 or not active.any():
        if track:
            _record_fista_batch(
                recorder, A, Y, theta_out, np.zeros(k, dtype=int), sweep_counts
            )
        return theta_out
    step = compute.type(1.0 / lipschitz)

    # Per-column sweep counts, tracked for a live recorder or an
    # explicit ``sweep_counts`` out-array (columns inactive from the
    # start cost zero sweeps).
    frozen_at = np.where(active, max_iterations, 0) if track else None

    # The live set is kept *compacted*: every array below holds only the
    # still-iterating columns, re-sliced once per freeze event instead of
    # fancy-indexed every sweep.  ``ids`` maps live positions back to
    # original columns; frozen iterates are scattered into ``theta_out``
    # the sweep they converge.
    ids = np.flatnonzero(active)
    cur_theta = np.ascontiguousarray(theta_out[:, ids], dtype=compute)
    cur_M = cur_theta.copy()
    cur_Y = np.ascontiguousarray(Y[:, ids])
    cur_shift = step * lam_col[ids]
    tol_sq = tolerance * tolerance
    # Shared scalar t replicates the solo recursion; adaptive restart
    # needs one momentum clock per column.
    t_vec = np.ones(ids.size, dtype=compute) if adaptive_restart else None
    t = 1.0
    for sweep in range(1, max_iterations + 1):
        gradient = A.T @ (A @ cur_M - cur_Y)
        candidate = cur_M - step * gradient
        if nonnegative:
            new_theta = np.maximum(candidate - cur_shift, 0.0)
        else:
            new_theta = np.sign(candidate) * np.maximum(
                np.abs(candidate) - cur_shift, 0.0
            )
        t_cur = t_vec if adaptive_restart else t
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_cur * t_cur)) / 2.0
        delta = new_theta - cur_theta
        new_momentum = new_theta + ((t_cur - 1.0) / t_next) * delta
        if adaptive_restart:
            # Gradient restart: momentum opposing descent resets the
            # clock (and the momentum point) for that column.
            restart = (
                np.einsum("nk,nk->k", cur_M, delta)
                - np.einsum("nk,nk->k", new_theta, delta)
            ) > 0.0
            if restart.any():
                t_next = np.where(restart, 1.0, t_next)
                new_momentum[:, restart] = new_theta[:, restart]
        # Solo stopping rule per column, in squared form (one einsum
        # instead of two norm passes): ‖Δ‖ ≤ tol·max(1, ‖θ‖).
        change_sq = np.einsum("nk,nk->k", delta, delta)
        scale_sq = np.einsum("nk,nk->k", new_theta, new_theta)
        done = change_sq <= tol_sq * np.maximum(1.0, scale_sq)
        if done.any():
            theta_out[:, ids[done]] = new_theta[:, done]
            if frozen_at is not None:
                frozen_at[ids[done]] = sweep
            keep = ~done
            ids = ids[keep]
            if ids.size == 0:
                break
            cur_theta = new_theta[:, keep]
            cur_M = new_momentum[:, keep]
            cur_Y = np.ascontiguousarray(cur_Y[:, keep])
            cur_shift = cur_shift[keep]
            if adaptive_restart:
                t_vec = t_next[keep]
            else:
                t = float(t_next)
        else:
            cur_theta = new_theta
            cur_M = new_momentum
            if adaptive_restart:
                t_vec = t_next
            else:
                t = float(t_next)
    if ids.size:
        # Columns that hit the sweep cap keep their final iterate.
        theta_out[:, ids] = cur_theta
    if track and frozen_at is not None:
        _record_fista_batch(recorder, A, Y, theta_out, frozen_at, sweep_counts)
    return theta_out


def _record_fista_batch(
    recorder: Recorder,
    A: np.ndarray,
    Y: np.ndarray,
    theta: np.ndarray,
    iterations: np.ndarray,
    sweep_counts: Optional[np.ndarray] = None,
) -> None:
    """Report one FISTA batch: solve count, per-column sweeps, residual."""
    if sweep_counts is not None:
        sweep_counts[...] = iterations
    if not recorder.enabled:
        return
    recorder.count("l1.fista.solves", Y.shape[1])
    for value in iterations:
        recorder.observe("l1.fista.iterations", int(value))
    recorder.observe(
        "l1.fista.residual", float(np.linalg.norm(A @ theta - Y))
    )


def _omp_core(
    A: np.ndarray,
    y: np.ndarray,
    *,
    sparsity: int,
    nonnegative: bool,
    residual_tolerance: float,
    norms: np.ndarray,
    usable: np.ndarray,
    gram: Optional[np.ndarray],
) -> np.ndarray:
    """One OMP solve on precomputed column norms and (optional) Gram.

    Shared by :func:`solve_omp` and :func:`solve_omp_batch` so the two
    paths are identical column for column.  With a Gram matrix the
    selection correlations are updated incrementally
    (``Aᵀy − G[:, S] c``); without one they fall back to ``Aᵀr``.
    """
    n = A.shape[1]
    sparsity = min(sparsity, n, A.shape[0])
    correlation_y = A.T @ y
    support: List[int] = []
    coefficients = np.zeros(0)
    for _ in range(sparsity):
        if not support:
            correlation = correlation_y.copy()
        elif gram is not None:
            correlation = correlation_y - gram[:, support] @ coefficients
        else:
            residual = y - A[:, support] @ coefficients
            correlation = A.T @ residual
        correlation[~usable] = 0.0
        scores = np.abs(correlation) / np.where(usable, norms, 1.0)
        scores[support] = -np.inf
        best = int(np.argmax(scores))
        if not np.isfinite(scores[best]) or scores[best] <= 0:
            break
        support.append(best)
        submatrix = A[:, support]
        coefficients, *_ = np.linalg.lstsq(submatrix, y, rcond=None)
        residual = y - submatrix @ coefficients
        if float(np.linalg.norm(residual)) <= residual_tolerance:
            break

    theta = np.zeros(n)
    if support:
        theta[support] = coefficients
    if nonnegative:
        theta = np.maximum(theta, 0.0)
    return theta


def solve_omp(
    A: np.ndarray,
    y: np.ndarray,
    *,
    sparsity: int,
    nonnegative: bool = False,
    residual_tolerance: float = 1e-10,
) -> np.ndarray:
    """Orthogonal matching pursuit with a fixed sparsity budget.

    Greedily selects the column most correlated with the residual, then
    re-fits all selected coefficients by least squares.  For the engine's
    per-AP recovery the budget is small (a handful of grid cells around the
    true location).

    The Gram matrix ``AᵀA`` is hoisted out of the selection loop (one
    :func:`_gram` call per solve, skipped above
    :data:`GRAM_MAX_COLUMNS`); the loop updates correlations from Gram
    columns instead of recomputing ``Aᵀr`` against the full matrix.
    """
    A, y = _validate_system(A, y)
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    norms = np.linalg.norm(A, axis=0)
    usable = norms > 1e-12
    gram = _gram(A) if A.shape[1] <= GRAM_MAX_COLUMNS else None
    return _omp_core(
        A,
        y,
        sparsity=sparsity,
        nonnegative=nonnegative,
        residual_tolerance=residual_tolerance,
        norms=norms,
        usable=usable,
        gram=gram,
    )


def solve_omp_batch(
    A: np.ndarray,
    Y: np.ndarray,
    *,
    sparsity: int,
    nonnegative: bool = False,
    residual_tolerance: float = 1e-10,
    recorder: Recorder = NULL_RECORDER,
) -> np.ndarray:
    """OMP for every column of ``Y`` against one shared ``A``.

    The column norms and the Gram matrix are computed once for the whole
    batch; each column then runs the same greedy core as
    :func:`solve_omp`, so the batch output equals the per-column loop
    exactly.  Returns an (n, k) coefficient matrix.
    """
    A, Y = _validate_batch_system(A, Y)
    if sparsity < 1:
        raise ValueError(f"sparsity must be >= 1, got {sparsity}")
    norms = np.linalg.norm(A, axis=0)
    usable = norms > 1e-12
    gram = _gram(A) if A.shape[1] <= GRAM_MAX_COLUMNS else None
    theta = np.empty((A.shape[1], Y.shape[1]))
    for j in range(Y.shape[1]):
        theta[:, j] = _omp_core(
            A,
            Y[:, j],
            sparsity=sparsity,
            nonnegative=nonnegative,
            residual_tolerance=residual_tolerance,
            norms=norms,
            usable=usable,
            gram=gram,
        )
    if recorder.enabled:
        recorder.count("l1.omp.solves", Y.shape[1])
        for j in range(Y.shape[1]):
            recorder.observe(
                "l1.omp.support", int(np.count_nonzero(theta[:, j]))
            )
        recorder.observe(
            "l1.omp.residual", float(np.linalg.norm(A @ theta - Y))
        )
    return theta


def solve_basis_pursuit_batch(
    A: np.ndarray,
    Y: np.ndarray,
    *,
    noise_tolerance: Union[float, Sequence[float]] = 0.0,
    nonnegative: bool = False,
    recorder: Recorder = NULL_RECORDER,
) -> np.ndarray:
    """Basis pursuit for every column of ``Y`` against one shared ``A``.

    Each column is an independent LP (HiGHS keeps its own factorization),
    so this is a convenience loop presenting the same (n, k) batch
    interface as the other solvers; ``noise_tolerance`` may be a scalar
    or one value per column.
    """
    A, Y = _validate_batch_system(A, Y)
    k = Y.shape[1]
    tolerances = np.broadcast_to(
        np.asarray(noise_tolerance, dtype=float), (k,)
    )
    theta = np.empty((A.shape[1], k))
    for j in range(k):
        theta[:, j] = solve_basis_pursuit(
            A,
            Y[:, j],
            noise_tolerance=float(tolerances[j]),
            nonnegative=nonnegative,
        )
    if recorder.enabled:
        recorder.count("l1.basis_pursuit.solves", k)
        recorder.observe(
            "l1.basis_pursuit.residual", float(np.linalg.norm(A @ theta - Y))
        )
    return theta


def l1_solve(
    A: np.ndarray,
    y: np.ndarray,
    *,
    method: L1Solver = L1Solver.FISTA,
    noise_tolerance: float = 0.0,
    sparsity: int = 4,
    nonnegative: bool = True,
) -> np.ndarray:
    """Dispatch to the selected solver with engine-friendly defaults."""
    method = L1Solver(method)
    if method is L1Solver.BASIS_PURSUIT:
        return solve_basis_pursuit(
            A, y, noise_tolerance=noise_tolerance, nonnegative=nonnegative
        )
    if method is L1Solver.FISTA:
        return solve_bpdn_fista(A, y, nonnegative=nonnegative)
    if method is L1Solver.OMP:
        return solve_omp(A, y, sparsity=sparsity, nonnegative=nonnegative)
    raise ValueError(f"unknown solver {method!r}")  # pragma: no cover


def l1_solve_batch(
    A: np.ndarray,
    Y: np.ndarray,
    *,
    method: L1Solver = L1Solver.FISTA,
    noise_tolerance: Union[float, Sequence[float]] = 0.0,
    sparsity: int = 4,
    nonnegative: bool = True,
    theta0: Optional[np.ndarray] = None,
    adaptive_restart: bool = False,
    lipschitz: Optional[float] = None,
    work_dtype: Optional[Union[str, np.dtype]] = None,
    sweep_counts: Optional[np.ndarray] = None,
    recorder: Recorder = NULL_RECORDER,
) -> np.ndarray:
    """Batched counterpart of :func:`l1_solve`: shared ``A``, (m, k) ``Y``.

    Returns an (n, k) matrix whose column j solves ``(A, Y[:, j])`` with
    the selected method; per-system precomputation is shared across the
    batch.  A 1-D ``Y`` is treated as a single-column batch.  A live
    ``recorder`` collects per-backend solve counts, iteration/support
    histograms and batch residual norms (all hooks are free with the
    default :data:`~repro.obs.recorder.NULL_RECORDER`).

    ``theta0``, ``adaptive_restart``, ``lipschitz``, ``work_dtype`` and
    ``sweep_counts`` are the FISTA warm-start/streaming knobs (see
    :func:`solve_bpdn_fista_batch`); passing any of them with another
    method is an error rather than a silent no-op.
    """
    method = L1Solver(method)
    fista_knobs = (
        theta0 is not None
        or adaptive_restart
        or lipschitz is not None
        or work_dtype is not None
        or sweep_counts is not None
    )
    if fista_knobs and method is not L1Solver.FISTA:
        raise ValueError(
            "theta0/adaptive_restart/lipschitz/work_dtype/sweep_counts "
            f"only apply to the FISTA solver, not {method.value!r}"
        )
    if method is L1Solver.BASIS_PURSUIT:
        return solve_basis_pursuit_batch(
            A,
            Y,
            noise_tolerance=noise_tolerance,
            nonnegative=nonnegative,
            recorder=recorder,
        )
    if method is L1Solver.FISTA:
        return solve_bpdn_fista_batch(
            A,
            Y,
            nonnegative=nonnegative,
            theta0=theta0,
            adaptive_restart=adaptive_restart,
            lipschitz=lipschitz,
            work_dtype=work_dtype,
            sweep_counts=sweep_counts,
            recorder=recorder,
        )
    if method is L1Solver.OMP:
        return solve_omp_batch(
            A, Y, sparsity=sparsity, nonnegative=nonnegative, recorder=recorder
        )
    raise ValueError(f"unknown solver {method!r}")  # pragma: no cover
