"""Offline (batch) CS estimation — the contrast to §4.3's online scheme.

The paper motivates the sliding-window *online* pipeline by the cost of
the traditional *offline* formulation: one grid over the whole trajectory
and one recovery over the entire reading set, whose (AP, RSS) combination
step explodes with the number of readings (Proposition 2) and whose grid
covers a large, mostly irrelevant area.

:class:`OfflineCsEstimator` implements that baseline faithfully but
tractably: a single grid built from all reference points, one
clustering-pruned combination search over all readings at once, one BIC
selection, and the same centroid + refinement post-processing.  The
online-vs-offline ablation quantifies the trade-off the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.bic import score_hypothesis
from repro.core.combinations import (
    CombinationEnumerator,
    EnumeratorConfig,
    unique_blocks,
)
from repro.core.cs_problem import CsProblem
from repro.core.refine import refine_hypothesis
from repro.geo.grid import Grid, grid_from_reference_points
from repro.geo.points import Point
from repro.radio.gmm import DEFAULT_SIGMA_FACTOR
from repro.radio.pathloss import PathLossModel, snr_noise_sigma
from repro.radio.rss import RssMeasurement, RssTrace
from repro.util.rng import RngLike, ensure_rng

__all__ = ["OfflineConfig", "OfflineCsEstimator"]


@dataclass(frozen=True)
class OfflineConfig:
    """Tunables of the batch estimator."""

    lattice_length_m: float = 8.0
    communication_radius_m: float = 100.0
    max_aps: int = 10
    readings_budget: int = 10
    solver: str = "matched"
    centroid_threshold: float = 0.3
    refine: bool = True
    snr_db: Optional[float] = None
    sigma_factor: float = DEFAULT_SIGMA_FACTOR

    def __post_init__(self) -> None:
        if self.lattice_length_m <= 0:
            raise ValueError(
                f"lattice_length_m must be > 0, got {self.lattice_length_m}"
            )
        if self.communication_radius_m <= 0:
            raise ValueError(
                "communication_radius_m must be > 0, "
                f"got {self.communication_radius_m}"
            )
        if self.max_aps < 1:
            raise ValueError(f"max_aps must be >= 1, got {self.max_aps}")
        if self.readings_budget < 1:
            raise ValueError(
                f"readings_budget must be >= 1, got {self.readings_budget}"
            )


class OfflineCsEstimator:
    """One-shot batch estimation over a full trace."""

    def __init__(
        self,
        channel: PathLossModel,
        config: Optional[OfflineConfig] = None,
        *,
        grid: Optional[Grid] = None,
        rng: RngLike = None,
    ) -> None:
        self.channel = channel
        self.config = config if config is not None else OfflineConfig()
        self.fixed_grid = grid
        self._rng = ensure_rng(rng)
        self._enumerator = CombinationEnumerator(
            EnumeratorConfig(
                max_aps=self.config.max_aps,
                # Batch mode always uses the pruned search: exhaustive
                # enumeration over a full trace is the Ω(M^M) blow-up the
                # online scheme exists to avoid.
                max_exhaustive_items=1,
                cluster_restarts=4,
            ),
            rng=self._rng,
        )

    def estimate(
        self, trace: Union[RssTrace, Sequence[RssMeasurement]]
    ) -> List[Point]:
        """Estimate all AP locations from the entire trace at once."""
        measurements = list(trace)
        if not measurements:
            return []
        positions = [m.position for m in measurements]
        rss = np.array([m.rss_dbm for m in measurements], dtype=float)
        if self.config.snr_db is not None:
            sigma = snr_noise_sigma(rss, self.config.snr_db)
            if sigma > 0:
                rss = rss + self._rng.normal(0.0, sigma, size=rss.shape)

        grid = self.fixed_grid
        if grid is None:
            grid = grid_from_reference_points(
                positions,
                self.config.communication_radius_m,
                self.config.lattice_length_m,
            )
        problem = CsProblem(
            grid,
            self.channel,
            communication_radius_m=self.config.communication_radius_m,
        )

        subsample = self._subsample_indices(len(measurements))
        sub_positions = [positions[i] for i in subsample]
        sub_rss = rss[subsample]
        rp_indices = problem.measurement_rows(sub_positions)
        context = problem.round_context(rp_indices)

        partitions = self._enumerator.candidate_partitions(
            sub_positions, sub_rss.tolist()
        )
        recoveries = context.recover_blocks(
            sub_rss,
            unique_blocks(partitions),
            method=self.config.solver,
            centroid_threshold=self.config.centroid_threshold,
        )
        best_locations: Optional[List[Point]] = None
        best_score = float("-inf")
        for partition in partitions:
            locations = []
            failed = False
            for block in partition:
                recovery = recoveries.get(block)
                if recovery is None:
                    failed = True
                    break
                locations.append(recovery.location)
            if failed:
                continue
            score = score_hypothesis(
                rss.tolist(),
                positions,
                locations,
                self.channel,
                sigma_factor=self.config.sigma_factor,
            )
            if score > best_score:
                best_score = score
                best_locations = locations
        if best_locations is None:
            return []
        if self.config.refine:
            best_locations = self._refine_all(
                best_locations, positions, rss
            )
        return best_locations

    def _subsample_indices(self, n: int) -> np.ndarray:
        budget = self.config.readings_budget
        if n <= budget:
            return np.arange(n)
        return np.unique(np.linspace(0, n - 1, budget).round().astype(int))

    def _refine_all(
        self,
        locations: List[Point],
        positions: List[Point],
        rss: np.ndarray,
    ) -> List[Point]:
        ap_xy = np.array([[p.x, p.y] for p in locations])
        pos_xy = np.array([[p.x, p.y] for p in positions])
        distances = np.linalg.norm(
            pos_xy[:, None, :] - ap_xy[None, :, :], axis=-1
        )
        expected = self.channel.mean_rss_dbm(distances)
        assignment = np.abs(expected - rss[:, None]).argmin(axis=1)
        block_points = []
        block_rss = []
        for k in range(len(locations)):
            members = np.flatnonzero(assignment == k)
            block_points.append([positions[i] for i in members])
            block_rss.append(rss[members].tolist())
        return refine_hypothesis(
            self.channel,
            block_points,
            block_rss,
            locations,
            max_shift_m=3.0 * self.config.lattice_length_m,
        )
