"""Continuous location refinement after grid recovery.

Grid recovery plus threshold-centroid processing (§4.3.4) is accurate to
a fraction of a lattice cell; the remaining quantization error is removed
by a local maximum-likelihood fit: starting from the centroid estimate,
the AP position is adjusted continuously to minimise the squared residual
between the observed RSS and the path-loss model,

    p̂ = argmin_p  Σ_i ( r_i − μ(‖p − rp_i‖) )² ,

using derivative-free Nelder–Mead (the objective is smooth but its
gradient has a pole at the measurement points).  This is the continuous
analogue of the paper's centroid compensation — it only polishes the
location *within* the winning hypothesis, never changes the count or the
reading assignment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.geo.points import Point, points_as_array
from repro.radio.pathloss import PathLossModel

__all__ = ["refine_location", "refine_hypothesis"]


def refine_location(
    channel: PathLossModel,
    measurement_points: Sequence[Point],
    rss_dbm: Sequence[float],
    initial: Point,
    *,
    max_shift_m: Optional[float] = None,
    max_iterations: int = 200,
) -> Point:
    """Locally refine one AP location against its assigned readings.

    Parameters
    ----------
    initial:
        Starting point (the grid-centroid estimate).
    max_shift_m:
        If given, a refined position farther than this from ``initial``
        is rejected and the initial point returned — a safety net against
        the optimiser wandering to a distant local minimum when the
        reading set is tiny or inconsistent.

    Returns
    -------
    Point
        The refined position (or ``initial`` when refinement is rejected
        or the optimiser fails).
    """
    rss = np.asarray(rss_dbm, dtype=float).ravel()
    if len(measurement_points) != rss.size:
        raise ValueError(
            f"{rss.size} RSS values but {len(measurement_points)} points"
        )
    if rss.size == 0:
        return initial
    positions = points_as_array(measurement_points)

    def objective(p: np.ndarray) -> float:
        distances = np.linalg.norm(positions - p[None, :], axis=1)
        return float(np.sum((rss - channel.mean_rss_dbm(distances)) ** 2))

    start = np.array([initial.x, initial.y])
    result = minimize(
        objective,
        start,
        method="Nelder-Mead",
        options={"xatol": 0.05, "fatol": 1e-4, "maxiter": max_iterations},
    )
    if not result.success and not np.all(np.isfinite(result.x)):
        return initial
    refined = Point(float(result.x[0]), float(result.x[1]))
    if max_shift_m is not None and refined.distance_to(initial) > max_shift_m:
        return initial
    return refined


def refine_hypothesis(
    channel: PathLossModel,
    block_points: Sequence[Sequence[Point]],
    block_rss: Sequence[Sequence[float]],
    locations: Sequence[Point],
    *,
    max_shift_m: Optional[float] = None,
) -> List[Point]:
    """Refine every AP of a winning hypothesis, block by block."""
    if not (len(block_points) == len(block_rss) == len(locations)):
        raise ValueError(
            "block_points, block_rss and locations must have equal lengths"
        )
    return [
        refine_location(
            channel, points, rss, location, max_shift_m=max_shift_m
        )
        for points, rss, location in zip(block_points, block_rss, locations)
    ]
