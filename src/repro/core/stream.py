"""Streaming form of the online CS engine (§4.3, one reading at a time).

:class:`~repro.core.engine.OnlineCsEngine.process_trace` thinks in
batch: it re-slices the collected trace into sliding windows and
rebuilds every round from scratch, even though consecutive windows
(size 60, step 10) share 50 of their 60 readings.
:class:`StreamingCsEngine` is the incremental counterpart — readings
arrive through :meth:`StreamingCsEngine.push`, the active window lives
in a ring buffer, and rounds fire exactly when
:class:`~repro.core.window.WindowCursor` says a window is complete, so
the trace is never materialized.  The batch engine is a thin wrapper
over this class, and both produce bit-identical results: the round
order, the RNG draw order (observation noise, clustering restarts) and
the per-round pipeline are the same code.

What carries across rounds instead of being recomputed:

* per-cell sensing/distance rows, candidate columns, Proposition-1
  ``(Q, T)`` factorizations and their Lipschitz constants — via
  :class:`~repro.core.cs_problem.CsProblem`'s cross-round cache, keyed
  by grid cells so a window shift does not invalidate them;
* exhaustive partition enumerations, memoized per window size in the
  :class:`~repro.core.combinations.CombinationEnumerator`;
* FISTA solutions, warm-starting each block's solve from its
  previous-round solution (``solver_warm_start``, FISTA only);
* expiry bookkeeping: TTLs are tracked in a deadline heap and readings
  are expired incrementally as the window advances, instead of the
  per-round full rescan (with an exact fallback when timestamps
  regress).

Telemetry: the ``stream.*`` counter family (see docs/OBSERVABILITY.md)
reports readings pushed, rounds emitted, cross-round cache hits/misses
and warm-start iterations saved; per-round instrumentation keeps the
``engine.*`` names so batch and streaming traces aggregate together.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.core.bic import score_hypothesis
from repro.core.combinations import (
    CombinationEnumerator,
    EnumeratorConfig,
    Partition,
    unique_blocks,
)
from repro.core.consolidate import CreditConsolidator
from repro.core.cs_problem import CsProblem, RecoveryResult
from repro.core.engine import EngineConfig, OnlineCsResult, RoundDiagnostics
from repro.core.refine import refine_hypothesis
from repro.core.window import WindowCursor
from repro.geo.grid import Grid, grid_from_reference_points
from repro.geo.points import Point
from repro.obs.recorder import Recorder, ensure_recorder
from repro.radio.pathloss import PathLossModel, snr_noise_sigma
from repro.radio.rss import RssMeasurement
from repro.util.rng import RngLike, ensure_rng

__all__ = ["StreamingCsEngine"]

#: Online-grid problems memoized by their grid's bounding box + lattice.
_GridKey = Tuple[float, float, float, float, float]


class StreamingCsEngine:
    """Incremental vehicle-side online compressive sensing.

    Accepts readings one at a time (:meth:`push`), emits a
    :class:`~repro.core.engine.RoundDiagnostics` whenever a reading
    completes a sliding-window round, and returns the consolidated
    :class:`~repro.core.engine.OnlineCsResult` from :meth:`finalize`.
    Constructor parameters match
    :class:`~repro.core.engine.OnlineCsEngine`.

    One instance can process many traces: :meth:`reset` clears the
    per-trace state (ring buffer, cursor, consolidator, diagnostics)
    while the cross-round caches — which are pure functions of grid
    geometry — survive and keep paying across traces.
    """

    #: LRU bound on memoized online-grid problems (a moving vehicle
    #: whose window shifts re-forms a nearby grid; identical boxes reuse
    #: the problem and its cross-round caches).
    MAX_CACHED_PROBLEMS = 8

    def __init__(
        self,
        channel: PathLossModel,
        config: Optional[EngineConfig] = None,
        *,
        grid: Optional[Grid] = None,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.channel = channel
        self.config = config if config is not None else EngineConfig()
        self.fixed_grid = grid
        self.recorder = ensure_recorder(recorder)
        self._rng = ensure_rng(rng)
        self._enumerator = CombinationEnumerator(
            EnumeratorConfig(
                max_aps=self.config.max_aps_per_round,
                max_exhaustive_items=self.config.max_exhaustive_items,
            ),
            rng=self._rng,
        )
        self._fixed_problem: Optional[CsProblem] = None
        if grid is not None:
            self._fixed_problem = CsProblem(
                grid,
                channel,
                communication_radius_m=self.config.communication_radius_m,
                cross_round_cache=self.config.cross_round_cache,
            )
        self._problem_cache: "OrderedDict[_GridKey, CsProblem]" = OrderedDict()
        # Last-seen cache counters per problem, for per-round deltas.
        self._stats_shadow: Dict[int, Dict[str, int]] = {}
        # Per-trace state, (re)created by reset():
        self._cursor: WindowCursor
        self._buffer: Deque[RssMeasurement]
        self._seqs: Deque[int]
        self._consolidator: CreditConsolidator
        self._diagnostics: List[RoundDiagnostics]
        self._round_index = 0
        self._finished = False
        self._next_seq = 0
        self._deadlines: List[Tuple[float, int]]
        self._dead: Set[int]
        self._ttl_monotone = True
        self._last_timestamp = float("-inf")
        self.reset()

    # ------------------------------------------------------------------
    # streaming API

    def reset(self) -> None:
        """Clear per-trace state; cross-round caches survive."""
        size = self.config.window.size
        self._cursor = WindowCursor(self.config.window)
        self._buffer = deque(maxlen=size)
        self._seqs = deque(maxlen=size)
        self._consolidator = CreditConsolidator(
            alignment_radius_m=self.config.effective_alignment_radius_m,
            credit_filter_threshold=self.config.credit_filter_threshold,
            recorder=self.recorder,
        )
        self._diagnostics = []
        self._round_index = 0
        self._finished = False
        self._next_seq = 0
        self._deadlines = []
        self._dead = set()
        self._ttl_monotone = True
        self._last_timestamp = float("-inf")

    def push(self, measurement: RssMeasurement) -> Optional[RoundDiagnostics]:
        """Ingest one reading; process the round it completes, if any.

        Returns that round's diagnostics, or ``None`` when the reading
        did not complete a round (or the completed round produced no
        hypothesis).  The window's tail round is owed to
        :meth:`finalize`, mirroring the batch schedule exactly.
        """
        if self._finished:
            raise RuntimeError(
                "stream already finalized; call reset() before pushing"
            )
        self.recorder.count("stream.readings.pushed")
        self._buffer.append(measurement)
        if self.config.respect_ttl:
            self._track_ttl(measurement)
        if self._cursor.push() is None:
            return None
        return self._emit_round()

    def extend(
        self, measurements: Iterable[RssMeasurement]
    ) -> List[RoundDiagnostics]:
        """Push many readings; return the diagnostics of completed rounds."""
        out: List[RoundDiagnostics] = []
        for measurement in measurements:
            diagnostics = self.push(measurement)
            if diagnostics is not None:
                out.append(diagnostics)
        return out

    def finalize(self) -> OnlineCsResult:
        """Process the owed tail round and return the consolidated result.

        Idempotent: the tail round runs once; repeated calls re-return
        the same result.  :meth:`reset` starts the next trace.
        """
        if not self._finished:
            self._finished = True
            if self._cursor.finish() is not None:
                self._emit_round()
        with self.recorder.span("stream.finalize"):
            estimates = self._consolidator.filtered_estimates()
        return OnlineCsResult(
            estimates=estimates, rounds=list(self._diagnostics)
        )

    @property
    def rounds_emitted(self) -> int:
        """Rounds processed so far (including rounds without a winner)."""
        return self._round_index

    # ------------------------------------------------------------------
    # incremental TTL expiry

    def _track_ttl(self, measurement: RssMeasurement) -> None:
        """Register a reading's expiry deadline as it enters the window.

        Deadlines sit in a min-heap; rounds pop the expired prefix
        instead of rescanning the window (valid while timestamps are
        monotone — the moment one regresses, expiry is no longer
        monotone either and the engine falls back to the exact per-round
        scan for good).
        """
        seq = self._next_seq
        self._next_seq += 1
        self._seqs.append(seq)
        if measurement.timestamp < self._last_timestamp:
            self._ttl_monotone = False
        self._last_timestamp = max(self._last_timestamp, measurement.timestamp)
        if not self._ttl_monotone:
            return
        heapq.heappush(
            self._deadlines, (measurement.timestamp + measurement.ttl, seq)
        )
        # Compact entries whose readings already slid out of the window.
        if len(self._deadlines) > 4 * max(1, self.config.window.size):
            first = self._seqs[0]
            self._deadlines = [e for e in self._deadlines if e[1] >= first]
            heapq.heapify(self._deadlines)

    def _window_view(self) -> List[RssMeasurement]:
        """The current round's readings, TTL-filtered when configured.

        Matches the batch filter ``[m for m in window if not
        m.expired(window[-1].timestamp)]`` exactly: with monotone
        timestamps a reading's expiry is permanent, so the deadline heap
        marks each reading dead at most once instead of re-deriving the
        whole window every round.
        """
        window = list(self._buffer)
        if not self.config.respect_ttl or not window:
            return window
        now = window[-1].timestamp
        if not self._ttl_monotone:
            return [m for m in window if not m.expired(now)]
        while self._deadlines and self._deadlines[0][0] < now:
            _, seq = heapq.heappop(self._deadlines)
            self._dead.add(seq)
        if not self._dead:
            return window
        first = self._seqs[0]
        self._dead = {s for s in self._dead if s >= first}
        if not self._dead:
            return window
        return [
            m for s, m in zip(self._seqs, window) if s not in self._dead
        ]

    # ------------------------------------------------------------------
    # round pipeline (identical to the batch engine, per round)

    def _emit_round(self) -> Optional[RoundDiagnostics]:
        index = self._round_index
        self._round_index += 1
        diagnostics = self._process_round(index, self._window_view())
        if diagnostics is None:
            return None
        self._diagnostics.append(diagnostics)
        self._consolidator.ingest_round(diagnostics.chosen_locations)
        self.recorder.count("stream.rounds.emitted")
        return diagnostics

    def _process_round(
        self, round_index: int, window: List[RssMeasurement]
    ) -> Optional[RoundDiagnostics]:
        if not window:
            return None
        recorder = self.recorder
        recorder.count("engine.rounds")
        recorder.count("engine.readings", len(window))
        with recorder.span("engine.window_advance"):
            window_positions = [m.position for m in window]
            window_rss = self._add_observation_noise(
                np.array([m.rss_dbm for m in window], dtype=float)
            )
            subsample_indices = self._subsample_indices(len(window))
            positions = [window_positions[i] for i in subsample_indices]
            rss = window_rss[subsample_indices]

            problem = self._problem_for(positions)
            rp_indices = problem.measurement_rows(positions)
            context = problem.round_context(rp_indices)

        partitions: List[Partition] = self._enumerator.candidate_partitions(
            positions, rss.tolist()
        )
        if not partitions:
            return None
        recorder.count("engine.partitions", len(partitions))

        solver = self.config.solver
        warm = self.config.solver_warm_start and solver == "fista"
        work_dtype = (
            np.float32 if self.config.solver_dtype == "float32" else None
        )
        # Hot path: blocks repeat across hypotheses, so recover each
        # distinct block once (batched, cached factorizations) and let
        # every partition read from the shared result map.
        with recorder.span("engine.recover_blocks"):
            recoveries = context.recover_blocks(
                rss,
                unique_blocks(partitions),
                method=solver,
                use_orthogonalization=self.config.use_orthogonalization,
                centroid_threshold=self.config.centroid_threshold,
                warm_start=warm,
                work_dtype=work_dtype,
                recorder=recorder,
            )

        best_locations: Optional[List[Point]] = None
        best_score = float("-inf")
        evaluated = 0
        with recorder.span("engine.bic_scoring"):
            for partition in partitions:
                locations = self._locations_for(partition, recoveries)
                if locations is None:
                    continue
                evaluated += 1
                # BIC is scored against the FULL window, not just the
                # subsample that drove the combination search — the window
                # is the round's data set R_n (§4.3.5), and the mixture
                # likelihood needs no reading-to-AP assignment.
                score = score_hypothesis(
                    window_rss.tolist(),
                    window_positions,
                    locations,
                    self.channel,
                    sigma_factor=self.config.sigma_factor,
                )
                if score > best_score:
                    best_score = score
                    best_locations = locations
        recorder.count("engine.hypotheses", evaluated)
        if best_locations is None:
            return None
        if recorder.enabled:
            recorder.observe("engine.bic.best", best_score)
            recorder.observe("engine.round.k", len(best_locations))
            self._record_cache_stats(problem)
        if self.config.refine:
            with recorder.span("engine.refine"):
                best_locations = self._refine_with_window(
                    best_locations, window_positions, window_rss
                )
        return RoundDiagnostics(
            round_index=round_index,
            n_readings=len(window),
            n_hypotheses=evaluated,
            chosen_k=len(best_locations),
            chosen_locations=best_locations,
            bic_score=best_score,
        )

    def _record_cache_stats(self, problem: CsProblem) -> None:
        """Emit ``stream.*`` deltas of the problem's cache counters."""
        stats = problem.cache_stats
        if not stats:
            return
        shadow = self._stats_shadow.get(id(problem), {})
        delta = {
            key: value - shadow.get(key, 0) for key, value in stats.items()
        }
        self._stats_shadow[id(problem)] = stats
        recorder = self.recorder
        hits = delta["rows.hits"] + delta["columns.hits"] + delta["ortho.hits"]
        misses = (
            delta["rows.misses"]
            + delta["columns.misses"]
            + delta["ortho.misses"]
        )
        if hits:
            recorder.count("stream.context.hits", hits)
        if misses:
            recorder.count("stream.context.misses", misses)
        if delta["warm.hits"]:
            recorder.count("stream.warm.hits", delta["warm.hits"])
        if delta["warm.misses"]:
            recorder.count("stream.warm.misses", delta["warm.misses"])
        if delta["warm.iterations_saved"]:
            recorder.count(
                "stream.warm.iterations_saved",
                delta["warm.iterations_saved"],
            )
        if delta["solve.hits"]:
            recorder.count("stream.solve.hits", delta["solve.hits"])
        if delta["solve.misses"]:
            recorder.count("stream.solve.misses", delta["solve.misses"])

    def _subsample_indices(self, window_length: int) -> NDArray[np.int_]:
        """Evenly spaced subsample indices (keeps combinations small)."""
        budget = self.config.readings_per_round
        if window_length <= budget:
            return np.arange(window_length)
        indices = (
            np.linspace(0, window_length - 1, budget).round().astype(np.int_)
        )
        return np.unique(indices)

    def _refine_with_window(
        self,
        locations: List[Point],
        window_positions: List[Point],
        window_rss: NDArray[np.float64],
    ) -> List[Point]:
        """Refine the winning hypothesis against every window reading.

        Each window reading is assigned to the hypothesis AP most likely
        to have produced it (smallest residual against the path-loss
        mean), then every AP is re-fit on its full reading set — far more
        data per AP than the combination subsample carries.
        """
        if not locations:
            return locations
        positions_xy = np.array([[p.x, p.y] for p in window_positions])
        ap_xy = np.array([[p.x, p.y] for p in locations])
        distances = np.linalg.norm(
            positions_xy[:, None, :] - ap_xy[None, :, :], axis=-1
        )
        expected = self.channel.mean_rss_dbm(distances)  # (n, k)
        assignment = np.abs(expected - window_rss[:, None]).argmin(axis=1)

        block_points: List[List[Point]] = []
        block_rss: List[List[float]] = []
        for k in range(len(locations)):
            members = np.flatnonzero(assignment == k)
            block_points.append([window_positions[i] for i in members])
            block_rss.append(window_rss[members].tolist())
        return refine_hypothesis(
            self.channel,
            block_points,
            block_rss,
            locations,
            max_shift_m=self.config.effective_refine_max_shift_m,
        )

    def _add_observation_noise(
        self, rss: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        if self.config.snr_db is None:
            return rss
        sigma = snr_noise_sigma(rss, self.config.snr_db)
        if sigma == 0.0:
            return rss
        return rss + self._rng.normal(0.0, sigma, size=rss.shape)

    def _problem_for(self, positions: Sequence[Point]) -> CsProblem:
        if self._fixed_problem is not None:
            return self._fixed_problem
        grid = grid_from_reference_points(
            list(positions),
            self.config.communication_radius_m,
            self.config.lattice_length_m,
        )
        key: _GridKey = (
            grid.box.min_x,
            grid.box.min_y,
            grid.box.max_x,
            grid.box.max_y,
            grid.lattice_length,
        )
        problem = self._problem_cache.get(key)
        if problem is None:
            problem = CsProblem(
                grid,
                self.channel,
                communication_radius_m=self.config.communication_radius_m,
                cross_round_cache=self.config.cross_round_cache,
            )
            self._problem_cache[key] = problem
            if len(self._problem_cache) > self.MAX_CACHED_PROBLEMS:
                _, evicted = self._problem_cache.popitem(last=False)
                self._stats_shadow.pop(id(evicted), None)
        else:
            self._problem_cache.move_to_end(key)
        return problem

    @staticmethod
    def _locations_for(
        partition: Partition,
        recoveries: Dict[Tuple[int, ...], Optional[RecoveryResult]],
    ) -> Optional[List[Point]]:
        """Assemble a hypothesis's locations from the shared block map.

        ``None`` marks an infeasible hypothesis (one of its blocks failed
        to recover), matching the per-partition error handling of the
        pre-batched loop.
        """
        locations: List[Point] = []
        for block in partition:
            recovery = recoveries.get(block)
            if recovery is None:
                return None
            locations.append(recovery.location)
        return locations
