"""Sliding-window scheduling of RSS readings (§4.3.2).

With a collected sequence of length k, window length s and step q
(q ≤ s ≤ k), round n processes the readings

    R_n = { r_{q(n−1)+1}, …, r_{q(n−1)+s} }            (1-based, paper)

i.e. zero-based slice ``[q·(n−1), q·(n−1) + s)``.  The final, possibly
shorter, window at the tail of the sequence is also emitted so no reading
is ever dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["WindowConfig", "SlidingWindow"]


@dataclass(frozen=True)
class WindowConfig:
    """Sliding-window parameters (paper defaults: size 60, step 10)."""

    size: int = 60
    step: int = 10

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"window size must be >= 1, got {self.size}")
        if self.step < 1:
            raise ValueError(f"window step must be >= 1, got {self.step}")
        if self.step > self.size:
            raise ValueError(
                f"step ({self.step}) must not exceed size ({self.size})"
            )


class SlidingWindow:
    """Iterates window slices over a growing reading sequence."""

    def __init__(self, config: Optional[WindowConfig] = None) -> None:
        self.config = config if config is not None else WindowConfig()

    def rounds(self, n_readings: int) -> List[Tuple[int, int]]:
        """``(start, end)`` index pairs of every round over ``n_readings``.

        * Sequences shorter than one window yield a single partial round.
        * The last round is anchored to the tail so the final readings are
          always covered, even when ``n_readings − size`` is not a
          multiple of ``step``.
        """
        if n_readings < 0:
            raise ValueError(f"n_readings must be >= 0, got {n_readings}")
        if n_readings == 0:
            return []
        size, step = self.config.size, self.config.step
        if n_readings <= size:
            return [(0, n_readings)]
        starts = list(range(0, n_readings - size + 1, step))
        tail_start = n_readings - size
        if starts[-1] != tail_start:
            starts.append(tail_start)
        return [(s, s + size) for s in starts]

    def slices(self, sequence: Sequence) -> Iterator[Sequence]:
        """Yield the actual sub-sequences for each round."""
        for start, end in self.rounds(len(sequence)):
            yield sequence[start:end]

    def round_count(self, n_readings: int) -> int:
        """Number of rounds a sequence of this length produces."""
        return len(self.rounds(n_readings))
