"""Sliding-window scheduling of RSS readings (§4.3.2).

With a collected sequence of length k, window length s and step q
(q ≤ s ≤ k), round n processes the readings

    R_n = { r_{q(n−1)+1}, …, r_{q(n−1)+s} }            (1-based, paper)

i.e. zero-based slice ``[q·(n−1), q·(n−1) + s)``.  The final, possibly
shorter, window at the tail of the sequence is also emitted so no reading
is ever dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["WindowConfig", "SlidingWindow", "WindowCursor"]


@dataclass(frozen=True)
class WindowConfig:
    """Sliding-window parameters (paper defaults: size 60, step 10)."""

    size: int = 60
    step: int = 10

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"window size must be >= 1, got {self.size}")
        if self.step < 1:
            raise ValueError(f"window step must be >= 1, got {self.step}")
        if self.step > self.size:
            raise ValueError(
                f"step ({self.step}) must not exceed size ({self.size})"
            )


class SlidingWindow:
    """Iterates window slices over a growing reading sequence."""

    def __init__(self, config: Optional[WindowConfig] = None) -> None:
        self.config = config if config is not None else WindowConfig()

    def rounds(self, n_readings: int) -> List[Tuple[int, int]]:
        """``(start, end)`` index pairs of every round over ``n_readings``.

        * Sequences shorter than one window yield a single partial round.
        * The last round is anchored to the tail so the final readings are
          always covered, even when ``n_readings − size`` is not a
          multiple of ``step``.
        """
        if n_readings < 0:
            raise ValueError(f"n_readings must be >= 0, got {n_readings}")
        if n_readings == 0:
            return []
        size, step = self.config.size, self.config.step
        if n_readings <= size:
            return [(0, n_readings)]
        starts = list(range(0, n_readings - size + 1, step))
        tail_start = n_readings - size
        if starts[-1] != tail_start:
            starts.append(tail_start)
        return [(s, s + size) for s in starts]

    def slices(self, sequence: Sequence) -> Iterator[Sequence]:
        """Yield the actual sub-sequences for each round."""
        for start, end in self.rounds(len(sequence)):
            yield sequence[start:end]

    def round_count(self, n_readings: int) -> int:
        """Number of rounds a sequence of this length produces."""
        return len(self.rounds(n_readings))

    def cursor(self) -> "WindowCursor":
        """An incremental cursor over this window schedule."""
        return WindowCursor(self.config)


class WindowCursor:
    """Incremental counterpart of :meth:`SlidingWindow.rounds`.

    Readings arrive one at a time; the cursor emits each *regular* round
    ``(q·i, q·i + s)`` the moment its last reading lands, and the
    anchored tail (or the single partial round of a short trace) when
    :meth:`finish` declares the trace complete.  The concatenation of
    every :meth:`push` result plus :meth:`finish` equals
    ``SlidingWindow.rounds(n)`` exactly, for every ``n`` — rounds are
    never duplicated, reordered, or dropped.

    Because ``step <= size``, every emitted round covers a suffix of the
    readings seen so far no longer than ``size`` — a consumer therefore
    only ever needs the last ``size`` readings (the streaming engine's
    ring buffer invariant).
    """

    def __init__(self, config: Optional[WindowConfig] = None) -> None:
        self.config = config if config is not None else WindowConfig()
        self._count = 0
        self._emitted = 0

    @property
    def count(self) -> int:
        """Readings pushed so far."""
        return self._count

    def push(self) -> Optional[Tuple[int, int]]:
        """Register one reading; return the round it completes, if any.

        At most one round completes per push (``step >= 1``), so the
        return value is a single ``(start, end)`` pair or ``None``.
        """
        self._count += 1
        size, step = self.config.size, self.config.step
        overshoot = self._count - size
        if overshoot < 0 or overshoot % step != 0:
            return None
        self._emitted += 1
        return (overshoot, self._count)

    def finish(self) -> Optional[Tuple[int, int]]:
        """The tail round owed at end-of-trace, if any.

        * An empty trace owes nothing.
        * A trace no longer than one window that never completed a
          regular round owes its single partial round ``(0, n)``.
        * A longer trace owes the anchored tail ``(n − size, n)`` unless
          the final reading already completed a regular round there.
        """
        n, size = self._count, self.config.size
        if n == 0:
            return None
        if n < size:
            return (0, n)
        if (n - size) % self.config.step != 0:
            return (n - size, n)
        return None
