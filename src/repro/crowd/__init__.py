"""Offline crowdsourcing — the server-side half of CrowdWiFi (§5).

* :mod:`repro.crowd.workers` — crowd-vehicle reliability models, most
  importantly the spammer–hammer prior (§5.1).
* :mod:`repro.crowd.assignment` — (ℓ,γ)-regular random bipartite task
  assignment graphs (§5.2).
* :mod:`repro.crowd.labels` — the noisy ±1 labeling process
  ``P[L_ij = z_i] = q_j``.
* :mod:`repro.crowd.inference` — the Karger–Oh–Shah iterative
  message-passing estimator, whose 0-th iteration is majority voting
  (§5.3).
* :mod:`repro.crowd.streaming` — the incremental KOS consumer
  (``StreamingKos``) that absorbs labels as they arrive and finalizes
  bit-identically to the batch estimator, plus the cross-round
  ``ReliabilityLedger`` with exponential forgetting.
* :mod:`repro.crowd.aggregation` — majority voting, Skyhook-style
  rank-order weighting, and the oracle lower bound used in Fig. 7.
* :mod:`repro.crowd.tasks` — AP distribution-pattern mapping tasks.
* :mod:`repro.crowd.fine_grained` — reliability-weighted centroid fusion
  of per-vehicle AP estimates (§5.4).
"""

from repro.crowd.workers import SpammerHammerPrior, Worker, draw_workers
from repro.crowd.assignment import BipartiteAssignment, regular_assignment
from repro.crowd.labels import generate_labels
from repro.crowd.inference import KosResult, kos_inference
from repro.crowd.streaming import ReliabilityLedger, StreamingKos
from repro.crowd.variational import EmResult, em_inference
from repro.crowd.aggregation import (
    majority_vote,
    oracle_vote,
    rank_order_vote,
)
from repro.crowd.tasks import MappingTask, PatternTaskGenerator
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion

__all__ = [
    "Worker",
    "SpammerHammerPrior",
    "draw_workers",
    "BipartiteAssignment",
    "regular_assignment",
    "generate_labels",
    "kos_inference",
    "KosResult",
    "StreamingKos",
    "ReliabilityLedger",
    "em_inference",
    "EmResult",
    "majority_vote",
    "oracle_vote",
    "rank_order_vote",
    "MappingTask",
    "PatternTaskGenerator",
    "VehicleReport",
    "weighted_centroid_fusion",
]
