"""Baseline label aggregators compared against KOS in Fig. 7.

* :func:`majority_vote` — what the majority of vehicles agree on [14];
  weights every vehicle equally, hence error-prone with many spammers.
* :func:`rank_order_vote` — a Skyhook-style aggregator [4, 15]: each
  vehicle's answer vector is scored by its Spearman rank-order
  correlation with the consensus, and votes are re-weighted by the
  (positive part of the) correlation.
* :func:`oracle_vote` — the oracle lower bound: weighted vote with the
  *true* reliabilities, using the log-likelihood-ratio weights
  ``log(q/(1−q))`` that are Bayes-optimal for independent workers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.stats import spearmanr

from repro.crowd.assignment import BipartiteAssignment

__all__ = ["majority_vote", "oracle_vote", "rank_order_vote"]


def _validate(labels: np.ndarray, assignment: BipartiteAssignment) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.shape != (assignment.n_tasks, assignment.n_workers):
        raise ValueError(
            f"labels shape {labels.shape} does not match assignment "
            f"({assignment.n_tasks}, {assignment.n_workers})"
        )
    return labels


def majority_vote(
    labels: np.ndarray, assignment: BipartiteAssignment
) -> np.ndarray:
    """ẑ_i = sign(Σ_j L_ij); ties broken to +1."""
    labels = _validate(labels, assignment)
    sums = labels.sum(axis=1)
    return np.where(sums >= 0, 1, -1)


def oracle_vote(
    labels: np.ndarray,
    assignment: BipartiteAssignment,
    reliabilities: Sequence[float],
    *,
    clip: float = 1e-6,
) -> np.ndarray:
    """Bayes-optimal weighted vote given the true q_j.

    Weight ``w_j = log(q_j / (1 − q_j))`` (clipped away from 0/1) is the
    log-likelihood ratio contributed by each worker's label; the sign of
    the weighted sum is the MAP estimate under a uniform label prior.
    """
    labels = _validate(labels, assignment)
    q = np.clip(np.asarray(reliabilities, dtype=float), clip, 1.0 - clip)
    if q.shape != (assignment.n_workers,):
        raise ValueError(
            f"reliabilities must have shape ({assignment.n_workers},), got {q.shape}"
        )
    weights = np.log(q / (1.0 - q))
    sums = labels @ weights
    return np.where(sums >= 0, 1, -1)


def rank_order_vote(
    labels: np.ndarray,
    assignment: BipartiteAssignment,
    *,
    min_overlap: int = 2,
) -> np.ndarray:
    """Skyhook-style aggregation by Spearman rank-order correlation.

    The consensus score vector is the per-task mean label.  Each worker's
    submitted labels (on the tasks it answered) are rank-correlated with
    the consensus restricted to those tasks; workers with non-positive or
    undefined correlation get zero weight — they are treated as
    uninformative, exactly how Skyhook down-ranks inconsistent reports.
    """
    labels = _validate(labels, assignment)
    consensus = labels.sum(axis=1).astype(float)
    weights = np.zeros(assignment.n_workers)
    for worker in range(assignment.n_workers):
        tasks = assignment.tasks_of_worker.get(worker, [])
        if len(tasks) < min_overlap:
            continue
        answers = labels[tasks, worker].astype(float)
        reference = consensus[tasks]
        if np.all(answers == answers[0]) or np.all(reference == reference[0]):
            # Constant vectors have undefined rank correlation; fall back
            # to simple agreement with the consensus sign.
            agreement = np.mean(np.sign(reference) == answers)
            weights[worker] = max(2.0 * agreement - 1.0, 0.0)
            continue
        correlation = spearmanr(answers, reference).correlation
        if np.isnan(correlation):
            continue
        weights[worker] = max(float(correlation), 0.0)
    sums = labels @ weights
    # Tasks where every correlated worker was zero-weighted fall back to MV.
    fallback = labels.sum(axis=1)
    sums = np.where(sums == 0, fallback, sums)
    return np.where(sums >= 0, 1, -1)
