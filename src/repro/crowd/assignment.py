"""(ℓ,γ)-regular random bipartite task assignment (§5.2).

The crowd-server assigns each of N mapping tasks to exactly ℓ
crowd-vehicles, and each crowd-vehicle receives exactly γ tasks, so the
worker pool has M = N·ℓ/γ vehicles.  Graphs are drawn uniformly from the
(ℓ,γ)-regular ensemble with the configuration model: N·ℓ task half-edges
are randomly matched to M·γ worker half-edges.  Multi-edges are collapsed
(a vehicle labels a task once), which for the sparse degrees used in
Fig. 7 perturbs the ensemble negligibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.util.rng import RngLike, ensure_rng

__all__ = ["BipartiteAssignment", "regular_assignment"]


@dataclass
class BipartiteAssignment:
    """An assignment of tasks to workers as an edge set.

    ``edges`` holds (task_index, worker_index) pairs; adjacency views are
    built once at construction.
    """

    n_tasks: int
    n_workers: int
    edges: List[Tuple[int, int]]
    tasks_of_worker: Dict[int, List[int]] = field(init=False)
    workers_of_task: Dict[int, List[int]] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.n_workers < 1:
            raise ValueError(
                f"need >= 1 tasks and workers, got {self.n_tasks}/{self.n_workers}"
            )
        seen: Set[Tuple[int, int]] = set()
        tasks_of_worker: Dict[int, List[int]] = {
            j: [] for j in range(self.n_workers)
        }
        workers_of_task: Dict[int, List[int]] = {i: [] for i in range(self.n_tasks)}
        for task, worker in self.edges:
            if not (0 <= task < self.n_tasks and 0 <= worker < self.n_workers):
                raise ValueError(f"edge ({task}, {worker}) out of range")
            if (task, worker) in seen:
                raise ValueError(f"duplicate edge ({task}, {worker})")
            seen.add((task, worker))
            tasks_of_worker[worker].append(task)
            workers_of_task[task].append(worker)
        self.tasks_of_worker = tasks_of_worker
        self.workers_of_task = workers_of_task

    @property
    def n_edges(self) -> int:
        """Total task-worker edges, Σ_i |M_i| = Σ_j |N_j| (§5.2)."""
        return len(self.edges)

    def task_degrees(self) -> np.ndarray:
        """Number of workers per task."""
        return np.array(
            [len(self.workers_of_task[i]) for i in range(self.n_tasks)], dtype=int
        )

    def worker_degrees(self) -> np.ndarray:
        """Number of tasks per worker."""
        return np.array(
            [len(self.tasks_of_worker[j]) for j in range(self.n_workers)], dtype=int
        )

    def to_matrix_mask(self) -> np.ndarray:
        """Boolean (n_tasks, n_workers) incidence matrix."""
        mask = np.zeros((self.n_tasks, self.n_workers), dtype=bool)
        for task, worker in self.edges:
            mask[task, worker] = True
        return mask


def regular_assignment(
    n_tasks: int,
    workers_per_task: int,
    tasks_per_worker: int,
    rng: RngLike = None,
    *,
    max_retries: int = 50,
) -> BipartiteAssignment:
    """Draw an (ℓ,γ)-regular bipartite graph by the configuration model.

    Parameters
    ----------
    n_tasks:
        N — number of mapping tasks (left vertices).
    workers_per_task:
        ℓ — left degree.
    tasks_per_worker:
        γ — right degree.  ``N·ℓ`` must be divisible by γ so the worker
        count ``M = N·ℓ/γ`` is integral.

    Multi-edges produced by the half-edge matching are removed by random
    double-edge swaps (the standard simple-graph repair), so the returned
    graph is exactly (ℓ,γ)-regular whenever one exists; if the repair
    cannot finish (pathologically dense corner cases) the duplicate pairs
    are collapsed instead, costing at most a few edges.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    if workers_per_task < 1 or tasks_per_worker < 1:
        raise ValueError(
            "workers_per_task and tasks_per_worker must be >= 1, got "
            f"{workers_per_task}/{tasks_per_worker}"
        )
    total_half_edges = n_tasks * workers_per_task
    if total_half_edges % tasks_per_worker != 0:
        raise ValueError(
            f"N·ℓ = {total_half_edges} is not divisible by γ = {tasks_per_worker}; "
            "the worker count would not be integral"
        )
    n_workers = total_half_edges // tasks_per_worker
    generator = ensure_rng(rng)

    task_stubs = np.repeat(np.arange(n_tasks), workers_per_task)
    worker_stubs = np.repeat(np.arange(n_workers), tasks_per_worker)

    best_pairs = None
    for _ in range(max_retries):
        permuted = generator.permutation(worker_stubs)
        edge_list = list(zip(task_stubs.tolist(), permuted.tolist()))
        repaired = _repair_multi_edges(edge_list, generator)
        if repaired is not None:
            return BipartiteAssignment(
                n_tasks=n_tasks, n_workers=n_workers, edges=sorted(repaired)
            )
        collapsed = set(edge_list)
        if best_pairs is None or len(collapsed) > len(best_pairs):
            best_pairs = collapsed
    # Fall back to the best collapsed draw (loses a few edges of degree).
    return BipartiteAssignment(
        n_tasks=n_tasks, n_workers=n_workers, edges=sorted(best_pairs)
    )


def _repair_multi_edges(edge_list, generator, *, max_swaps=10_000):
    """Make a configuration-model draw simple via random double-edge swaps.

    A duplicate pair (t, w) is swapped against a random other edge
    (t', w') to become (t, w') and (t', w), which preserves all degrees.
    Returns the repaired edge list, or ``None`` if the swap budget runs
    out (caller retries with a fresh draw).

    A pair → slot-indices map tracks where each edge currently lives, so
    locating a duplicate's occurrence is O(multiplicity) instead of an
    O(E) ``list.index`` scan per swap.
    """
    from collections import Counter

    edges = list(edge_list)
    counts = Counter(edges)
    positions: Dict[Tuple[int, int], List[int]] = {}
    for slot, pair in enumerate(edges):
        positions.setdefault(pair, []).append(slot)
    duplicates = [pair for pair, count in counts.items() for _ in range(count - 1)]
    swaps = 0
    while duplicates:
        if swaps >= max_swaps:
            return None
        swaps += 1
        pair = duplicates.pop()
        if counts[pair] <= 1:
            continue
        # The lowest occupied slot, matching what edges.index() would find.
        index = min(positions[pair])
        other_index = int(generator.integers(len(edges)))
        other = edges[other_index]
        if other_index == index or other[0] == pair[0] or other[1] == pair[1]:
            duplicates.append(pair)
            continue
        new_a = (pair[0], other[1])
        new_b = (other[0], pair[1])
        if counts[new_a] > 0 or counts[new_b] > 0:
            duplicates.append(pair)
            continue
        counts[pair] -= 1
        counts[other] -= 1
        counts[new_a] += 1
        counts[new_b] += 1
        edges[index] = new_a
        edges[other_index] = new_b
        positions[pair].remove(index)
        positions[other].remove(other_index)
        positions.setdefault(new_a, []).append(index)
        positions.setdefault(new_b, []).append(other_index)
        if counts[other] > 1:
            duplicates.append(other)
    return edges
