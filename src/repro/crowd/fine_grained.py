"""Fine-grained estimation by reliability-weighted centroid fusion (§5.4).

Crowd-vehicles form different local grids on different drives, so their
coarse estimates of the *same* AP land on nearby-but-distinct grid
points.  The crowd-server clusters the uploaded estimates (estimates
within an alignment radius refer to one AP) and fuses each cluster with a
centroid weighted by the inferred reliability of the contributing
vehicle — more reliable vehicles pull the fused location harder,
compensating for each vehicle's individual lookup error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geo.points import Point, centroid

__all__ = ["VehicleReport", "FusedAp", "weighted_centroid_fusion"]


@dataclass(frozen=True)
class VehicleReport:
    """One crowd-vehicle's uploaded coarse AP estimates + its reliability."""

    vehicle_id: str
    ap_locations: Tuple[Point, ...]
    reliability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(
                f"reliability must be in [0, 1], got {self.reliability}"
            )


@dataclass(frozen=True)
class FusedAp:
    """One crowd-fused AP estimate."""

    location: Point
    support: int          # how many vehicles reported it
    total_weight: float   # summed reliability weight behind it


def weighted_centroid_fusion(
    reports: Sequence[VehicleReport],
    *,
    alignment_radius_m: float = 15.0,
    min_support: int = 1,
    spammer_floor: float = 0.5,
) -> List[FusedAp]:
    """Fuse per-vehicle AP estimates into a fine-grained AP map.

    Parameters
    ----------
    reports:
        Uploaded estimates with per-vehicle reliabilities (from the KOS
        inference of §5.3).
    alignment_radius_m:
        Estimates within this distance of a cluster's running centroid
        are treated as observations of the same AP.
    min_support:
        Clusters reported by fewer vehicles are dropped as spurious.
    spammer_floor:
        Reliability at or below this contributes zero weight — a
        vehicle no better than coin-flipping carries no information.
        Weights are ``max(q − floor, 0)``, so hammers dominate.

    Returns
    -------
    list of FusedAp
        Fused locations sorted by total weight, descending.
    """
    if alignment_radius_m <= 0:
        raise ValueError(
            f"alignment_radius_m must be > 0, got {alignment_radius_m}"
        )
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if not 0.0 <= spammer_floor < 1.0:
        raise ValueError(f"spammer_floor must be in [0, 1), got {spammer_floor}")

    # Greedy online clustering: weight-descending insertion order makes the
    # most reliable observations seed the clusters.
    observations: List[Tuple[Point, float, str]] = []
    for report in reports:
        weight = max(report.reliability - spammer_floor, 0.0)
        for location in report.ap_locations:
            observations.append((location, weight, report.vehicle_id))
    observations.sort(key=lambda item: item[1], reverse=True)

    clusters: List[dict] = []
    for location, weight, vehicle_id in observations:
        placed = False
        for cluster in clusters:
            if cluster["center"].distance_to(location) <= alignment_radius_m:
                cluster["points"].append(location)
                cluster["weights"].append(weight)
                cluster["vehicles"].add(vehicle_id)
                cluster["center"] = _cluster_centroid(cluster)
                placed = True
                break
        if not placed:
            clusters.append(
                {
                    "center": location,
                    "points": [location],
                    "weights": [weight],
                    "vehicles": {vehicle_id},
                }
            )

    fused: List[FusedAp] = []
    for cluster in clusters:
        if len(cluster["vehicles"]) < min_support:
            continue
        fused.append(
            FusedAp(
                location=cluster["center"],
                support=len(cluster["vehicles"]),
                total_weight=float(sum(cluster["weights"])),
            )
        )
    fused.sort(key=lambda ap: ap.total_weight, reverse=True)
    return fused


def _cluster_centroid(cluster: dict) -> Point:
    """Weighted centroid of a cluster; unweighted when all weights are zero."""
    weights = cluster["weights"]
    if sum(weights) <= 0:
        return centroid(cluster["points"])
    return centroid(cluster["points"], weights)
