"""Karger–Oh–Shah iterative message-passing inference (§5.3).

Messages flow along the assignment graph's edges:

    x_{i→j}^{t+1} = Σ_{j'∈M_i \\ j} L_{ij'} · y_{j'→i}^{t}
    y_{j→i}^{t+1} = Σ_{i'∈N_j \\ i} L_{i'j} · x_{i'→j}^{t+1}

The task estimate is the reliability-weighted vote
``ẑ_i = sign( Σ_{j∈M_i} L_ij · y_{j→i} )``; with messages initialised to
1 the 0-th iteration reduces exactly to majority voting.  y-messages are
the inferred per-vehicle reliabilities (up to scale); we also report the
empirical agreement of each worker with the final estimate, which is the
calibrated q̂ used by the fine-grained weighted-centroid stage (§5.4).

The message loop and the decision stage operate on flat per-edge arrays
in ``assignment.edges`` order.  They are factored into module-level
helpers shared with :mod:`repro.crowd.streaming`, whose ``finalize()``
runs the exact same operations over the exact same arrays — that sharing
is what makes the streaming engine's batch-equivalence contract
bit-exact rather than merely approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from numpy.typing import NDArray

from repro.crowd.assignment import BipartiteAssignment
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "KosResult",
    "kos_inference",
]

#: Paper's stopping rule: at most 100 iterations or 1e-5 message movement.
DEFAULT_MAX_ITERATIONS = 100
DEFAULT_TOLERANCE = 1e-5


@dataclass(frozen=True)
class KosResult:
    """Output of the iterative inference."""

    estimates: NDArray[np.int_]             # (n_tasks,) ±1
    worker_scores: NDArray[np.float64]      # (n_workers,) raw reliability scores (unnormalised)
    worker_reliability: NDArray[np.float64]  # (n_workers,) calibrated q̂ in [0, 1]
    iterations: int
    converged: bool


def _edge_arrays(
    assignment: BipartiteAssignment,
) -> Tuple[NDArray[np.int_], NDArray[np.int_]]:
    """Flat (task_idx, worker_idx) arrays in ``assignment.edges`` order.

    Every consumer of the message loop must build its per-edge arrays
    through this helper: summation order inside ``np.add.at`` follows
    edge order, so two callers that agree on it produce bitwise-equal
    floating-point reductions.
    """
    edges = assignment.edges
    task_idx = np.array([t for t, _ in edges], dtype=int)
    worker_idx = np.array([w for _, w in edges], dtype=int)
    return task_idx, worker_idx


def _initial_messages(
    n_edges: int, *, random_init: bool, rng: RngLike
) -> NDArray[np.float64]:
    """The y-message start vector: all-ones, or Normal(1, 1) draws."""
    generator = ensure_rng(rng)
    if random_init:
        return generator.normal(1.0, 1.0, size=n_edges)
    return np.ones(n_edges)


def _message_loop(
    task_idx: NDArray[np.int_],
    worker_idx: NDArray[np.int_],
    edge_labels: NDArray[np.float64],
    n_tasks: int,
    n_workers: int,
    y_messages: NDArray[np.float64],
    *,
    max_iterations: int,
    tolerance: float,
) -> Tuple[NDArray[np.float64], int, bool]:
    """Run the KOS x/y sweeps until convergence or the iteration cap.

    Returns the final y-messages, the number of iterations run, and the
    convergence flag.  Convergence compares normalised directions because
    raw messages grow geometrically.
    """
    converged = False
    iterations_run = 0
    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        # x_{i→j} = (Σ_{j'} L_{ij'} y_{j'→i}) − L_{ij} y_{j→i}
        task_sums = np.zeros(n_tasks)
        np.add.at(task_sums, task_idx, edge_labels * y_messages)
        x_messages = task_sums[task_idx] - edge_labels * y_messages
        # y_{j→i} = (Σ_{i'} L_{i'j} x_{i'→j}) − L_{ij} x_{i→j}
        worker_sums = np.zeros(n_workers)
        np.add.at(worker_sums, worker_idx, edge_labels * x_messages)
        new_y = worker_sums[worker_idx] - edge_labels * x_messages

        # Messages grow geometrically; compare directions for convergence.
        norm_old = np.linalg.norm(y_messages)
        norm_new = np.linalg.norm(new_y)
        if norm_new > 0 and norm_old > 0:
            movement = float(
                np.linalg.norm(new_y / norm_new - y_messages / norm_old)
            )
            if movement < tolerance:
                y_messages = new_y
                converged = True
                break
        y_messages = new_y
        if norm_new == 0:
            break
    return y_messages, iterations_run, converged


def _decide(
    task_idx: NDArray[np.int_],
    worker_idx: NDArray[np.int_],
    edge_labels: NDArray[np.float64],
    n_tasks: int,
    n_workers: int,
    y_messages: NDArray[np.float64],
) -> Tuple[NDArray[np.int_], NDArray[np.float64], NDArray[np.float64]]:
    """Decision stage: ẑ_i = sign(Σ_j L_ij y_{j→i}) plus worker scores.

    Ties resolve to +1.  The calibrated reliability is each worker's
    empirical agreement fraction with the final estimates (0.5 for
    workers with no edges).
    """
    task_sums = np.zeros(n_tasks)
    np.add.at(task_sums, task_idx, edge_labels * y_messages)
    estimates = np.where(task_sums >= 0, 1, -1)

    worker_scores = np.zeros(n_workers)
    np.add.at(worker_scores, worker_idx, edge_labels * np.sign(task_sums)[task_idx])

    agreement = np.zeros(n_workers)
    counts = np.zeros(n_workers)
    matches = (edge_labels == estimates[task_idx]).astype(float)
    np.add.at(agreement, worker_idx, matches)
    np.add.at(counts, worker_idx, 1.0)
    with np.errstate(invalid="ignore"):
        reliability = np.where(counts > 0, agreement / np.maximum(counts, 1), 0.5)
    return estimates, worker_scores, reliability


def _record_run(
    recorder: Recorder, *, iterations_run: int, converged: bool, n_tasks: int
) -> None:
    """Emit the per-run KOS telemetry (shared by batch and streaming)."""
    recorder.count("kos.runs")
    if recorder.enabled:
        recorder.observe("kos.iterations", iterations_run)
        if converged:
            recorder.count("kos.converged")
        recorder.observe("kos.tasks", n_tasks)


def kos_inference(
    labels: NDArray[np.int_],
    assignment: BipartiteAssignment,
    *,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    random_init: bool = False,
    rng: RngLike = None,
    recorder: Recorder = NULL_RECORDER,
) -> KosResult:
    """Run KOS message passing over a label matrix.

    Parameters
    ----------
    labels:
        (n_tasks, n_workers) matrix over {0, ±1}; zeros are non-edges.
    assignment:
        The bipartite graph the labels were collected on.
    random_init:
        Initialise y-messages from Normal(1, 1) instead of the
        deterministic all-ones start (both appear in the paper).
    recorder:
        Telemetry sink recording the iterations-to-convergence histogram
        (``kos.iterations``) and a convergence counter; a no-op with the
        default :data:`~repro.obs.recorder.NULL_RECORDER`.

    Returns
    -------
    KosResult
        Task estimates, worker scores, calibrated reliabilities, and
        convergence information.
    """
    labels = np.asarray(labels)
    if labels.shape != (assignment.n_tasks, assignment.n_workers):
        raise ValueError(
            f"labels shape {labels.shape} does not match assignment "
            f"({assignment.n_tasks}, {assignment.n_workers})"
        )
    if max_iterations < 0:
        raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")

    task_idx, worker_idx = _edge_arrays(assignment)
    edge_labels = labels[task_idx, worker_idx].astype(float)
    if np.any(edge_labels == 0):
        raise ValueError("an assignment edge carries a zero label")

    y_messages = _initial_messages(
        len(assignment.edges), random_init=random_init, rng=rng
    )
    y_messages, iterations_run, converged = _message_loop(
        task_idx,
        worker_idx,
        edge_labels,
        assignment.n_tasks,
        assignment.n_workers,
        y_messages,
        max_iterations=max_iterations,
        tolerance=tolerance,
    )
    estimates, worker_scores, reliability = _decide(
        task_idx,
        worker_idx,
        edge_labels,
        assignment.n_tasks,
        assignment.n_workers,
        y_messages,
    )

    _record_run(
        recorder,
        iterations_run=iterations_run,
        converged=converged,
        n_tasks=assignment.n_tasks,
    )

    return KosResult(
        estimates=estimates,
        worker_scores=worker_scores,
        worker_reliability=reliability,
        iterations=iterations_run,
        converged=converged,
    )
