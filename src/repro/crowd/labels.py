"""The noisy labeling process: ``P[L_ij = z_i] = q_j`` (§5.2).

Given true task labels z ∈ {±1}ⁿ, an assignment graph, and worker
reliabilities, each edge (i, j) produces the correct label with
probability q_j and the flipped label otherwise, independently.  The
result is the sparse label matrix L ∈ {0, ±1}^{N×M} with L_ij = 0 on
non-edges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.crowd.assignment import BipartiteAssignment
from repro.util.rng import RngLike, ensure_rng

__all__ = ["generate_labels"]


def generate_labels(
    true_labels: Sequence[int],
    assignment: BipartiteAssignment,
    reliabilities: Sequence[float],
    rng: RngLike = None,
) -> NDArray[np.int_]:
    """Draw the label matrix L for one crowdsourcing round.

    Parameters
    ----------
    true_labels:
        z ∈ {±1} per task, length ``assignment.n_tasks``.
    reliabilities:
        q_j per worker, length ``assignment.n_workers``.

    Returns
    -------
    numpy.ndarray
        Dense int matrix of shape (n_tasks, n_workers) over {0, ±1}.
    """
    z = np.asarray(true_labels, dtype=int)
    q = np.asarray(reliabilities, dtype=float)
    if z.shape != (assignment.n_tasks,):
        raise ValueError(
            f"true_labels must have shape ({assignment.n_tasks},), got {z.shape}"
        )
    if q.shape != (assignment.n_workers,):
        raise ValueError(
            f"reliabilities must have shape ({assignment.n_workers},), got {q.shape}"
        )
    if not set(np.unique(z)).issubset({-1, 1}):
        raise ValueError("true labels must be ±1")
    if np.any(q < 0) or np.any(q > 1):
        raise ValueError("reliabilities must lie in [0, 1]")

    generator = ensure_rng(rng)
    labels = np.zeros((assignment.n_tasks, assignment.n_workers), dtype=int)
    if not assignment.edges:
        return labels
    pairs = np.asarray(assignment.edges, dtype=int)
    task_idx = pairs[:, 0]
    worker_idx = pairs[:, 1]
    # One vectorised draw per edge in edges order: Generator.random(n)
    # consumes the bit stream exactly like n scalar .random() calls, so
    # this is bit-identical to the historical per-edge loop.
    correct = generator.random(len(assignment.edges)) < q[worker_idx]
    labels[task_idx, worker_idx] = np.where(correct, z[task_idx], -z[task_idx])
    return labels
