"""Reusable crowdsourcing simulation harness (the Fig. 7 machinery).

Builds spammer–hammer instances — an (ℓ,γ)-regular assignment, sampled
reliabilities, true ±1 labels and the noisy label matrix — and evaluates
any set of aggregators on them.  The figure harness, the ablations and
the tests all drive this one path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.crowd.aggregation import majority_vote, oracle_vote, rank_order_vote
from repro.crowd.assignment import BipartiteAssignment, regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.variational import em_inference
from repro.crowd.workers import SpammerHammerPrior
from repro.metrics.errors import bitwise_error_rate
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "CrowdInstance",
    "make_instance",
    "Aggregator",
    "STANDARD_AGGREGATORS",
    "evaluate_aggregators",
    "mean_errors",
]


@dataclass(frozen=True)
class CrowdInstance:
    """One fully sampled crowdsourcing problem."""

    assignment: BipartiteAssignment
    reliabilities: np.ndarray
    true_labels: np.ndarray
    labels: np.ndarray


def make_instance(
    n_tasks: int,
    workers_per_task: int,
    tasks_per_worker: int,
    *,
    prior: SpammerHammerPrior = None,
    rng: RngLike = None,
) -> CrowdInstance:
    """Sample one spammer–hammer instance."""
    generator = ensure_rng(rng)
    prior = prior if prior is not None else SpammerHammerPrior()
    assignment = regular_assignment(
        n_tasks, workers_per_task, tasks_per_worker, rng=generator
    )
    reliabilities = prior.sample(assignment.n_workers, rng=generator)
    true_labels = np.where(generator.random(n_tasks) < 0.5, 1, -1)
    labels = generate_labels(
        true_labels, assignment, reliabilities, rng=generator
    )
    return CrowdInstance(
        assignment=assignment,
        reliabilities=reliabilities,
        true_labels=true_labels,
        labels=labels,
    )


Aggregator = Callable[[CrowdInstance], np.ndarray]

#: The aggregators of Fig. 7 plus the EM/variational alternative.
STANDARD_AGGREGATORS: Dict[str, Aggregator] = {
    "crowdwifi": lambda inst: kos_inference(
        inst.labels, inst.assignment
    ).estimates,
    "em": lambda inst: em_inference(inst.labels, inst.assignment).estimates,
    "majority_vote": lambda inst: majority_vote(inst.labels, inst.assignment),
    "skyhook": lambda inst: rank_order_vote(inst.labels, inst.assignment),
    "oracle": lambda inst: oracle_vote(
        inst.labels, inst.assignment, inst.reliabilities
    ),
}


def evaluate_aggregators(
    instance: CrowdInstance,
    aggregators: Dict[str, Aggregator] = None,
) -> Dict[str, float]:
    """Bit-wise error of each aggregator on one instance."""
    aggregators = (
        aggregators if aggregators is not None else STANDARD_AGGREGATORS
    )
    return {
        name: bitwise_error_rate(
            instance.true_labels, aggregator(instance)
        )
        for name, aggregator in aggregators.items()
    }


def mean_errors(
    n_tasks: int,
    workers_per_task: int,
    tasks_per_worker: int,
    *,
    n_trials: int,
    prior: SpammerHammerPrior = None,
    aggregators: Dict[str, Aggregator] = None,
    rng: RngLike = None,
) -> Dict[str, float]:
    """Average aggregator errors over independent instances."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    generator = ensure_rng(rng)
    aggregators = (
        aggregators if aggregators is not None else STANDARD_AGGREGATORS
    )
    totals = {name: 0.0 for name in aggregators}
    for _ in range(n_trials):
        instance = make_instance(
            n_tasks,
            workers_per_task,
            tasks_per_worker,
            prior=prior,
            rng=generator,
        )
        for name, error in evaluate_aggregators(instance, aggregators).items():
            totals[name] += error
    return {name: total / n_trials for name, total in totals.items()}
