"""Reusable crowdsourcing simulation harness (the Fig. 7 machinery).

Builds spammer–hammer instances — an (ℓ,γ)-regular assignment, sampled
reliabilities, true ±1 labels and the noisy label matrix — and evaluates
any set of aggregators on them.  The figure harness, the ablations and
the tests all drive this one path.

The module also hosts the **adversarial reliability-drift workload**
(ROADMAP item 5): multi-round campaigns over a persistent vehicle
population in which designated workers *degrade* (reliability ramps
down after an onset round), *collude* (answer an agreed wrong label on
a fraction of shared tasks), or *flip* between spammer and hammer
mid-campaign.  Rounds are aggregated through the streaming engine and
folded into a :class:`~repro.crowd.streaming.ReliabilityLedger`, and the
harness reports detection latency — how many drifted rounds pass before
a vehicle's belief crosses the flagging threshold — as the
``crowd.drift.detection_rounds`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.crowd.aggregation import majority_vote, oracle_vote, rank_order_vote
from repro.crowd.assignment import BipartiteAssignment, regular_assignment
from repro.crowd.inference import kos_inference
from repro.crowd.labels import generate_labels
from repro.crowd.streaming import ReliabilityLedger, StreamingKos
from repro.crowd.variational import em_inference
from repro.crowd.workers import SpammerHammerPrior
from repro.metrics.errors import bitwise_error_rate
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "CrowdInstance",
    "make_instance",
    "Aggregator",
    "STANDARD_AGGREGATORS",
    "evaluate_aggregators",
    "mean_errors",
    "DriftSpec",
    "DriftReport",
    "drifted_reliabilities",
    "generate_drift_labels",
    "run_drift_campaign",
]


@dataclass(frozen=True)
class CrowdInstance:
    """One fully sampled crowdsourcing problem."""

    assignment: BipartiteAssignment
    reliabilities: NDArray[np.float64]
    true_labels: NDArray[np.int_]
    labels: NDArray[np.int_]


def make_instance(
    n_tasks: int,
    workers_per_task: int,
    tasks_per_worker: int,
    *,
    prior: Optional[SpammerHammerPrior] = None,
    rng: RngLike = None,
) -> CrowdInstance:
    """Sample one spammer–hammer instance."""
    generator = ensure_rng(rng)
    prior = prior if prior is not None else SpammerHammerPrior()
    assignment = regular_assignment(
        n_tasks, workers_per_task, tasks_per_worker, rng=generator
    )
    reliabilities = prior.sample(assignment.n_workers, rng=generator)
    true_labels = np.where(generator.random(n_tasks) < 0.5, 1, -1)
    labels = generate_labels(
        true_labels, assignment, reliabilities, rng=generator
    )
    return CrowdInstance(
        assignment=assignment,
        reliabilities=reliabilities,
        true_labels=true_labels,
        labels=labels,
    )


Aggregator = Callable[[CrowdInstance], NDArray[np.int_]]

#: The aggregators of Fig. 7 plus the EM/variational alternative.
STANDARD_AGGREGATORS: Dict[str, Aggregator] = {
    "crowdwifi": lambda inst: kos_inference(
        inst.labels, inst.assignment
    ).estimates,
    "em": lambda inst: em_inference(inst.labels, inst.assignment).estimates,
    "majority_vote": lambda inst: majority_vote(inst.labels, inst.assignment),
    "skyhook": lambda inst: rank_order_vote(inst.labels, inst.assignment),
    "oracle": lambda inst: oracle_vote(
        inst.labels, inst.assignment, inst.reliabilities
    ),
}


def evaluate_aggregators(
    instance: CrowdInstance,
    aggregators: Optional[Dict[str, Aggregator]] = None,
) -> Dict[str, float]:
    """Bit-wise error of each aggregator on one instance."""
    aggregators = (
        aggregators if aggregators is not None else STANDARD_AGGREGATORS
    )
    return {
        name: bitwise_error_rate(
            instance.true_labels, aggregator(instance)
        )
        for name, aggregator in aggregators.items()
    }


def mean_errors(
    n_tasks: int,
    workers_per_task: int,
    tasks_per_worker: int,
    *,
    n_trials: int,
    prior: Optional[SpammerHammerPrior] = None,
    aggregators: Optional[Dict[str, Aggregator]] = None,
    rng: RngLike = None,
) -> Dict[str, float]:
    """Average aggregator errors over independent instances."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    generator = ensure_rng(rng)
    aggregators = (
        aggregators if aggregators is not None else STANDARD_AGGREGATORS
    )
    totals = {name: 0.0 for name in aggregators}
    for _ in range(n_trials):
        instance = make_instance(
            n_tasks,
            workers_per_task,
            tasks_per_worker,
            prior=prior,
            rng=generator,
        )
        for name, error in evaluate_aggregators(instance, aggregators).items():
            totals[name] += error
    return {name: total / n_trials for name, total in totals.items()}


# ---------------------------------------------------------------------------
# Adversarial reliability drift
# ---------------------------------------------------------------------------

_DRIFT_MODES = ("degrade", "collude", "flip")


@dataclass(frozen=True)
class DriftSpec:
    """One adversarial behaviour applied to a set of workers mid-campaign.

    Modes
    -----
    ``degrade``
        From ``onset_round`` on, reliability ramps linearly from its base
        value to ``degrade_to`` over ``degrade_rounds`` rounds.
    ``collude``
        From ``onset_round`` on, the workers form a cabal: on a
        ``collusion_strength`` fraction of tasks (drawn per round) every
        cabal member assigned to the task reports the *same wrong*
        label, overriding their honest draw.
    ``flip``
        At ``onset_round`` the workers swap ends of the spammer–hammer
        spectrum: a worker whose base reliability is at or above the
        ``flip_low``/``flip_high`` midpoint becomes ``flip_low`` (a
        hammer turning spammer) and vice versa.
    """

    mode: str
    workers: Tuple[int, ...]
    onset_round: int
    degrade_to: float = 0.5
    degrade_rounds: int = 3
    collusion_strength: float = 0.9
    flip_low: float = 0.5
    flip_high: float = 0.95

    def __post_init__(self) -> None:
        if self.mode not in _DRIFT_MODES:
            raise ValueError(
                f"mode must be one of {_DRIFT_MODES}, got {self.mode!r}"
            )
        if not self.workers:
            raise ValueError("a drift spec needs at least one worker")
        if self.onset_round < 0:
            raise ValueError(f"onset_round must be >= 0, got {self.onset_round}")
        if not 0.0 <= self.degrade_to <= 1.0:
            raise ValueError(f"degrade_to must lie in [0, 1], got {self.degrade_to}")
        if self.degrade_rounds < 1:
            raise ValueError(
                f"degrade_rounds must be >= 1, got {self.degrade_rounds}"
            )
        if not 0.0 < self.collusion_strength <= 1.0:
            raise ValueError(
                "collusion_strength must lie in (0, 1], "
                f"got {self.collusion_strength}"
            )
        if not 0.0 <= self.flip_low < self.flip_high <= 1.0:
            raise ValueError(
                f"need 0 <= flip_low < flip_high <= 1, "
                f"got {self.flip_low}/{self.flip_high}"
            )


def drifted_reliabilities(
    base: NDArray[np.float64],
    specs: Sequence[DriftSpec],
    round_index: int,
) -> NDArray[np.float64]:
    """Per-worker truthful-answer rates at ``round_index`` under ``specs``.

    Collusion does not change a worker's marginal reliability here — the
    cabal's damage is correlation, applied in
    :func:`generate_drift_labels`.
    """
    q = np.array(base, dtype=float, copy=True)
    for spec in specs:
        if round_index < spec.onset_round:
            continue
        workers = list(spec.workers)
        if spec.mode == "degrade":
            progress = min(
                1.0, (round_index - spec.onset_round + 1) / spec.degrade_rounds
            )
            q[workers] = base[workers] + progress * (
                spec.degrade_to - base[workers]
            )
        elif spec.mode == "flip":
            midpoint = 0.5 * (spec.flip_low + spec.flip_high)
            q[workers] = np.where(
                base[workers] >= midpoint, spec.flip_low, spec.flip_high
            )
    return q


def generate_drift_labels(
    true_labels: NDArray[np.int_],
    assignment: BipartiteAssignment,
    reliabilities: NDArray[np.float64],
    *,
    colluders: Set[int],
    collusion_strength: float,
    rng: RngLike = None,
) -> NDArray[np.int_]:
    """Draw one round's labels with an optional colluding cabal.

    Honest edges follow :func:`~repro.crowd.labels.generate_labels`; on a
    ``collusion_strength`` fraction of tasks (drawn per round) every
    cabal member assigned to the task reports the flipped true label, so
    their errors are perfectly correlated rather than independent.
    """
    generator = ensure_rng(rng)
    labels = generate_labels(true_labels, assignment, reliabilities, rng=generator)
    if colluders:
        member = np.zeros(assignment.n_workers, dtype=bool)
        member[list(colluders)] = True
        targeted = generator.random(assignment.n_tasks) < collusion_strength
        pairs = np.asarray(assignment.edges, dtype=int)
        task_idx = pairs[:, 0]
        worker_idx = pairs[:, 1]
        hit = member[worker_idx] & targeted[task_idx]
        labels[task_idx[hit], worker_idx[hit]] = -true_labels[task_idx[hit]]
    return labels


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one reliability-drift campaign."""

    detection_rounds: Dict[int, int] = field(default_factory=dict)
    missed: Tuple[int, ...] = ()
    false_positives: Tuple[int, ...] = ()
    belief_trajectories: NDArray[np.float64] = field(
        default_factory=lambda: np.zeros((0, 0))
    )
    round_errors: Tuple[float, ...] = ()

    @property
    def mean_detection_rounds(self) -> float:
        """Mean latency over detected workers (NaN when none detected)."""
        if not self.detection_rounds:
            return float("nan")
        return float(np.mean(list(self.detection_rounds.values())))

    @property
    def max_detection_rounds(self) -> int:
        """Worst-case latency over detected workers (0 when none)."""
        if not self.detection_rounds:
            return 0
        return max(self.detection_rounds.values())


def _watched_workers(
    specs: Sequence[DriftSpec], base: NDArray[np.float64]
) -> Dict[int, int]:
    """Workers whose drift *lowers* reliability, mapped to onset round.

    Spammer→hammer flips improve a worker and are never flagged, so they
    are excluded from latency accounting.
    """
    watched: Dict[int, int] = {}
    for spec in specs:
        for worker in spec.workers:
            harmful = True
            if spec.mode == "degrade":
                harmful = spec.degrade_to < float(base[worker])
            elif spec.mode == "flip":
                midpoint = 0.5 * (spec.flip_low + spec.flip_high)
                harmful = float(base[worker]) >= midpoint
            if harmful:
                onset = min(
                    spec.onset_round, watched.get(worker, spec.onset_round)
                )
                watched[worker] = onset
    return watched


def run_drift_campaign(
    n_tasks: int,
    workers_per_task: int,
    tasks_per_worker: int,
    *,
    n_rounds: int,
    specs: Sequence[DriftSpec],
    prior: Optional[SpammerHammerPrior] = None,
    forgetting: float = 0.6,
    detection_threshold: float = 0.625,
    rng: RngLike = None,
    recorder: Recorder = NULL_RECORDER,
) -> DriftReport:
    """Run a multi-round campaign with drifting workers and measure detection.

    A persistent population of ``n_tasks·ℓ/γ`` vehicles labels a fresh
    (ℓ,γ)-regular round every round; each round streams through
    :class:`~repro.crowd.streaming.StreamingKos`, is finalized, and its
    calibrated reliabilities are folded into a
    :class:`~repro.crowd.streaming.ReliabilityLedger` with exponential
    ``forgetting``.  A drifting worker counts as *detected* at the first
    post-onset round where its belief falls below
    ``detection_threshold``; the latency in rounds (onset round counts
    as 1) is emitted per worker as ``crowd.drift.detection_rounds``.

    The default prior is an all-hammer population (q = 0.9) so that the
    threshold separates honest vehicles from drifted ones; campaigns
    with spammer-heavy priors should lower ``detection_threshold``.
    """
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    if not 0.0 < detection_threshold < 1.0:
        raise ValueError(
            f"detection_threshold must lie in (0, 1), got {detection_threshold}"
        )
    generator = ensure_rng(rng)
    prior = (
        prior
        if prior is not None
        else SpammerHammerPrior(hammer_fraction=1.0, hammer_reliability=0.9)
    )

    with recorder.span("crowd.drift.campaign"):
        # The population is persistent: base reliabilities are drawn once
        # and drift is applied per round on top of them.
        total_half_edges = n_tasks * workers_per_task
        if total_half_edges % tasks_per_worker != 0:
            raise ValueError(
                f"N·ℓ = {total_half_edges} is not divisible by "
                f"γ = {tasks_per_worker}; the worker count would not be integral"
            )
        n_workers = total_half_edges // tasks_per_worker
        for spec in specs:
            bad = [w for w in spec.workers if not 0 <= w < n_workers]
            if bad:
                raise ValueError(
                    f"spec workers {bad} out of range for {n_workers} workers"
                )
        base = prior.sample(n_workers, rng=generator)
        watched = _watched_workers(specs, base)
        ledger = ReliabilityLedger(default=0.75, forgetting=forgetting)

        trajectories = np.zeros((n_rounds, n_workers))
        round_errors: List[float] = []
        detected: Dict[int, int] = {}
        for round_index in range(n_rounds):
            assignment = regular_assignment(
                n_tasks, workers_per_task, tasks_per_worker, rng=generator
            )
            q = drifted_reliabilities(base, specs, round_index)
            colluders = {
                w
                for spec in specs
                if spec.mode == "collude" and round_index >= spec.onset_round
                for w in spec.workers
            }
            strength = max(
                (
                    spec.collusion_strength
                    for spec in specs
                    if spec.mode == "collude"
                    and round_index >= spec.onset_round
                ),
                default=0.0,
            )
            true_labels = np.where(generator.random(n_tasks) < 0.5, 1, -1)
            labels = generate_drift_labels(
                true_labels,
                assignment,
                q,
                colluders=colluders,
                collusion_strength=strength,
                rng=generator,
            )

            stream = StreamingKos(assignment)
            for worker in range(assignment.n_workers):
                tasks = sorted(assignment.tasks_of_worker[worker])
                stream.ingest(
                    worker,
                    tasks,
                    [int(labels[t, worker]) for t in tasks],
                    recorder=recorder,
                )
            result = stream.finalize(recorder=recorder)
            round_errors.append(
                bitwise_error_rate(true_labels, result.estimates)
            )
            ledger.observe_many(
                (
                    (str(worker), float(result.worker_reliability[worker]))
                    for worker in range(assignment.n_workers)
                ),
                recorder=recorder,
            )
            beliefs = np.array(
                [ledger.get(str(w)) for w in range(n_workers)]
            )
            trajectories[round_index] = beliefs

            for worker, onset in watched.items():
                if worker in detected or round_index < onset:
                    continue
                if beliefs[worker] < detection_threshold:
                    latency = round_index - onset + 1
                    detected[worker] = latency
                    recorder.observe("crowd.drift.detection_rounds", latency)

        flagged_ever = {
            worker
            for worker in range(n_workers)
            if bool(np.any(trajectories[:, worker] < detection_threshold))
        }
        false_positives = tuple(sorted(flagged_ever - set(watched)))
        missed = tuple(sorted(set(watched) - set(detected)))
        if recorder.enabled:
            recorder.gauge("crowd.drift.watched", len(watched))
            recorder.gauge("crowd.drift.detected", len(detected))
            recorder.gauge("crowd.drift.missed", len(missed))
            recorder.gauge("crowd.drift.false_positives", len(false_positives))

    return DriftReport(
        detection_rounds=detected,
        missed=missed,
        false_positives=false_positives,
        belief_trajectories=trajectories,
        round_errors=tuple(round_errors),
    )
