"""Incremental streaming KOS: message passing as labels arrive.

The batch estimator (:func:`repro.crowd.inference.kos_inference`)
rebuilds its per-edge arrays and iterates from scratch every time it is
asked for an answer.  At millions of labels per campaign that recompute
dominates the offline half, so this module turns aggregation into a
*consumer*: a :class:`StreamingKos` is constructed once per round from
the assignment graph, absorbs ``LabelSubmission``s as they arrive, and
amortises damped message-passing sweeps across arrivals.  Interim task
estimates and worker-agreement readouts are available at any point;
``finalize()`` runs the exact batch message loop over the exact batch
edge arrays and is therefore **bit-identical** to ``kos_inference`` on
the completed pool — that equality is the module's correctness contract
and is pinned by tests.

Two design rules make the contract hold:

1. Per-edge arrays live in ``assignment.edges`` order (built through the
   same helper as the batch path), so every ``np.add.at`` reduction sums
   in the same order and produces bitwise-equal floats.
2. Interim state (the damped y-messages) is advisory only.  ``finalize``
   restarts from the canonical all-ones (or seeded Normal) start vector;
   sweeps buy cheap interim answers, never a different final one.

The module also provides :class:`ReliabilityLedger`, the cross-round
memory the middleware uses instead of resetting every vehicle to
``default_reliability``: beliefs are carried forward with exponential
forgetting ``post = (1-λ)·prior + λ·observation``.  With the default
``forgetting=1.0`` the update degenerates to plain overwrite, preserving
the historical single-round semantics bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from repro.crowd.assignment import BipartiteAssignment
from repro.crowd.inference import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    KosResult,
    _decide,
    _edge_arrays,
    _initial_messages,
    _message_loop,
    _record_run,
)
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.util.rng import RngLike

__all__ = [
    "DEFAULT_DAMPING",
    "DEFAULT_SWEEP_FRACTION",
    "ReliabilityLedger",
    "StreamingKos",
]

#: Weight retained on the previous y-messages in an interim sweep.
DEFAULT_DAMPING = 0.5
#: Run one interim sweep per this fraction of the edge count arriving.
DEFAULT_SWEEP_FRACTION = 0.25

StreamState = Dict[str, Union[int, List[float]]]


class StreamingKos:
    """Incremental KOS consumer over one assignment graph.

    Labels are ingested per worker (the natural shape of a
    ``LabelSubmission``); slot lookup is vectorised through a lexsorted
    edge index and ``np.searchsorted`` rather than per-edge Python
    dictionaries.  Between arrivals the consumer keeps damped y-messages
    warm with occasional full-array sweeps — unfilled edges carry label
    0 and contribute nothing, so a sweep over a partial pool is the KOS
    update on the subgraph seen so far.

    ``finalize()`` must only be called once every edge has a label; it
    reruns the canonical batch loop (shared helpers, shared edge order)
    and returns a :class:`~repro.crowd.inference.KosResult` bit-identical
    to ``kos_inference`` on the same pool and seed.
    """

    def __init__(
        self,
        assignment: BipartiteAssignment,
        *,
        damping: float = DEFAULT_DAMPING,
        sweep_fraction: float = DEFAULT_SWEEP_FRACTION,
    ) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must lie in [0, 1), got {damping}")
        if not 0.0 < sweep_fraction <= 1.0:
            raise ValueError(
                f"sweep_fraction must lie in (0, 1], got {sweep_fraction}"
            )
        self.assignment = assignment
        self.damping = damping
        self.sweep_fraction = sweep_fraction
        self._task_idx, self._worker_idx = _edge_arrays(assignment)
        n_edges = len(assignment.edges)
        self._edge_labels: NDArray[np.float64] = np.zeros(n_edges)
        self._y: NDArray[np.float64] = np.ones(n_edges)
        self._n_filled = 0
        self._labels_since_sweep = 0
        self.sweeps_run = 0
        self.labels_ingested = 0
        # Lexsort groups slots by worker with tasks ascending inside each
        # group, so a submission's (worker, tasks) resolve to edge slots
        # via one searchsorted — no Python loop over edges.
        order = np.asarray(
            np.lexsort((self._task_idx, self._worker_idx)), dtype=int
        )
        self._slot_order: NDArray[np.int_] = order
        self._sorted_tasks: NDArray[np.int_] = self._task_idx[order]
        counts = np.bincount(self._worker_idx, minlength=assignment.n_workers)
        self._worker_offsets: NDArray[np.int_] = np.asarray(
            np.concatenate(([0], np.cumsum(counts))), dtype=int
        )

    @property
    def n_edges(self) -> int:
        """Total number of edges in the assignment graph."""
        return len(self._edge_labels)

    @property
    def n_filled(self) -> int:
        """Number of edges that have received a label so far."""
        return self._n_filled

    @property
    def complete(self) -> bool:
        """True once every assignment edge carries a label."""
        return self._n_filled == self.n_edges

    def _slots_for(
        self, worker_index: int, tasks: NDArray[np.int_]
    ) -> NDArray[np.int_]:
        """Edge-array slots for (worker_index, task) pairs; KeyError if absent."""
        lo = int(self._worker_offsets[worker_index])
        hi = int(self._worker_offsets[worker_index + 1])
        span = self._sorted_tasks[lo:hi]
        pos = np.searchsorted(span, tasks)
        bad = (pos >= hi - lo) | (span[np.minimum(pos, max(hi - lo - 1, 0))] != tasks)
        if np.any(bad):
            missing = tasks[bad][0]
            raise KeyError(
                f"task {int(missing)} is not assigned to worker {worker_index}"
            )
        return self._slot_order[lo + pos]

    def ingest(
        self,
        worker_index: int,
        task_indices: Sequence[int],
        labels: Sequence[int],
        *,
        recorder: Recorder = NULL_RECORDER,
    ) -> None:
        """Absorb one worker's labels for a batch of tasks.

        ``labels`` must be ±1; resubmitting an edge overwrites it (the
        pool matrix has the same last-write-wins semantics).  An interim
        damped sweep is triggered once ``sweep_fraction`` of the edge
        count has arrived since the previous sweep.
        """
        if not 0 <= worker_index < self.assignment.n_workers:
            raise ValueError(f"worker index {worker_index} out of range")
        tasks = np.asarray(task_indices, dtype=int)
        values = np.asarray(labels, dtype=float)
        if tasks.shape != values.shape or tasks.ndim != 1:
            raise ValueError("task_indices and labels must be equal-length 1-D")
        if tasks.size == 0:
            return
        if not np.all(np.abs(values) == 1.0):
            raise ValueError("labels must be ±1")
        slots = self._slots_for(worker_index, tasks)
        newly = int(np.count_nonzero(self._edge_labels[slots] == 0.0))
        self._edge_labels[slots] = values
        self._n_filled += newly
        self.labels_ingested += tasks.size
        self._labels_since_sweep += tasks.size
        recorder.count("crowd.stream.labels", tasks.size)
        if self._labels_since_sweep >= self.sweep_fraction * self.n_edges:
            self.sweep(recorder=recorder)

    def sweep(self, *, recorder: Recorder = NULL_RECORDER) -> None:
        """Run one damped message-passing sweep over the current pool.

        Unfilled edges have label 0, so they contribute nothing to the
        sums; the update is the exact KOS x/y step on the subgraph of
        filled edges.  The new direction is renormalised to the scale of
        the all-ones start and blended with the previous messages by
        ``damping`` to keep interim estimates stable between arrivals.
        """
        labels = self._edge_labels
        task_sums = np.zeros(self.assignment.n_tasks)
        np.add.at(task_sums, self._task_idx, labels * self._y)
        x_messages = task_sums[self._task_idx] - labels * self._y
        worker_sums = np.zeros(self.assignment.n_workers)
        np.add.at(worker_sums, self._worker_idx, labels * x_messages)
        new_y = worker_sums[self._worker_idx] - labels * x_messages
        norm = float(np.linalg.norm(new_y))
        if norm > 0:
            new_y = new_y * (np.sqrt(self.n_edges) / norm)
            self._y = self.damping * self._y + (1.0 - self.damping) * new_y
        self._labels_since_sweep = 0
        self.sweeps_run += 1
        recorder.count("crowd.stream.sweeps")

    def estimates(self) -> NDArray[np.int_]:
        """Interim task estimates ẑ = sign(Σ L·y) over labels seen so far.

        Tasks with no filled edges (or a zero weighted sum) report +1,
        matching the batch tie-breaking rule.
        """
        task_sums = np.zeros(self.assignment.n_tasks)
        np.add.at(task_sums, self._task_idx, self._edge_labels * self._y)
        return np.where(task_sums >= 0, 1, -1)

    def interim_reliability(self) -> NDArray[np.float64]:
        """Per-worker agreement with the interim estimates, filled edges only.

        Workers with no filled edges yet report the uninformative 0.5.
        This readout drives drift detection between round boundaries.
        """
        estimates = self.estimates()
        filled = self._edge_labels != 0.0
        matches = (
            (self._edge_labels == estimates[self._task_idx]) & filled
        ).astype(float)
        agreement = np.zeros(self.assignment.n_workers)
        counts = np.zeros(self.assignment.n_workers)
        np.add.at(agreement, self._worker_idx, matches)
        np.add.at(counts, self._worker_idx, filled.astype(float))
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, agreement / np.maximum(counts, 1), 0.5)

    def finalize(
        self,
        *,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = DEFAULT_TOLERANCE,
        random_init: bool = False,
        rng: RngLike = None,
        recorder: Recorder = NULL_RECORDER,
    ) -> KosResult:
        """Finalize the round: the canonical batch loop over the full pool.

        Requires every assignment edge to carry a label; raises
        ``ValueError`` otherwise (the batch path raises the same way on a
        zero edge label).  Runs the shared message-loop and decision
        helpers from :mod:`repro.crowd.inference` over this round's edge
        arrays, so the result is bit-identical to ``kos_inference`` on
        the completed label matrix with the same seed — including the
        ``max_iterations=0`` majority-vote fallback.
        """
        if max_iterations < 0:
            raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")
        if not self.complete:
            raise ValueError(
                f"cannot finalize: {self.n_edges - self._n_filled} assignment "
                "edges still carry no label"
            )
        with recorder.span("crowd.finalize"):
            y_messages = _initial_messages(
                self.n_edges, random_init=random_init, rng=rng
            )
            y_messages, iterations_run, converged = _message_loop(
                self._task_idx,
                self._worker_idx,
                self._edge_labels,
                self.assignment.n_tasks,
                self.assignment.n_workers,
                y_messages,
                max_iterations=max_iterations,
                tolerance=tolerance,
            )
            estimates, worker_scores, reliability = _decide(
                self._task_idx,
                self._worker_idx,
                self._edge_labels,
                self.assignment.n_tasks,
                self.assignment.n_workers,
                y_messages,
            )
        _record_run(
            recorder,
            iterations_run=iterations_run,
            converged=converged,
            n_tasks=self.assignment.n_tasks,
        )
        return KosResult(
            estimates=estimates,
            worker_scores=worker_scores,
            worker_reliability=reliability,
            iterations=iterations_run,
            converged=converged,
        )

    # -- persistence ---------------------------------------------------

    def state_dict(self) -> StreamState:
        """JSON-safe interim state (y-messages and sweep counters).

        Edge labels are *not* included: they are recoverable from the
        pool's label matrix (see :meth:`load_matrix`), and the durable
        journal already replays submissions.  Python's ``json`` module
        round-trips float64 exactly, so restoring this state preserves
        interim trajectories bit-for-bit.
        """
        return {
            "y": [float(v) for v in self._y],
            "labels_since_sweep": self._labels_since_sweep,
            "sweeps_run": self.sweeps_run,
            "labels_ingested": self.labels_ingested,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore interim state captured by :meth:`state_dict`."""
        y = np.asarray(state["y"], dtype=float)
        if y.shape != self._y.shape:
            raise ValueError(
                f"state carries {y.shape[0]} messages, graph has {self.n_edges}"
            )
        self._y = y
        self._labels_since_sweep = int(state["labels_since_sweep"])
        self.sweeps_run = int(state["sweeps_run"])
        self.labels_ingested = int(state["labels_ingested"])

    def load_matrix(self, labels: NDArray[np.int_]) -> None:
        """Reload edge labels from a pool label matrix (recovery path).

        Used when a durable server re-installs a round from a snapshot:
        the matrix is authoritative for which edges are filled.  Counters
        are reset to match; ``restore_state`` then overlays the exact
        journaled interim state when one was captured.
        """
        matrix = np.asarray(labels)
        expected = (self.assignment.n_tasks, self.assignment.n_workers)
        if matrix.shape != expected:
            raise ValueError(
                f"labels shape {matrix.shape} does not match assignment {expected}"
            )
        self._edge_labels = matrix[self._task_idx, self._worker_idx].astype(float)
        self._n_filled = int(np.count_nonzero(self._edge_labels))
        self.labels_ingested = self._n_filled
        self._labels_since_sweep = self._n_filled
        self._y = np.ones(self.n_edges)


class ReliabilityLedger:
    """Per-vehicle reliability beliefs carried across rounds.

    The posterior after observing a round's calibrated reliability is

        ``post = (1 - forgetting) · prior + forgetting · observation``

    with ``prior`` defaulting to ``default`` for unseen vehicles.  The
    belief is a sufficient statistic — snapshotting the mapping and
    replaying later observations reproduces the trajectory exactly — so
    durable servers can persist the ledger as a plain dict.

    ``forgetting=1.0`` (the default) reduces to overwrite-with-latest,
    which is bit-identical to the historical per-round reset behaviour:
    ``0.0·prior + 1.0·value == value`` in IEEE arithmetic.
    """

    def __init__(
        self,
        *,
        default: float = 0.75,
        forgetting: float = 1.0,
    ) -> None:
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting must lie in (0, 1], got {forgetting}")
        if not 0.0 <= default <= 1.0:
            raise ValueError(f"default must lie in [0, 1], got {default}")
        self.default = default
        self.forgetting = forgetting
        self.beliefs: Dict[str, float] = {}
        self.observations = 0

    def get(self, vehicle_id: str) -> float:
        """Current belief for a vehicle (the default prior if unseen)."""
        return self.beliefs.get(vehicle_id, self.default)

    def observe(self, vehicle_id: str, value: float) -> float:
        """Fold one round's calibrated reliability into the belief."""
        if self.forgetting == 1.0:
            post = float(value)
        else:
            prior = self.beliefs.get(vehicle_id, self.default)
            post = (1.0 - self.forgetting) * prior + self.forgetting * float(value)
        self.beliefs[vehicle_id] = post
        self.observations += 1
        return post

    def observe_many(
        self,
        items: Iterable[Tuple[str, float]],
        *,
        recorder: Recorder = NULL_RECORDER,
    ) -> int:
        """Fold a batch of (vehicle_id, reliability) observations.

        Returns the number of updates applied and emits the
        ``crowd.ledger.updates`` counter.
        """
        updated = 0
        for vehicle_id, value in items:
            self.observe(vehicle_id, value)
            updated += 1
        if updated:
            recorder.count("crowd.ledger.updates", updated)
        return updated

    def flagged(self, threshold: float) -> Dict[str, float]:
        """Vehicles whose belief has fallen below ``threshold``."""
        return {v: b for v, b in self.beliefs.items() if b < threshold}

    def __len__(self) -> int:
        return len(self.beliefs)

    def __contains__(self, vehicle_id: object) -> bool:
        return vehicle_id in self.beliefs
