"""AP distribution-pattern mapping tasks (§5.2, Fig. 4(a)).

A *mapping task* asks crowd-vehicles whether a particular distribution
pattern — a (road segment, set of grid-point AP locations) combination —
exists (+1) or not (−1).  The crowd-server bootstraps with randomly
generated patterns and extends the pool with patterns selected from
vehicles' own lookup results, which keeps the fraction of non-existent
patterns under control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

import numpy as np

from repro.geo.grid import Grid
from repro.util.rng import RngLike, ensure_rng

__all__ = ["MappingTask", "PatternTaskGenerator"]


@dataclass(frozen=True)
class MappingTask:
    """One pattern-verification task.

    ``pattern`` is the candidate AP placement as a frozenset of grid-point
    indices on the segment's grid; ``true_label`` (+1 exists / −1 not) is
    ground truth carried for simulation scoring only.
    """

    task_id: int
    segment_id: str
    pattern: FrozenSet[int]
    true_label: int

    def __post_init__(self) -> None:
        if self.true_label not in (-1, 1):
            raise ValueError(f"true_label must be ±1, got {self.true_label}")
        if not self.pattern:
            raise ValueError("a pattern must contain at least one grid point")


class PatternTaskGenerator:
    """Generates mapping-task pools with a controlled positive fraction.

    Parameters
    ----------
    grid:
        The segment grid patterns are defined on.
    segment_id:
        Road-segment identifier stamped onto the tasks.
    """

    def __init__(self, grid: Grid, segment_id: str = "segment-0") -> None:
        self.grid = grid
        self.segment_id = segment_id

    def true_pattern(self, ap_grid_indices: Sequence[int]) -> FrozenSet[int]:
        """Canonical pattern for a ground-truth AP placement."""
        for index in ap_grid_indices:
            if not 0 <= index < self.grid.n_points:
                raise IndexError(f"grid index {index} out of range")
        return frozenset(int(i) for i in ap_grid_indices)

    def perturbed_pattern(
        self,
        base: FrozenSet[int],
        rng: RngLike = None,
        *,
        moves: int = 1,
    ) -> FrozenSet[int]:
        """A non-existent variant: move ``moves`` APs to neighbouring cells."""
        generator = ensure_rng(rng)
        pattern = set(base)
        movable = list(pattern)
        generator.shuffle(movable)
        for index in movable[:moves]:
            neighbors = [
                n for n in self.grid.neighbors(index, radius=2) if n not in pattern
            ]
            if not neighbors:
                continue
            pattern.discard(index)
            pattern.add(int(generator.choice(neighbors)))
        return frozenset(pattern)

    def generate_pool(
        self,
        true_placement: Sequence[int],
        n_tasks: int,
        *,
        positive_fraction: float = 0.5,
        rng: RngLike = None,
    ) -> List[MappingTask]:
        """Build a pool of ``n_tasks`` tasks around one true placement.

        Positive tasks repeat the true pattern (each is an independent
        verification request); negative tasks are perturbations of it,
        which is how the server avoids "generating too many non-existent
        AP distribution patterns".
        """
        if n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
        if not 0.0 < positive_fraction < 1.0:
            raise ValueError(
                f"positive_fraction must be in (0, 1), got {positive_fraction}"
            )
        generator = ensure_rng(rng)
        base = self.true_pattern(true_placement)
        n_positive = int(round(positive_fraction * n_tasks))
        n_positive = min(max(n_positive, 1), n_tasks - 1)
        tasks: List[MappingTask] = []
        for task_id in range(n_positive):
            tasks.append(
                MappingTask(
                    task_id=task_id,
                    segment_id=self.segment_id,
                    pattern=base,
                    true_label=1,
                )
            )
        for task_id in range(n_positive, n_tasks):
            pattern = self.perturbed_pattern(base, rng=generator)
            while pattern == base:
                pattern = self.perturbed_pattern(base, rng=generator, moves=2)
            tasks.append(
                MappingTask(
                    task_id=task_id,
                    segment_id=self.segment_id,
                    pattern=pattern,
                    true_label=-1,
                )
            )
        return tasks

    @staticmethod
    def labels_of(tasks: Sequence[MappingTask]) -> np.ndarray:
        """Ground-truth ±1 vector of a task pool, in task order."""
        return np.array([t.true_label for t in tasks], dtype=int)
