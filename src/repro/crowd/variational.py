"""EM / variational label aggregation with a Beta reliability prior.

The paper models crowd-vehicle reliabilities as draws from a prior
``p(q_j | λ)`` and cites variational inference for crowdsourcing (Liu,
Peng & Ihler) alongside the KOS message passing it adopts.  This module
implements that alternative: the one-coin Dawid–Skene model solved by
EM, which is the mean-field variational solution under a Beta(α, β)
prior on each q_j.

* **E-step** — posterior of each true label given current reliabilities:
  ``p(z_i = +1 | L, q) ∝ Π_{j∈M_i} q_j^{1[L_ij=+1]} (1−q_j)^{1[L_ij=−1]}``
  (and symmetrically for −1).
* **M-step** — MAP reliability update with the Beta pseudo-counts:
  ``q_j = (α − 1 + Σ_i E[1[L_ij = z_i]]) / (α + β − 2 + ν_j)``.

The 0-th E-step with uniform reliabilities reduces to majority voting,
mirroring KOS's 0-th iteration; tests assert both reductions.

The ±1 vote-indicator matrices are hoisted out of the EM loop: both
steps consume the same two (N×M) float matrices, so they are built once
per call instead of twice per iteration (they previously dominated the
per-iteration cost at scale; see BENCH_crowd.json for the EM-vs-KOS
throughput comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.crowd.assignment import BipartiteAssignment

__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "EmResult",
    "em_inference",
]

DEFAULT_MAX_ITERATIONS = 100
DEFAULT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class EmResult:
    """Output of the EM aggregation."""

    estimates: NDArray[np.int_]               # (n_tasks,) ±1
    posterior_positive: NDArray[np.float64]   # (n_tasks,) p(z_i = +1)
    worker_reliability: NDArray[np.float64]   # (n_workers,) MAP q̂_j
    iterations: int
    converged: bool


def em_inference(
    labels: NDArray[np.int_],
    assignment: BipartiteAssignment,
    *,
    alpha: float = 2.0,
    beta: float = 1.0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
) -> EmResult:
    """One-coin Dawid–Skene EM with a Beta(α, β) reliability prior.

    Parameters
    ----------
    labels:
        (n_tasks, n_workers) matrix over {0, ±1}; zeros are non-edges.
    alpha, beta:
        Beta prior pseudo-counts.  The default Beta(2, 1) encodes the
        §5.1 requirement E[q] > 1/2 (prior mean 2/3) and keeps q̂ away
        from the degenerate 0/1 endpoints.

    Returns
    -------
    EmResult
        Hard label estimates (ties to +1), soft posteriors, MAP
        reliabilities, and convergence information.
    """
    labels = np.asarray(labels)
    if labels.shape != (assignment.n_tasks, assignment.n_workers):
        raise ValueError(
            f"labels shape {labels.shape} does not match assignment "
            f"({assignment.n_tasks}, {assignment.n_workers})"
        )
    if alpha <= 0 or beta <= 0:
        raise ValueError(f"alpha and beta must be > 0, got {alpha}/{beta}")
    if max_iterations < 0:
        raise ValueError(f"max_iterations must be >= 0, got {max_iterations}")

    edge_mask = labels != 0
    worker_degrees = edge_mask.sum(axis=0).astype(float)
    # Hoisted vote indicators: both EM steps consume these, and they are
    # invariant across iterations.  Cast to float once so every matmul
    # skips the implicit bool→float64 promotion (numerically identical).
    positive_votes = ((labels == 1) & edge_mask).astype(float)
    negative_votes = ((labels == -1) & edge_mask).astype(float)

    reliabilities = np.full(assignment.n_workers, 0.75)
    posterior = _e_step(positive_votes, negative_votes, reliabilities)

    converged = False
    iterations_run = 0
    for iteration in range(max_iterations):
        iterations_run = iteration + 1
        reliabilities = _m_step(
            positive_votes, negative_votes, posterior, worker_degrees, alpha, beta
        )
        new_posterior = _e_step(positive_votes, negative_votes, reliabilities)
        movement = float(np.max(np.abs(new_posterior - posterior)))
        posterior = new_posterior
        if movement < tolerance:
            converged = True
            break

    estimates = np.where(posterior >= 0.5, 1, -1)
    return EmResult(
        estimates=estimates,
        posterior_positive=posterior,
        worker_reliability=reliabilities,
        iterations=iterations_run,
        converged=converged,
    )


def _e_step(
    positive_votes: NDArray[np.float64],
    negative_votes: NDArray[np.float64],
    reliabilities: NDArray[np.float64],
) -> NDArray[np.float64]:
    """p(z_i = +1) for every task under current reliabilities."""
    q = np.clip(reliabilities, 1e-9, 1.0 - 1e-9)
    log_q = np.log(q)
    log_not_q = np.log(1.0 - q)
    # If z=+1: a +1 label contributes log q_j, a −1 label log(1−q_j).
    log_like_pos = positive_votes @ log_q + negative_votes @ log_not_q
    log_like_neg = positive_votes @ log_not_q + negative_votes @ log_q
    shift = np.maximum(log_like_pos, log_like_neg)
    weight_pos = np.exp(log_like_pos - shift)
    weight_neg = np.exp(log_like_neg - shift)
    result: NDArray[np.float64] = weight_pos / (weight_pos + weight_neg)
    return result


def _m_step(
    positive_votes: NDArray[np.float64],
    negative_votes: NDArray[np.float64],
    posterior: NDArray[np.float64],
    worker_degrees: NDArray[np.float64],
    alpha: float,
    beta: float,
) -> NDArray[np.float64]:
    """MAP reliability per worker given soft labels."""
    # Expected number of correct answers per worker:
    # +1 labels are correct with probability p(z=+1), −1 with p(z=−1).
    expected_correct = (
        posterior @ positive_votes + (1.0 - posterior) @ negative_votes
    )
    numerator = expected_correct + (alpha - 1.0)
    denominator = worker_degrees + (alpha + beta - 2.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        q = np.where(denominator > 0, numerator / denominator, 0.5)
    clipped: NDArray[np.float64] = np.clip(q, 0.0, 1.0)
    return clipped
