"""Crowd-vehicle reliability models (§5.1).

Each crowd-vehicle j has a reliability ``q_j`` — its probability of
labeling a task correctly.  Reliabilities are drawn i.i.d. from a prior;
the canonical one is the *spammer–hammer* prior, where a vehicle is a
hammer (``q = 1``) with some probability and a spammer (``q = 1/2``,
answering at random) otherwise.  To keep spammers from overwhelming the
system the prior must satisfy ``E[q] > 1/2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.util.rng import RngLike, ensure_rng

__all__ = ["Worker", "SpammerHammerPrior", "draw_workers", "reliabilities"]


@dataclass(frozen=True)
class Worker:
    """A crowd-vehicle with its (ground-truth) reliability."""

    worker_id: int
    reliability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(
                f"reliability must be in [0, 1], got {self.reliability}"
            )

    @property
    def is_spammer(self) -> bool:
        """A spammer answers uniformly at random (q within noise of 1/2)."""
        return abs(self.reliability - 0.5) < 1e-9


@dataclass(frozen=True)
class SpammerHammerPrior:
    """The discrete spammer–hammer prior.

    Parameters
    ----------
    hammer_fraction:
        Probability that a drawn vehicle is a hammer.
    hammer_reliability / spammer_reliability:
        ``q`` values of the two classes (paper: 1.0 and 0.5).
    """

    hammer_fraction: float = 0.5
    hammer_reliability: float = 1.0
    spammer_reliability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.hammer_fraction <= 1.0:
            raise ValueError(
                f"hammer_fraction must be in [0, 1], got {self.hammer_fraction}"
            )
        for name, value in (
            ("hammer_reliability", self.hammer_reliability),
            ("spammer_reliability", self.spammer_reliability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.mean_reliability <= 0.5:
            raise ValueError(
                "the prior must satisfy E[q] > 1/2 or spammers overwhelm the "
                f"system; got E[q] = {self.mean_reliability}"
            )

    @property
    def mean_reliability(self) -> float:
        """E[q] under this prior."""
        return (
            self.hammer_fraction * self.hammer_reliability
            + (1.0 - self.hammer_fraction) * self.spammer_reliability
        )

    @property
    def collective_quality(self) -> float:
        """The KOS collective-quality parameter μ = E[(2q − 1)²].

        Error rates in Fig. 7 decay as exp(−ℓ·μ·(...)/const); exposing μ
        lets tests assert the scaling.
        """
        hammer_term = (2.0 * self.hammer_reliability - 1.0) ** 2
        spammer_term = (2.0 * self.spammer_reliability - 1.0) ** 2
        return (
            self.hammer_fraction * hammer_term
            + (1.0 - self.hammer_fraction) * spammer_term
        )

    def sample(self, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` reliabilities i.i.d. from the prior."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        generator = ensure_rng(rng)
        is_hammer = generator.random(count) < self.hammer_fraction
        return np.where(
            is_hammer, self.hammer_reliability, self.spammer_reliability
        )


def draw_workers(
    count: int,
    prior: SpammerHammerPrior = None,
    rng: RngLike = None,
) -> List[Worker]:
    """Instantiate ``count`` workers with reliabilities from ``prior``."""
    prior = prior if prior is not None else SpammerHammerPrior()
    reliabilities = prior.sample(count, rng=rng)
    return [
        Worker(worker_id=j, reliability=float(q))
        for j, q in enumerate(reliabilities)
    ]


def reliabilities(workers: Sequence[Worker]) -> np.ndarray:
    """Vector of ground-truth reliabilities, in worker order."""
    return np.array([w.reliability for w in workers], dtype=float)
