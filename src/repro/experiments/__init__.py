"""Reproduction harnesses for every figure in the paper's evaluation (§6).

One module per artifact; each exposes a ``run_*`` function that executes
the experiment and returns a :class:`repro.util.ResultTable` whose rows
mirror what the paper plots.  The ``benchmarks/`` directory wraps these in
pytest-benchmark entry points, and ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.

* :mod:`fig5_trajectory` — UCI trajectory snapshots (online CS accuracy
  at 60/120/180 RSS readings).
* :mod:`fig6_lattice` — lattice-size sweep vs localization/counting error.
* :mod:`fig7_crowdsourcing` — bit-wise error of KOS vs MV vs rank-order
  vs oracle over (ℓ,γ)-regular assignments.
* :mod:`fig8_comparison` — counting/localization error vs sparsity level
  k and vs number of measurements M, against LGMM/MDS/Skyhook.
* :mod:`fig9_testbed` — the Open-Mesh testbed reproduction at three
  driving speeds, single-vehicle vs crowdsourced vs Skyhook.
* :mod:`fig10_vanlan` — BRR vs AllAP connectivity and session CDFs.
* :mod:`fig11_transfer` — 10 KB TCP transfer performance under injected
  counting/localization errors.
* :mod:`ablations` — solver / window / credit-threshold / combination
  pruning / refinement / online-vs-offline ablations for the design
  decisions in DESIGN.md.
* :mod:`robustness` — GPS-noise and correlated-shadowing stress sweeps.
* :mod:`city_scale` — fleet-size sweep over a multi-segment district.
"""

from repro.experiments.fig5_trajectory import run_fig5
from repro.experiments.fig6_lattice import run_fig6
from repro.experiments.fig7_crowdsourcing import run_fig7_workers, run_fig7_tasks
from repro.experiments.fig8_comparison import (
    run_fig8_measurements,
    run_fig8_sparsity,
)
from repro.experiments.fig9_testbed import run_fig9
from repro.experiments.fig10_vanlan import run_fig10
from repro.experiments.fig11_transfer import run_fig11
from repro.experiments.ablations import (
    run_ablation_combinations,
    run_ablation_credit,
    run_ablation_online_vs_offline,
    run_ablation_refine,
    run_ablation_solvers,
    run_ablation_window,
)
from repro.experiments.city_scale import run_city_scale
from repro.experiments.robustness import (
    run_correlated_shadowing_sweep,
    run_gps_noise_sweep,
)

__all__ = [
    "run_fig5",
    "run_fig6",
    "run_fig7_workers",
    "run_fig7_tasks",
    "run_fig8_sparsity",
    "run_fig8_measurements",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_ablation_solvers",
    "run_ablation_window",
    "run_ablation_credit",
    "run_ablation_combinations",
    "run_ablation_refine",
    "run_ablation_online_vs_offline",
    "run_gps_noise_sweep",
    "run_correlated_shadowing_sweep",
    "run_city_scale",
]
