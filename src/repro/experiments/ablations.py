"""Ablation studies for the design decisions called out in DESIGN.md.

Each ablation perturbs exactly one pipeline choice on a common scenario
(the UCI campus drive) and reports accuracy — and, where relevant, cost:

* :func:`run_ablation_solvers` — matched filter vs FISTA vs OMP vs LP
  basis pursuit as the CS recovery step.
* :func:`run_ablation_window` — sliding-window size/step (§4.3.2).
* :func:`run_ablation_credit` — the spurious-estimate credit threshold
  (§4.3.6; paper fixes it at 1).
* :func:`run_ablation_combinations` — exhaustive set-partition
  enumeration vs clustering-pruned candidates (Proposition 2 trade-off).
* :func:`run_ablation_refine` — grid-centroid only vs continuous ML
  refinement of the winning hypothesis.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.experiments.common import drive_and_collect
from repro.metrics.errors import counting_error, mean_distance_error
from repro.sim.scenarios import uci_campus
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = [
    "run_ablation_solvers",
    "run_ablation_window",
    "run_ablation_credit",
    "run_ablation_combinations",
    "run_ablation_online_vs_offline",
    "run_ablation_refine",
]


def _base_config() -> EngineConfig:
    return EngineConfig(
        window=WindowConfig(size=60, step=10),
        lattice_length_m=8.0,
        communication_radius_m=100.0,
        snr_db=30.0,
    )


def _evaluate(config: EngineConfig, *, n_trials: int, seed: int, n_readings=180):
    """Mean (count error, distance error, wall seconds) over trials."""
    scenario = uci_campus(snap_aps_to_lattice=True)
    truth = scenario.true_ap_positions
    count_err = dist_err = elapsed = 0.0
    for trial_rng in spawn_children(seed, n_trials):
        trace = drive_and_collect(
            scenario, n_samples=n_readings, speed_mph=25.0, rng=trial_rng
        )
        engine = OnlineCsEngine(
            scenario.world.channel, config, grid=scenario.grid, rng=trial_rng
        )
        start = time.perf_counter()
        result = engine.process_trace(trace)
        elapsed += time.perf_counter() - start
        count_err += counting_error([len(truth)], [result.n_aps])
        # Cutoff as in the figure harnesses: pairs beyond 25 m are
        # counting mistakes, reported by the counting column.
        dist_err += mean_distance_error(
            truth, result.locations, max_match_distance_m=25.0
        )
    return count_err / n_trials, dist_err / n_trials, elapsed / n_trials


def run_ablation_solvers(
    solvers=("matched", "fista", "omp", "basis_pursuit"),
    *,
    n_trials: int = 2,
    seed: int = 3001,
) -> ResultTable:
    """Accuracy and cost of each CS recovery solver."""
    table = ResultTable(
        ["solver", "counting_error", "mean_error_m", "seconds"],
        title="Ablation - l1 solver choice (UCI, 120 readings)",
    )
    for solver in solvers:
        config = replace(_base_config(), solver=solver)
        # 120 readings keeps the LP basis pursuit's run under two minutes
        # while comparing every solver on identical input.
        count, dist, secs = _evaluate(
            config, n_trials=n_trials, seed=seed, n_readings=120
        )
        table.add_row(
            solver=solver,
            counting_error=count,
            mean_error_m=dist,
            seconds=secs,
        )
    return table


def run_ablation_window(
    sizes=(30, 60, 90),
    steps=(5, 10, 20),
    *,
    n_trials: int = 1,
    seed: int = 3002,
) -> ResultTable:
    """Sliding-window size/step sweep (paper default 60/10)."""
    table = ResultTable(
        ["window_size", "window_step", "counting_error", "mean_error_m", "seconds"],
        title="Ablation - sliding window size/step",
    )
    for size in sizes:
        for step in steps:
            if step > size:
                continue
            config = replace(
                _base_config(), window=WindowConfig(size=size, step=step)
            )
            count, dist, secs = _evaluate(
                config, n_trials=n_trials, seed=seed
            )
            table.add_row(
                window_size=size,
                window_step=step,
                counting_error=count,
                mean_error_m=dist,
                seconds=secs,
            )
    return table


def run_ablation_credit(
    thresholds=(0.0, 1.0, 2.0, 3.0),
    *,
    n_trials: int = 2,
    seed: int = 3003,
) -> ResultTable:
    """Credit filter threshold sweep (§4.3.6; paper sets 1)."""
    table = ResultTable(
        ["credit_threshold", "counting_error", "mean_error_m"],
        title="Ablation - spurious-estimate credit threshold",
    )
    for threshold in thresholds:
        config = replace(_base_config(), credit_filter_threshold=threshold)
        count, dist, _ = _evaluate(config, n_trials=n_trials, seed=seed)
        table.add_row(
            credit_threshold=threshold,
            counting_error=count,
            mean_error_m=dist,
        )
    return table


def run_ablation_combinations(
    *,
    n_trials: int = 2,
    seed: int = 3004,
) -> ResultTable:
    """Exhaustive vs clustering-pruned (AP, RSS) combination search.

    ``max_exhaustive_items=0`` forces clustering-pruned candidates even
    for tiny windows; the default (7) enumerates all set partitions of
    the per-round subsample.  Proposition 2 is the reason the exhaustive
    mode must stay capped.
    """
    table = ResultTable(
        ["mode", "counting_error", "mean_error_m", "seconds"],
        title="Ablation - combination enumeration strategy",
    )
    for mode, cutoff in (("exhaustive<=7", 7), ("clustered", 1)):
        config = replace(_base_config(), max_exhaustive_items=cutoff)
        count, dist, secs = _evaluate(config, n_trials=n_trials, seed=seed)
        table.add_row(
            mode=mode, counting_error=count, mean_error_m=dist, seconds=secs
        )
    return table


def run_ablation_online_vs_offline(
    *,
    n_trials: int = 2,
    seed: int = 3006,
) -> ResultTable:
    """Sliding-window online CS vs one-shot batch estimation (§4.3).

    The paper's motivation for the online scheme: the batch formulation
    must prune its combination search hard (Proposition 2) and loses the
    per-window locality, while the online pipeline accumulates evidence
    across overlapping windows.
    """
    from repro.core.offline import OfflineConfig, OfflineCsEstimator

    table = ResultTable(
        ["mode", "counting_error", "mean_error_m", "seconds"],
        title="Ablation - online sliding window vs offline batch CS",
    )
    scenario = uci_campus(snap_aps_to_lattice=True)
    truth = scenario.true_ap_positions

    sums = {"online": [0.0, 0.0, 0.0], "offline": [0.0, 0.0, 0.0]}
    for trial_rng in spawn_children(seed, n_trials):
        trace = drive_and_collect(
            scenario, n_samples=180, speed_mph=25.0, rng=trial_rng
        )
        online_engine = OnlineCsEngine(
            scenario.world.channel, _base_config(), grid=scenario.grid,
            rng=trial_rng,
        )
        start = time.perf_counter()
        online = online_engine.process_trace(trace)
        online_secs = time.perf_counter() - start
        offline_estimator = OfflineCsEstimator(
            scenario.world.channel,
            OfflineConfig(
                communication_radius_m=100.0,
                max_aps=10,
                readings_budget=12,
                snr_db=30.0,
            ),
            grid=scenario.grid,
            rng=trial_rng,
        )
        start = time.perf_counter()
        offline = offline_estimator.estimate(trace)
        offline_secs = time.perf_counter() - start

        for mode, locations, secs in (
            ("online", online.locations, online_secs),
            ("offline", offline, offline_secs),
        ):
            sums[mode][0] += counting_error([len(truth)], [len(locations)])
            sums[mode][1] += mean_distance_error(
                truth, locations, max_match_distance_m=25.0
            )
            sums[mode][2] += secs
    for mode, (count, dist, secs) in sums.items():
        table.add_row(
            mode=mode,
            counting_error=count / n_trials,
            mean_error_m=dist / n_trials,
            seconds=secs / n_trials,
        )
    return table


def run_ablation_refine(
    *,
    n_trials: int = 2,
    seed: int = 3005,
) -> ResultTable:
    """Continuous ML refinement on/off (grid-quantization compensation)."""
    table = ResultTable(
        ["refine", "counting_error", "mean_error_m"],
        title="Ablation - continuous location refinement",
    )
    for refine in (True, False):
        config = replace(_base_config(), refine=refine)
        count, dist, _ = _evaluate(config, n_trials=n_trials, seed=seed)
        table.add_row(refine=refine, counting_error=count, mean_error_m=dist)
    return table
