"""City-scale campaign sweep — fleet size vs map quality and cost.

An extension experiment: a four-segment district mapped by fleets of
growing size through :class:`repro.middleware.FleetCampaign`.  Larger
fleets add redundant observations, so matched localization error should
hold or improve and coverage (distinct true APs detected) should grow,
while wall time scales roughly linearly with the fleet.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.core.engine import EngineConfig
from repro.core.window import WindowConfig
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.metrics.errors import match_estimates, mean_distance_error
from repro.middleware.fleet import FleetCampaign
from repro.middleware.segments import SegmentPlanner
from repro.radio.pathloss import PathLossModel
from repro.sim.world import AccessPoint, World
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = ["DETECTION_RADIUS_M", "run_city_scale"]

#: Detection radius: a true AP counts as found if some map entry is
#: within this distance.
DETECTION_RADIUS_M = 25.0


def _district() -> World:
    sites = [
        ("ap-nw", Point(80, 230)), ("ap-ne", Point(320, 220)),
        ("ap-sw", Point(70, 60)), ("ap-se", Point(330, 80)),
        ("ap-mid", Point(200, 150)),
    ]
    return World(
        access_points=[
            AccessPoint(ap_id=name, position=p, radio_range_m=70.0)
            for name, p in sites
        ],
        channel=PathLossModel(shadowing_sigma_db=0.5),
    )


def _routes(n_vehicles: int) -> List[Trajectory]:
    """Staggered rectangular loops covering the district.

    The first six are hand-placed; beyond that the loops continue
    procedurally (deterministic staggered insets of the district), so
    arbitrarily large fleets are feasible — the batch offline pipeline
    makes such fleets practical to aggregate.
    """
    if n_vehicles < 0:
        raise ValueError(f"n_vehicles must be >= 0, got {n_vehicles}")
    base = [
        Trajectory.rectangle(20, 160, 380, 280),
        Trajectory.rectangle(20, 20, 380, 140),
        Trajectory.rectangle(120, 80, 300, 220),
        Trajectory.rectangle(40, 40, 360, 260),
        Trajectory.rectangle(100, 30, 340, 170),
        Trajectory.rectangle(60, 130, 300, 270),
    ]
    routes = base[:n_vehicles]
    for extra in range(len(base), n_vehicles):
        # Cycle insets of the full district, shifting a little each lap
        # so redundant vehicles still cover slightly different streets.
        step = extra - len(base)
        inset = 15.0 + 12.0 * (step % 5)
        shift_x = 6.0 * ((step // 5) % 4)
        shift_y = 4.0 * ((step // 20) % 4)
        routes.append(
            Trajectory.rectangle(
                20 + inset + shift_x,
                20 + inset + shift_y,
                380 - inset + shift_x,
                280 - inset + shift_y,
            )
        )
    return routes


def _detected(truth: Sequence[Point], city: Sequence[Point]) -> int:
    matches = match_estimates(list(truth), list(city))
    return sum(1 for _, _, d in matches if d <= DETECTION_RADIUS_M)


def run_city_scale(
    fleet_sizes: Sequence[int] = (2, 4, 6),
    *,
    n_samples: int = 150,
    n_trials: int = 1,
    seed: int = 5001,
    n_workers: Optional[int] = None,
    n_shards: int = 1,
    transport: str = "inprocess",
    durable_dir: Optional[Union[str, Path]] = None,
    wal_format: Optional[str] = None,
) -> ResultTable:
    """Sweep fleet size; report detections, matched error, wall time.

    ``n_workers`` fans each campaign's sensing and offline rounds over a
    process pool; ``n_shards`` spreads the server state over that many
    segment shards behind one endpoint (``docs/RUNTIME.md``).  Results
    are bit-identical for any worker or shard count — and for any
    ``transport`` (``"tcp"`` runs every campaign over a loopback
    socket; ``"serving"`` runs each shard as its own worker process,
    see docs/SERVING.md, with ``wal_format`` selecting the workers' WAL
    format).  ``durable_dir`` journals each campaign's server under its
    own per-trial subdirectory, so any run of the sweep can be
    crash-recovered and audited after the fact.  Fleet sizes above six
    draw procedurally generated routes, so sweeps like ``(8, 16, 32)``
    are feasible.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    world = _district()
    truth = world.ap_positions()
    area = BoundingBox(0, 0, 400, 300)
    table = ResultTable(
        ["n_vehicles", "detected_aps", "map_entries", "matched_error_m", "seconds"],
        title="City-scale campaign: fleet size vs map quality",
    )
    config = EngineConfig(
        window=WindowConfig(size=24, step=8),
        readings_per_round=6,
        max_aps_per_round=3,
        communication_radius_m=70.0,
    )
    for n_vehicles in fleet_sizes:
        detected = entries = error = elapsed = 0.0
        for trial, trial_rng in enumerate(
            spawn_children(seed + n_vehicles, n_trials)
        ):
            planner = SegmentPlanner(area, n_rows=2, n_cols=2)
            campaign = FleetCampaign(world, planner, config)
            for index, route in enumerate(_routes(int(n_vehicles))):
                campaign.add_vehicle(
                    f"veh-{index}", route, n_samples=n_samples, speed_mph=15.0
                )
            # Each campaign journals into its own subdirectory: a durable
            # log belongs to exactly one server lifetime.
            trial_dir = (
                Path(durable_dir) / f"fleet-{int(n_vehicles)}-trial-{trial}"
                if durable_dir is not None
                else None
            )
            start = time.perf_counter()
            outcome = campaign.run(
                rng=trial_rng,
                n_workers=n_workers,
                n_shards=n_shards,
                transport=transport,
                durable_dir=trial_dir,
                wal_format=wal_format,
            )
            elapsed += time.perf_counter() - start
            city = outcome.city_map(dedup_radius_m=20.0)
            detected += _detected(truth, city)
            entries += len(city)
            error += mean_distance_error(
                truth, city, max_match_distance_m=DETECTION_RADIUS_M
            )
        table.add_row(
            n_vehicles=int(n_vehicles),
            detected_aps=detected / n_trials,
            map_entries=entries / n_trials,
            matched_error_m=error / n_trials,
            seconds=elapsed / n_trials,
        )
    return table
