"""Shared plumbing for the figure-reproduction harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.stream import StreamingCsEngine
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.mobility.models import PathFollower
from repro.mobility.units import mph_to_mps
from repro.obs.recorder import NULL_RECORDER, Recorder, ensure_recorder
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement, RssTrace
from repro.sim.collector import RssCollector
from repro.sim.scenarios import Scenario
from repro.util.parallel import run_recorded_tasks
from repro.util.rng import RngLike, ensure_rng, spawn_children

__all__ = [
    "drive_and_collect",
    "serpentine_survey_points",
    "survey_and_collect",
    "crowdwifi_estimate",
    "percent",
]


@dataclass(frozen=True)
class _TraceJob:
    """One vehicle-trace's online CS run, picklable for the worker pool."""

    channel: PathLossModel
    config: EngineConfig
    grid: Optional[Grid]
    trace: Tuple[RssMeasurement, ...]
    rng: np.random.Generator
    stream: bool = False


def _estimate_trace(
    job: _TraceJob, recorder: Recorder = NULL_RECORDER
) -> List[Point]:
    """Run one engine over one trace (module-level for pickling).

    ``stream=True`` routes through :class:`StreamingCsEngine` directly,
    feeding readings one at a time as a vehicle would observe them; the
    batch wrapper and the streaming route are bit-identical (they share
    one round pipeline), so the flag exercises the incremental consumer
    without changing any figure.
    """
    if job.stream:
        stream_engine = StreamingCsEngine(
            job.channel,
            job.config,
            grid=job.grid,
            rng=job.rng,
            recorder=recorder,
        )
        for measurement in job.trace:
            stream_engine.push(measurement)
        return stream_engine.finalize().locations
    engine = OnlineCsEngine(
        job.channel, job.config, grid=job.grid, rng=job.rng, recorder=recorder
    )
    return engine.process_trace(list(job.trace)).locations


def drive_and_collect(
    scenario: Scenario,
    *,
    n_samples: int,
    speed_mph: float = 25.0,
    start_offset_m: float = 0.0,
    rng: RngLike = None,
) -> RssTrace:
    """One crowd-vehicle's drive along the scenario route."""
    collector = RssCollector(scenario.world, scenario.collector_config, rng=rng)
    follower = PathFollower(
        scenario.route, mph_to_mps(speed_mph), start_offset_m=start_offset_m
    )
    return collector.collect_along(follower, n_samples=n_samples)


def serpentine_survey_points(
    scenario: Scenario,
    n_points: int,
    *,
    band_height_m: float = 40.0,
    rng: RngLike = None,
) -> List[Point]:
    """Random survey reference points ordered like a sweeping drive.

    The Fig. 8 experiments place M reference points "over the grid"
    rather than along a route.  To preserve the sliding window's spatial
    locality we order the random points in a serpentine raster: bottom
    band left-to-right, next band right-to-left, and so on — exactly the
    coverage pattern of a war-driving sweep.
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if band_height_m <= 0:
        raise ValueError(f"band_height_m must be > 0, got {band_height_m}")
    generator = ensure_rng(rng)
    area = scenario.area
    xs = generator.uniform(area.min_x, area.max_x, size=n_points)
    ys = generator.uniform(area.min_y, area.max_y, size=n_points)
    bands = ((ys - area.min_y) // band_height_m).astype(int)
    order = sorted(
        range(n_points),
        key=lambda i: (
            bands[i],
            xs[i] if bands[i] % 2 == 0 else -xs[i],
        ),
    )
    return [Point(float(xs[i]), float(ys[i])) for i in order]


def survey_and_collect(
    scenario: Scenario,
    n_points: int,
    *,
    rng: RngLike = None,
) -> RssTrace:
    """Collect one reading at each serpentine survey point."""
    generator = ensure_rng(rng)
    points = serpentine_survey_points(scenario, n_points, rng=generator)
    collector = RssCollector(
        scenario.world, scenario.collector_config, rng=generator
    )
    return collector.collect_at_points(points)


def crowdwifi_estimate(
    scenario: Scenario,
    traces: Sequence[RssTrace],
    config: EngineConfig,
    *,
    reliabilities: Optional[Sequence[float]] = None,
    fusion_radius_m: Optional[float] = None,
    min_support: int = 1,
    rng: RngLike = None,
    n_workers: Optional[int] = None,
    telemetry: Optional[Recorder] = None,
    stream: bool = False,
) -> List[Point]:
    """Full CrowdWiFi pipeline: online CS per vehicle + weighted fusion.

    Each trace is processed by its own engine (a crowd-vehicle); the
    per-vehicle coarse maps are fused with reliability-weighted centroid
    processing (§5.4).  With a single trace this reduces to plain online
    CS.

    ``n_workers`` fans the per-trace engines over a process pool.  Each
    trace gets its own child generator, spawned from ``rng`` before any
    engine runs, so serial and parallel executions of the same seed are
    bit-identical.

    ``telemetry`` attaches a :class:`~repro.obs.recorder.Recorder`; the
    per-trace engine telemetry is merged back into it in trace order
    regardless of ``n_workers``, so serial and parallel aggregates are
    identical.  ``None`` keeps every hook a no-op.

    ``stream`` feeds each trace through the incremental
    :class:`~repro.core.stream.StreamingCsEngine` one reading at a time
    instead of the batch wrapper; results are bit-identical.
    """
    recorder = ensure_recorder(telemetry)
    generator = ensure_rng(rng)
    children = spawn_children(generator, len(traces))
    jobs = [
        _TraceJob(
            channel=scenario.world.channel,
            config=config,
            grid=scenario.grid,
            trace=tuple(trace),
            rng=child,
            stream=stream,
        )
        for trace, child in zip(traces, children)
    ]
    with recorder.span("estimate.traces"):
        location_lists = run_recorded_tasks(
            _estimate_trace, jobs, recorder=recorder, n_workers=n_workers
        )
    if len(location_lists) == 1:
        return location_lists[0]
    if reliabilities is None:
        reliabilities = [0.9] * len(location_lists)
    reports = [
        VehicleReport(
            vehicle_id=f"veh-{i}",
            ap_locations=tuple(locations),
            reliability=float(q),
        )
        for i, (locations, q) in enumerate(zip(location_lists, reliabilities))
    ]
    radius = (
        fusion_radius_m
        if fusion_radius_m is not None
        else 2.0 * config.lattice_length_m
    )
    with recorder.span("estimate.fusion"):
        fused = weighted_centroid_fusion(
            reports, alignment_radius_m=radius, min_support=min_support
        )
    recorder.count("estimate.aps.fused", len(fused))
    return [ap.location for ap in fused]


def percent(value: float) -> float:
    """Fractional error → the percentage the paper plots."""
    return 100.0 * value
