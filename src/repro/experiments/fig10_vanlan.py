"""Fig. 10 — AP lookup on VanLan traces and handoff connectivity.

The paper runs CrowdWiFi over 300 RSS readings subsampled from a
VanLan-style trace (11 APs, vans at 25 mph), then compares the BRR and
AllAP handoff policies on the same trace: AllAP's average localization
error is 2.0658 m, it suffers far fewer interruptions than BRR, and at
the median session length the probability of a longer uninterrupted
session is about seven times BRR's.

Beacon traces carry BSSIDs, so the lookup uses the identity-aware
per-AP positioning of :mod:`repro.handoff.lookup` (see its module
docstring); the blind online CS engine remains the tool for the
drive-by scenarios where no identities exist.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.handoff.connectivity import (
    analyze_sessions,
    connectivity_timeline,
    session_length_cdf,
)
from repro.handoff.lookup import identity_lookup
from repro.handoff.policies import AllApPolicy, BrrPolicy
from repro.handoff.vanlan import VanLanTrace, synthesize_vanlan
from repro.metrics.errors import mean_distance_error
from repro.util.rng import ensure_rng
from repro.util.tables import ResultTable

__all__ = [
    "CDF_LENGTHS",
    "MAP_MATCH_RADIUS_M",
    "lookup_vanlan_aps",
    "run_fig10",
]

CDF_LENGTHS = (5, 10, 30, 60, 120, 300)

#: Map entries farther than this from every real AP behave as phantoms.
MAP_MATCH_RADIUS_M = 25.0


def lookup_vanlan_aps(trace: VanLanTrace, *, n_readings: int = 300):
    """Locate the trace's APs from ``n_readings`` subsampled beacons."""
    readings = trace.rss_trace(limit=n_readings)
    return identity_lookup(trace.world.channel, readings)


def run_fig10(
    *,
    duration_s: float = 600.0,
    n_readings: int = 300,
    n_vans: int = 2,
    seed: int = 2021,
) -> Dict[str, object]:
    """Reproduce Fig. 10: lookup accuracy + BRR/AllAP session behaviour.

    The real VanLan dataset has *two* vans acting as crowd-vehicles; the
    lookup pools the (identity-tagged) beacons of all ``n_vans`` staggered
    drives, splitting the paper's 300-reading budget between them.  The
    handoff policies are then evaluated on the first van's trace using
    the pooled map.

    Returns a dict with the lookup summary table, the session CDF table,
    and the raw per-policy session statistics.
    """
    if n_vans < 1:
        raise ValueError(f"n_vans must be >= 1, got {n_vans}")
    generator = ensure_rng(seed)
    traces = [
        synthesize_vanlan(
            duration_s=duration_s,
            rng=generator,
            start_offset_m=1100.0 * index,
        )
        for index in range(n_vans)
    ]
    trace = traces[0]
    truth = trace.world.ap_positions()

    per_van = max(1, n_readings // n_vans)
    pooled = [
        reading
        for van_trace in traces
        for reading in van_trace.rss_trace(limit=per_van)
    ]
    located = identity_lookup(trace.world.channel, pooled)
    estimated_map: List = list(located.values())
    per_ap_errors = np.array(
        [
            trace.world.ap(ap_id).position.distance_to(estimate)
            for ap_id, estimate in located.items()
        ]
    )
    lookup_error = mean_distance_error(
        truth, estimated_map, max_match_distance_m=MAP_MATCH_RADIUS_M
    )

    ap_positions = {ap.ap_id: ap.position for ap in trace.world.access_points}
    policies = {
        "BRR": BrrPolicy(
            estimated_map=estimated_map,
            ap_positions=ap_positions,
            vicinity_radius_m=trace.config.radio_range_m,
            map_match_radius_m=MAP_MATCH_RADIUS_M,
        ),
        "AllAP": AllApPolicy(
            estimated_map=estimated_map,
            ap_positions=ap_positions,
            vicinity_radius_m=trace.config.radio_range_m,
            map_match_radius_m=MAP_MATCH_RADIUS_M,
        ),
    }

    summary = ResultTable(
        ["policy", "connected_s", "interruptions", "median_session_s"],
        title="Fig. 10 - BRR vs AllAP connectivity (VanLan synth)",
    )
    cdf_table = ResultTable(
        ["session_length_s", "BRR_cdf", "AllAP_cdf"],
        title="Fig. 10(c) - session-length CDF (% of connected time)",
    )
    stats = {}
    cdfs = {}
    for name, policy in policies.items():
        timeline = connectivity_timeline(trace, policy)
        session_stats = analyze_sessions(timeline)
        stats[name] = session_stats
        cdfs[name] = session_length_cdf(session_stats.sessions, CDF_LENGTHS)
        summary.add_row(
            policy=name,
            connected_s=session_stats.total_connected_s,
            interruptions=session_stats.interruptions,
            median_session_s=session_stats.median_session_s,
        )
    for index, length in enumerate(CDF_LENGTHS):
        cdf_table.add_row(
            session_length_s=length,
            BRR_cdf=cdfs["BRR"][index],
            AllAP_cdf=cdfs["AllAP"][index],
        )

    return {
        "lookup_error_m": lookup_error,
        "lookup_median_error_m": float(np.median(per_ap_errors)),
        "estimated_aps": len(estimated_map),
        "true_aps": len(truth),
        "summary": summary,
        "cdf": cdf_table,
        "stats": stats,
    }
