"""Fig. 11 — impact of lookup errors on TCP transfer performance.

User-vehicles transfer 10 KB files over TCP using the crowdsensed AP map;
the map is corrupted to exact counting / localization error levels
(0–300 %) and the median transfer time and transfers-per-session of BRR
and AllAP are measured.  Paper shape: with an accurate map AllAP
completes a transfer in ~0.61 s (≈ 50 % faster than BRR) and sustains
about twice BRR's throughput; both degrade gracefully as errors grow,
with AllAP staying ahead throughout.
"""

from __future__ import annotations

from typing import Dict

from repro.handoff.errors import corrupt_ap_map
from repro.handoff.policies import AllApPolicy, BrrPolicy
from repro.handoff.transfer import TransferConfig, run_transfers
from repro.handoff.vanlan import synthesize_vanlan
from repro.util.rng import ensure_rng
from repro.util.tables import ResultTable

__all__ = ["ERROR_LEVELS_PCT", "LATTICE_M", "MAP_MATCH_RADIUS_M", "run_fig11"]

ERROR_LEVELS_PCT = (0, 50, 100, 150, 200, 250, 300)
LATTICE_M = 10.0


#: Matches Fig. 10's policy configuration.
MAP_MATCH_RADIUS_M = 25.0


def _policy(cls, trace, estimated_map):
    ap_positions = {ap.ap_id: ap.position for ap in trace.world.access_points}
    return cls(
        estimated_map=estimated_map,
        ap_positions=ap_positions,
        vicinity_radius_m=trace.config.radio_range_m,
        map_match_radius_m=MAP_MATCH_RADIUS_M,
    )


def run_fig11(
    *,
    duration_s: float = 400.0,
    error_levels_pct=ERROR_LEVELS_PCT,
    seed: int = 2022,
) -> Dict[str, ResultTable]:
    """Reproduce Fig. 11(a)–(d).

    Returns four tables keyed ``time_vs_counting``, ``time_vs_localization``,
    ``throughput_vs_counting`` and ``throughput_vs_localization``.
    """
    generator = ensure_rng(seed)
    trace = synthesize_vanlan(duration_s=duration_s, rng=generator)
    truth = trace.world.ap_positions()
    config = TransferConfig()

    tables = {
        "time_vs_counting": ResultTable(
            ["counting_error_pct", "BRR_s", "AllAP_s"],
            title="Fig. 11(a) - median transfer time vs counting error",
        ),
        "time_vs_localization": ResultTable(
            ["localization_error_pct", "BRR_s", "AllAP_s"],
            title="Fig. 11(b) - median transfer time vs localization error",
        ),
        "throughput_vs_counting": ResultTable(
            ["counting_error_pct", "BRR_tps", "AllAP_tps"],
            title="Fig. 11(c) - transfers/session vs counting error",
        ),
        "throughput_vs_localization": ResultTable(
            ["localization_error_pct", "BRR_tps", "AllAP_tps"],
            title="Fig. 11(d) - transfers/session vs localization error",
        ),
    }

    for error_pct in error_levels_pct:
        fraction = error_pct / 100.0
        for dimension in ("counting", "localization"):
            corrupted = corrupt_ap_map(
                truth,
                counting_error=fraction if dimension == "counting" else 0.0,
                localization_error=(
                    fraction if dimension == "localization" else 0.0
                ),
                lattice_length_m=LATTICE_M,
                area=trace.area,
                rng=generator,
            )
            stats = {}
            for name, cls in (("BRR", BrrPolicy), ("AllAP", AllApPolicy)):
                stats[name] = run_transfers(
                    trace,
                    _policy(cls, trace, corrupted),
                    config,
                    rng=generator,
                )
            tables[f"time_vs_{dimension}"].add_row(
                **{f"{dimension}_error_pct": error_pct},
                BRR_s=stats["BRR"].median_transfer_time_s,
                AllAP_s=stats["AllAP"].median_transfer_time_s,
            )
            tables[f"throughput_vs_{dimension}"].add_row(
                **{f"{dimension}_error_pct": error_pct},
                BRR_tps=stats["BRR"].transfers_per_session,
                AllAP_tps=stats["AllAP"].transfers_per_session,
            )
    return tables
