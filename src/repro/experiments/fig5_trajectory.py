"""Fig. 5 — UCI trajectory snapshots.

The paper drives the scaled UCI campus loop collecting RSS values and
reads out the online CS estimate after the 60th, 120th and 180th reading.
With all 180 readings the algorithm recovers exactly 8 APs; the average
estimation error falls from 2.6157 m (60 readings) to 1.8316 m (180
readings).

This harness reproduces the experiment: same channel (l0 = 45.6 dB,
γ = 1.76, σ = 0.5 dB), 8 m lattice, window 60 / step 10, SNR 30 dB, APs
snapped to grid points.
"""

from __future__ import annotations

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.experiments.common import drive_and_collect
from repro.metrics.errors import mean_distance_error
from repro.sim.scenarios import uci_campus
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = ["paper_engine_config", "run_fig5"]


def paper_engine_config() -> EngineConfig:
    """The §6.1 configuration: window 60, step 10, 8 m lattice, 30 dB SNR."""
    return EngineConfig(
        window=WindowConfig(size=60, step=10),
        lattice_length_m=8.0,
        communication_radius_m=100.0,
        snr_db=30.0,
    )


def run_fig5(
    checkpoints=(60, 120, 180),
    *,
    n_trials: int = 3,
    seed: int = 2014,
) -> ResultTable:
    """Reproduce Fig. 5(b)–(d): estimate quality at reading checkpoints.

    Returns one row per checkpoint with the estimated AP count (true: 8)
    and the mean estimation error in meters, averaged over ``n_trials``
    independent drives.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    scenario = uci_campus(snap_aps_to_lattice=True)
    truth = scenario.true_ap_positions
    max_points = max(checkpoints)

    table = ResultTable(
        ["n_readings", "estimated_aps", "true_aps", "mean_error_m"],
        title="Fig. 5 - UCI online CS trajectory snapshots",
    )
    sums = {n: {"k": 0.0, "err": 0.0} for n in checkpoints}
    for trial_rng in spawn_children(seed, n_trials):
        trace = drive_and_collect(
            scenario, n_samples=max_points, speed_mph=25.0, rng=trial_rng
        )
        for n_points in checkpoints:
            engine = OnlineCsEngine(
                scenario.world.channel,
                paper_engine_config(),
                grid=scenario.grid,
                rng=trial_rng,
            )
            result = engine.process_trace(trace[:n_points])
            # Pairs beyond 3 lattice lengths are counting mistakes
            # (ghosts / not-yet-driven-past APs), not localization error.
            error = mean_distance_error(
                truth, result.locations, max_match_distance_m=24.0
            )
            sums[n_points]["k"] += result.n_aps
            sums[n_points]["err"] += error
    for n_points in checkpoints:
        table.add_row(
            n_readings=n_points,
            estimated_aps=round(sums[n_points]["k"] / n_trials, 2),
            true_aps=len(truth),
            mean_error_m=sums[n_points]["err"] / n_trials,
        )
    return table
