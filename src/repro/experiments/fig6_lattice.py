"""Fig. 6 — impact of lattice size on localization error.

The paper sweeps the lattice edge length from 2 m to 20 m on the UCI
scenario (180 readings) and reports: error below 2 m for lattices ≤ 10 m,
below 3 m at ~20 m, generally increasing with lattice length; counting
error is 0 across the whole 2–20 m range.
"""

from __future__ import annotations

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.experiments.common import drive_and_collect, percent
from repro.metrics.errors import (
    counting_error,
    localization_error,
    mean_distance_error,
)
from repro.sim.scenarios import uci_campus
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = ["run_fig6"]


def run_fig6(
    lattice_lengths=(2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0),
    *,
    n_readings: int = 180,
    n_trials: int = 2,
    seed: int = 2015,
) -> ResultTable:
    """Sweep the lattice edge and report localization/counting errors.

    Localization error is reported both as the paper's normalized
    percentage (× lattice length) and in raw meters.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    table = ResultTable(
        [
            "lattice_m",
            "mean_error_m",
            "localization_error_pct",
            "counting_error",
        ],
        title="Fig. 6 - lattice size vs localization error (UCI, 180 readings)",
    )
    for lattice in lattice_lengths:
        scenario = uci_campus(
            lattice_length_m=float(lattice), snap_aps_to_lattice=True
        )
        truth = scenario.true_ap_positions
        err_m = err_pct = count_err = 0.0
        for trial_rng in spawn_children(seed + int(lattice * 10), n_trials):
            trace = drive_and_collect(
                scenario, n_samples=n_readings, speed_mph=25.0, rng=trial_rng
            )
            config = EngineConfig(
                window=WindowConfig(size=60, step=10),
                lattice_length_m=float(lattice),
                communication_radius_m=100.0,
                snr_db=30.0,
            )
            engine = OnlineCsEngine(
                scenario.world.channel, config, grid=scenario.grid, rng=trial_rng
            )
            result = engine.process_trace(trace)
            # As in Fig. 5: pairs beyond 25 m are counting mistakes and
            # belong to the counting-error column, not the localization
            # average.
            err_m += mean_distance_error(
                truth, result.locations, max_match_distance_m=25.0
            )
            err_pct += percent(
                localization_error(truth, result.locations, float(lattice))
            )
            count_err += counting_error([len(truth)], [result.n_aps])
        table.add_row(
            lattice_m=float(lattice),
            mean_error_m=err_m / n_trials,
            localization_error_pct=err_pct / n_trials,
            counting_error=count_err / n_trials,
        )
    return table
