"""Fig. 7 — crowdsourcing performance on (ℓ,γ)-regular assignments.

The paper draws random (ℓ,γ)-regular bipartite graphs over 1000 tasks
with spammer–hammer reliabilities, and plots the log10 bit-wise error of
the aggregators:

* Fig. 7(a): sweep workers-per-task ℓ at fixed γ = 5;
* Fig. 7(b): sweep tasks-per-worker γ at fixed ℓ = 15.

Expected shape: CrowdWiFi's iterative inference (KOS) below majority
voting and the Skyhook rank-order aggregator, scaling like the oracle
lower bound; all error rates decay roughly exponentially in the degrees.
We additionally plot the EM / variational aggregator (the alternative the
paper cites via Liu, Peng & Ihler), which tracks KOS closely.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.crowd.simulate import STANDARD_AGGREGATORS, mean_errors
from repro.crowd.workers import SpammerHammerPrior
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = ["ALGORITHMS", "run_fig7_workers", "run_fig7_tasks"]

ALGORITHMS = tuple(STANDARD_AGGREGATORS)


def _log10_error(mean_error: float, floor: float) -> float:
    """log10 with an observability floor (0 errors in n samples → < 1/n)."""
    return math.log10(max(mean_error, floor))


def _sweep(
    points: Sequence[int],
    axis_name: str,
    *,
    sweep_is_workers: bool,
    n_tasks: int,
    fixed_value: int,
    n_trials: int,
    seed: int,
    title: str,
) -> ResultTable:
    prior = SpammerHammerPrior(hammer_fraction=0.5)
    table = ResultTable([axis_name, *ALGORITHMS], title=title)
    floor = 1.0 / (n_tasks * n_trials)
    for value in points:
        if sweep_is_workers:
            l, g = int(value), fixed_value
        else:
            l, g = fixed_value, int(value)
        if (n_tasks * l) % g != 0:
            raise ValueError(
                f"N·ℓ = {n_tasks * l} not divisible by γ = {g}; adjust the sweep"
            )
        (rng,) = spawn_children(seed + value, 1)
        errors = mean_errors(
            n_tasks, l, g, n_trials=n_trials, prior=prior, rng=rng
        )
        table.add_row(
            **{axis_name: int(value)},
            **{
                name: _log10_error(errors[name], floor)
                for name in ALGORITHMS
            },
        )
    return table


def run_fig7_workers(
    l_values=(5, 10, 15, 20, 25),
    *,
    tasks_per_worker: int = 5,
    n_tasks: int = 1000,
    n_trials: int = 20,
    seed: int = 2016,
) -> ResultTable:
    """Fig. 7(a): log10 bit-error vs workers per task ℓ (γ = 5)."""
    return _sweep(
        l_values,
        "workers_per_task",
        sweep_is_workers=True,
        n_tasks=n_tasks,
        fixed_value=tasks_per_worker,
        n_trials=n_trials,
        seed=seed,
        title="Fig. 7(a) - log10 bit-error vs workers per task (gamma=5)",
    )


def run_fig7_tasks(
    gamma_values=(2, 4, 6, 8, 10),  # γ=2 is KOS's known degenerate point
    *,
    workers_per_task: int = 15,
    n_tasks: int = 1000,
    n_trials: int = 20,
    seed: int = 2017,
) -> ResultTable:
    """Fig. 7(b): log10 bit-error vs tasks per worker γ (ℓ = 15)."""
    return _sweep(
        gamma_values,
        "tasks_per_worker",
        sweep_is_workers=False,
        n_tasks=n_tasks,
        fixed_value=workers_per_task,
        n_trials=n_trials,
        seed=seed,
        title="Fig. 7(b) - log10 bit-error vs tasks per worker (l=15)",
    )
