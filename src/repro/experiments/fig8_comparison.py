"""Fig. 8 — CrowdWiFi vs LGMM / MDS / Skyhook on counting & localization.

Setup (§6.1, third simulation set): 250 m × 250 m area, 8 m lattice
(N ≈ 900 usable grid points), SNR 30 dB, APs placed uniformly at random.

* Fig. 8(a,b): sweep the sparsity level k (number of APs) at M = 160
  measurements.  Paper shape: CrowdWiFi and Skyhook far below LGMM/MDS;
  CrowdWiFi ≈ 0 error at k ≤ 30 while the others are ≥ 21 % counting /
  > 200 % localization.
* Fig. 8(c,d): sweep the number of measurements M at k = 10.  Paper
  shape: every algorithm improves with M; CrowdWiFi ≈ 0 beyond M ≥ 40
  while the others need M ≥ 100+.

CrowdWiFi runs the full pipeline (three crowd-vehicle surveys fused by
weighted centroid); Skyhook gets the same three surveys (it crowdsources
too); LGMM and MDS are single-survey algorithms.  The baselines are
additionally given a count-search window centered on the true k — a
generosity the paper's comparison also implies (their reported baseline
counting errors are far below what an unbounded K-scan produces).
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, List, Sequence


from repro.baselines.lgmm import LgmmConfig, LgmmLocalizer
from repro.baselines.mds import MdsConfig, MdsLocalizer
from repro.baselines.skyhook import SkyhookConfig, SkyhookLocalizer
from repro.core.engine import EngineConfig
from repro.core.window import WindowConfig
from repro.experiments.common import (
    crowdwifi_estimate,
    percent,
    survey_and_collect,
)
from repro.geo.points import Point
from repro.metrics.errors import counting_error, localization_error
from repro.sim.scenarios import random_deployment
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = [
    "ALGORITHMS",
    "LATTICE_M",
    "RADIO_RANGE_M",
    "MIN_SEPARATION_M",
    "run_fig8_sparsity",
    "run_fig8_measurements",
]

ALGORITHMS = ("crowdwifi", "skyhook", "lgmm", "mds")
LATTICE_M = 8.0

#: The paper does not state the AP radio range for the Fig. 8 random
#: deployments.  100 m over a 250 m area makes every survey point hear
#: most of the network at once; 60 m keeps the drive-by locality that
#: the sliding window depends on (and that roadside WiFi actually has).
RADIO_RANGE_M = 60.0
MIN_SEPARATION_M = 25.0


def _engine_config() -> EngineConfig:
    return EngineConfig(
        window=WindowConfig(size=36, step=9),
        lattice_length_m=LATTICE_M,
        communication_radius_m=RADIO_RANGE_M,
        readings_per_round=7,
        max_aps_per_round=7,
        snr_db=30.0,
    )


def _count_window(k: int) -> List[int]:
    """The count-search window handed to the baselines."""
    return sorted({max(1, k + delta) for delta in (-6, -3, 0, 3, 6)})


def _run_instance(
    n_aps: int, n_measurements: int, rng, *, stream: bool = False
) -> Dict[str, List[Point]]:
    """One random deployment, surveyed and estimated by every algorithm."""
    scenario = random_deployment(
        n_aps,
        area_side_m=250.0,
        lattice_length_m=LATTICE_M,
        radio_range_m=RADIO_RANGE_M,
        min_separation_m=MIN_SEPARATION_M,
        rng=rng,
    )
    scenario.collector_config = dataclass_replace(
        scenario.collector_config, selection_temperature_db=2.0
    )
    traces = [
        survey_and_collect(scenario, n_measurements, rng=rng)
        for _ in range(3)
    ]
    non_empty = [t for t in traces if len(t) > 0]
    estimates: Dict[str, List[Point]] = {}

    estimates["crowdwifi"] = crowdwifi_estimate(
        scenario,
        non_empty,
        _engine_config(),
        min_support=2,
        rng=rng,
        stream=stream,
    )
    skyhook = SkyhookLocalizer(
        SkyhookConfig(max_aps=max(_count_window(n_aps))), rng=rng
    )
    estimates["skyhook"] = skyhook.estimate_crowdsourced(
        [list(t) for t in non_empty]
    )
    lgmm = LgmmLocalizer(
        scenario.grid,
        scenario.world.channel,
        LgmmConfig(
            max_aps=max(_count_window(n_aps)), em_iterations=8, restarts=1
        ),
        rng=rng,
    )
    estimates["lgmm"] = lgmm.estimate(
        list(non_empty[0]), candidate_counts=_count_window(n_aps)
    )
    mds = MdsLocalizer(
        scenario.world.channel,
        MdsConfig(max_aps=max(_count_window(n_aps))),
        rng=rng,
    )
    estimates["mds"] = mds.estimate(list(non_empty[0]))

    estimates["_truth"] = scenario.true_ap_positions
    return estimates


def _errors_row(estimates: Dict[str, List[Point]]) -> Dict[str, Dict[str, float]]:
    truth = estimates["_truth"]
    row: Dict[str, Dict[str, float]] = {}
    for name in ALGORITHMS:
        found = estimates[name]
        count = counting_error([len(truth)], [len(found)])
        if found:
            loc = percent(localization_error(truth, found, LATTICE_M))
        else:
            loc = float("nan")
        row[name] = {"counting": percent(count), "localization": loc}
    return row


def _sweep(
    axis_name: str,
    axis_values: Sequence[int],
    instance_args,
    *,
    n_trials: int,
    seed: int,
    title_suffix: str,
    stream: bool = False,
):
    counting = ResultTable(
        [axis_name, *ALGORITHMS],
        title=f"Fig. 8 counting error % vs {title_suffix}",
    )
    localization = ResultTable(
        [axis_name, *ALGORITHMS],
        title=f"Fig. 8 localization error % vs {title_suffix}",
    )
    for value in axis_values:
        sums = {
            name: {"counting": 0.0, "localization": 0.0} for name in ALGORITHMS
        }
        for trial_rng in spawn_children(seed + value, n_trials):
            estimates = _run_instance(
                *instance_args(value), trial_rng, stream=stream
            )
            row = _errors_row(estimates)
            for name in ALGORITHMS:
                for metric in ("counting", "localization"):
                    sums[name][metric] += row[name][metric]
        counting.add_row(
            **{axis_name: int(value)},
            **{
                name: sums[name]["counting"] / n_trials for name in ALGORITHMS
            },
        )
        localization.add_row(
            **{axis_name: int(value)},
            **{
                name: sums[name]["localization"] / n_trials
                for name in ALGORITHMS
            },
        )
    return counting, localization


def run_fig8_sparsity(
    k_values=(10, 20, 30, 40),
    *,
    n_measurements: int = 160,
    n_trials: int = 1,
    seed: int = 2018,
    stream: bool = False,
):
    """Fig. 8(a,b): counting & localization error vs sparsity level k.

    ``stream`` routes CrowdWiFi's per-vehicle engines through the
    incremental :class:`~repro.core.stream.StreamingCsEngine`; the
    figures are bit-identical either way.
    """
    return _sweep(
        "sparsity_k",
        k_values,
        lambda k: (int(k), n_measurements),
        n_trials=n_trials,
        seed=seed,
        title_suffix="sparsity level k (M=160)",
        stream=stream,
    )


def run_fig8_measurements(
    m_values=(20, 40, 80, 120, 160),
    *,
    n_aps: int = 10,
    n_trials: int = 1,
    seed: int = 2019,
    stream: bool = False,
):
    """Fig. 8(c,d): counting & localization error vs measurements M.

    ``stream`` routes CrowdWiFi's per-vehicle engines through the
    incremental :class:`~repro.core.stream.StreamingCsEngine`; the
    figures are bit-identical either way.
    """
    return _sweep(
        "measurements_m",
        m_values,
        lambda m: (n_aps, int(m)),
        n_trials=n_trials,
        seed=seed,
        title_suffix="number of measurements M (k=10)",
        stream=stream,
    )
