"""Fig. 9 — the Open-Mesh testbed reproduction (synthesized per DESIGN.md).

The paper deploys six OM1P nodes over a 100 m × 100 m UCI block (10 m
lattice, ~30 m transmission radius) and drives past at three average
speeds (20 / 35 / 45 mph), reading out single-vehicle estimates after the
20th and 40th RSS samples.  The offline crowdsourcing platform then
aggregates the three speeds' drives, weighting by inferred reliability.

Paper numbers: single-vehicle error 3.6016 m (40 points @ 45 mph),
crowdsourced error 2.2509 m over all six nodes; Skyhook on the same area:
11.6028 m.
"""

from __future__ import annotations

from typing import List

from repro.baselines.skyhook import SkyhookConfig, SkyhookLocalizer
from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.experiments.common import drive_and_collect
from repro.metrics.errors import mean_distance_error
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.sim.scenarios import testbed_campus
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = ["SPEEDS_MPH", "testbed_engine_config", "run_fig9"]

SPEEDS_MPH = (20.0, 35.0, 45.0)


def testbed_engine_config() -> EngineConfig:
    """Testbed configuration: 10 m lattice, 30 m radio reach.

    The drives are short (≤ 40 readings), so the sliding window is
    scaled down from the paper's 60/10 accordingly.
    """
    return EngineConfig(
        window=WindowConfig(size=20, step=5),
        lattice_length_m=10.0,
        communication_radius_m=30.0,
        readings_per_round=6,
        max_aps_per_round=4,
        alignment_radius_m=8.0,
        snr_db=30.0,
    )


def run_fig9(
    *,
    checkpoints=(20, 40),
    n_trials: int = 3,
    seed: int = 2020,
) -> ResultTable:
    """Reproduce Fig. 9: per-speed snapshots plus the crowdsourced fusion.

    Rows: one per (speed, checkpoint) with the single-vehicle estimation
    error, then a ``crowdsourced`` row fusing the three speeds' full
    drives, and a ``skyhook`` row for the comparison system.
    """
    scenario = testbed_campus()
    truth = scenario.true_ap_positions
    max_points = max(checkpoints)

    table = ResultTable(
        ["stage", "speed_mph", "n_readings", "estimated_aps", "mean_error_m"],
        title="Fig. 9 - Open-Mesh testbed lookup and crowdsourcing",
    )
    sums: dict = {}

    def accumulate(key, k, err):
        entry = sums.setdefault(key, {"k": 0.0, "err": 0.0, "n": 0})
        entry["k"] += k
        entry["err"] += err
        entry["n"] += 1

    for trial_rng in spawn_children(seed, n_trials):
        full_traces = {}
        for speed in SPEEDS_MPH:
            trace = drive_and_collect(
                scenario,
                n_samples=max_points,
                speed_mph=speed,
                rng=trial_rng,
            )
            full_traces[speed] = trace
            for n_points in checkpoints:
                engine = OnlineCsEngine(
                    scenario.world.channel,
                    testbed_engine_config(),
                    grid=scenario.grid,
                    rng=trial_rng,
                )
                result = engine.process_trace(trace[:n_points])
                accumulate(
                    ("single", speed, n_points),
                    result.n_aps,
                    mean_distance_error(truth, result.locations),
                )

        # Crowdsourced fusion of the three speeds' full drives, weighted
        # by a reliability proxy (slower drives sample more densely and
        # are more reliable, mirroring the inferred ordering).
        reports: List[VehicleReport] = []
        for index, speed in enumerate(SPEEDS_MPH):
            engine = OnlineCsEngine(
                scenario.world.channel,
                testbed_engine_config(),
                grid=scenario.grid,
                rng=trial_rng,
            )
            result = engine.process_trace(full_traces[speed])
            reliability = 1.0 - 0.1 * index
            reports.append(
                VehicleReport(
                    vehicle_id=f"speed-{int(speed)}",
                    ap_locations=tuple(result.locations),
                    reliability=reliability,
                )
            )
        fused = weighted_centroid_fusion(
            reports, alignment_radius_m=12.0, min_support=2
        )
        fused_locations = [ap.location for ap in fused]
        accumulate(
            ("crowdsourced", 0.0, max_points),
            len(fused_locations),
            mean_distance_error(truth, fused_locations),
        )

        skyhook = SkyhookLocalizer(SkyhookConfig(max_aps=8), rng=trial_rng)
        sky_estimates = skyhook.estimate_crowdsourced(
            [list(t) for t in full_traces.values()]
        )
        accumulate(
            ("skyhook", 0.0, max_points),
            len(sky_estimates),
            mean_distance_error(truth, sky_estimates),
        )

    for (stage, speed, n_points), entry in sums.items():
        table.add_row(
            stage=stage,
            speed_mph=speed,
            n_readings=n_points,
            estimated_aps=round(entry["k"] / entry["n"], 2),
            mean_error_m=entry["err"] / entry["n"],
        )
    return table
