"""Robustness extensions — stressing CrowdWiFi beyond the paper's noise.

The paper evaluates under i.i.d. log-normal shadowing and perfect GPS.
Two realistic stressors change that picture:

* **GPS noise** — consumer receivers err by meters; the reference points
  the CS formulation conditions on are then wrong by the same amount.
* **Spatially correlated shadowing** — terrain-induced fades follow the
  Gudmundson model and do *not* average out over a drive-by pass the way
  independent noise does.

Both harnesses sweep the stressor's magnitude on the UCI scenario and
report the engine's counting and localization error, quantifying how far
the paper's accuracy claims survive.
"""

from __future__ import annotations

from repro.core.engine import EngineConfig, OnlineCsEngine
from repro.core.window import WindowConfig
from repro.metrics.errors import counting_error, mean_distance_error
from repro.mobility.models import PathFollower
from repro.mobility.units import mph_to_mps
from repro.radio.shadowing import CorrelatedShadowingField
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.scenarios import uci_campus
from repro.util.rng import spawn_children
from repro.util.tables import ResultTable

__all__ = ["run_gps_noise_sweep", "run_correlated_shadowing_sweep"]


def _engine_config() -> EngineConfig:
    return EngineConfig(
        window=WindowConfig(size=60, step=10),
        lattice_length_m=8.0,
        communication_radius_m=100.0,
        snr_db=30.0,
    )


def run_gps_noise_sweep(
    sigmas_m=(0.0, 2.0, 5.0, 10.0, 20.0),
    *,
    n_readings: int = 180,
    n_trials: int = 2,
    seed: int = 4001,
) -> ResultTable:
    """Engine accuracy vs GPS fix noise σ."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    scenario = uci_campus(snap_aps_to_lattice=True)
    truth = scenario.true_ap_positions
    table = ResultTable(
        ["gps_sigma_m", "counting_error", "mean_error_m"],
        title="Robustness - engine accuracy vs GPS noise (UCI, 180 readings)",
    )
    for sigma in sigmas_m:
        count_sum = error_sum = 0.0
        for trial_rng in spawn_children(seed + int(sigma * 10), n_trials):
            collector = RssCollector(
                scenario.world,
                CollectorConfig(
                    sample_period_s=scenario.collector_config.sample_period_s,
                    communication_radius_m=100.0,
                    gps_sigma_m=float(sigma),
                ),
                rng=trial_rng,
            )
            follower = PathFollower(scenario.route, mph_to_mps(25.0))
            trace = collector.collect_along(follower, n_samples=n_readings)
            engine = OnlineCsEngine(
                scenario.world.channel, _engine_config(),
                grid=scenario.grid, rng=trial_rng,
            )
            result = engine.process_trace(trace)
            count_sum += counting_error([len(truth)], [result.n_aps])
            error_sum += mean_distance_error(
                truth, result.locations, max_match_distance_m=25.0
            )
        table.add_row(
            gps_sigma_m=float(sigma),
            counting_error=count_sum / n_trials,
            mean_error_m=error_sum / n_trials,
        )
    return table


def run_correlated_shadowing_sweep(
    sigmas_db=(0.5, 2.0, 4.0),
    *,
    correlation_distance_m: float = 50.0,
    n_readings: int = 180,
    n_trials: int = 2,
    seed: int = 4002,
) -> ResultTable:
    """Engine accuracy vs correlated-shadowing severity σ.

    Each AP gets its own Gudmundson field realization, so fades are
    spatially coherent along the drive but independent across APs.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    scenario = uci_campus(snap_aps_to_lattice=True)
    truth = scenario.true_ap_positions
    table = ResultTable(
        ["shadowing_sigma_db", "counting_error", "mean_error_m"],
        title=(
            "Robustness - engine accuracy vs correlated shadowing "
            f"(d_corr={correlation_distance_m:.0f} m)"
        ),
    )
    for sigma in sigmas_db:
        count_sum = error_sum = 0.0
        for trial_rng in spawn_children(seed + int(sigma * 10), n_trials):
            fields = {
                ap.ap_id: CorrelatedShadowingField(
                    float(sigma), correlation_distance_m, rng=trial_rng
                )
                for ap in scenario.world.access_points
            }
            collector = RssCollector(
                scenario.world,
                scenario.collector_config,
                fading_fields=fields,
                rng=trial_rng,
            )
            follower = PathFollower(scenario.route, mph_to_mps(25.0))
            trace = collector.collect_along(follower, n_samples=n_readings)
            engine = OnlineCsEngine(
                scenario.world.channel, _engine_config(),
                grid=scenario.grid, rng=trial_rng,
            )
            result = engine.process_trace(trace)
            count_sum += counting_error([len(truth)], [result.n_aps])
            error_sum += mean_distance_error(
                truth, result.locations, max_match_distance_m=25.0
            )
        table.add_row(
            shadowing_sigma_db=float(sigma),
            counting_error=count_sum / n_trials,
            mean_error_m=error_sum / n_trials,
        )
    return table
