"""Planar geometry substrate: points, bounding boxes, grids, trajectories.

This package implements the spatial machinery CrowdWiFi's online CS stage
depends on:

* :class:`Point` / :class:`BoundingBox` — value types for 2-D positions.
* :class:`Grid` — the lattice formation of §4.3.1, built from a set of
  reference points padded by the radio communication radius.
* :class:`Trajectory` — an arc-length-parameterised polyline used by the
  mobility layer to drive vehicles and place RSS reference points.
* :class:`GridBucketIndex` — a hash-grid over a static point set so
  radius queries (audibility, clustering) touch O(cell) points instead
  of the whole deployment.
"""

from repro.geo.points import BoundingBox, Point, centroid, pairwise_distances
from repro.geo.grid import Grid, grid_from_reference_points
from repro.geo.spatialindex import GridBucketIndex
from repro.geo.trajectory import Trajectory

__all__ = [
    "Point",
    "BoundingBox",
    "centroid",
    "pairwise_distances",
    "Grid",
    "grid_from_reference_points",
    "GridBucketIndex",
    "Trajectory",
]
