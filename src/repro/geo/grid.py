"""Grid (lattice) formation — §4.3.1 of the paper.

The online CS stage discretises the driving area into a lattice of *grid
points* (GPs).  The AP indicator vector θ lives on these grid points, the
sparsity basis Ψ records the expected RSS between every pair of grid
points, and the measurement matrix Φ selects the grid points nearest the
vehicle's reference points (RPs).

Grid points are indexed row-major: index ``i = row * n_cols + col`` maps to
the lattice cell center at ``(min_x + (col + 0.5) l, min_y + (row + 0.5) l)``
for lattice length ``l``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.geo.points import BoundingBox, Point

__all__ = ["Grid", "grid_from_reference_points"]


@dataclass(frozen=True)
class Grid:
    """A rectangular lattice over a bounding box.

    Parameters
    ----------
    box:
        The driving-area rectangle (already padded by the communication
        radius — see :func:`grid_from_reference_points`).
    lattice_length:
        Edge length of each square cell in meters (paper: 8 m for the UCI
        simulation, 10 m for the testbed).
    """

    box: BoundingBox
    lattice_length: float
    n_cols: int = field(init=False)
    n_rows: int = field(init=False)

    def __post_init__(self) -> None:
        if self.lattice_length <= 0:
            raise ValueError(
                f"lattice_length must be > 0, got {self.lattice_length}"
            )
        n_cols = max(1, int(np.ceil(self.box.width / self.lattice_length)))
        n_rows = max(1, int(np.ceil(self.box.height / self.lattice_length)))
        object.__setattr__(self, "n_cols", n_cols)
        object.__setattr__(self, "n_rows", n_rows)

    @property
    def n_points(self) -> int:
        """Total number of grid points N."""
        return self.n_rows * self.n_cols

    def index_to_rowcol(self, index: int) -> Tuple[int, int]:
        """Map a flat grid-point index to ``(row, col)``."""
        self._check_index(index)
        return divmod(index, self.n_cols)

    def rowcol_to_index(self, row: int, col: int) -> int:
        """Map ``(row, col)`` to the flat grid-point index."""
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise IndexError(
                f"(row={row}, col={col}) outside grid {self.n_rows}x{self.n_cols}"
            )
        return row * self.n_cols + col

    def point_at(self, index: int) -> Point:
        """Cell-center coordinates of grid point ``index``."""
        row, col = self.index_to_rowcol(index)
        return Point(
            self.box.min_x + (col + 0.5) * self.lattice_length,
            self.box.min_y + (row + 0.5) * self.lattice_length,
        )

    def all_points(self) -> List[Point]:
        """All grid-point centers in index order."""
        return [self.point_at(i) for i in range(self.n_points)]

    def coordinates(self) -> NDArray[np.float64]:
        """``(N, 2)`` array of grid-point centers in index order (cached)."""
        cached: Optional[NDArray[np.float64]] = getattr(
            self, "_coordinates_cache", None
        )
        if cached is None:
            cols = np.arange(self.n_points) % self.n_cols
            rows = np.arange(self.n_points) // self.n_cols
            xs = self.box.min_x + (cols + 0.5) * self.lattice_length
            ys = self.box.min_y + (rows + 0.5) * self.lattice_length
            cached = np.asarray(np.column_stack([xs, ys]), dtype=np.float64)
            cached.setflags(write=False)
            object.__setattr__(self, "_coordinates_cache", cached)
        return cached

    def snap(self, point: Point) -> int:
        """Index of the grid point whose cell contains / is nearest ``point``.

        Points outside the box are clamped to the border cells, matching the
        paper's construction where every RP lies inside the padded box by
        definition but floating-point jitter may land exactly on an edge.
        """
        col = int((point.x - self.box.min_x) / self.lattice_length)
        row = int((point.y - self.box.min_y) / self.lattice_length)
        col = min(max(col, 0), self.n_cols - 1)
        row = min(max(row, 0), self.n_rows - 1)
        return self.rowcol_to_index(row, col)

    def snap_distance(self, point: Point) -> float:
        """Distance from ``point`` to its snapped grid-point center."""
        return point.distance_to(self.point_at(self.snap(point)))

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the grid's bounding box."""
        return self.box.contains(point)

    @property
    def diameter(self) -> float:
        """Diagonal of one lattice cell — the paper's unit for localization error."""
        return float(self.lattice_length * np.sqrt(2.0))

    def neighbors(self, index: int, *, radius: int = 1) -> List[int]:
        """Flat indices of grid points within ``radius`` cells (Chebyshev)."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        row, col = self.index_to_rowcol(index)
        out: List[int] = []
        for dr in range(-radius, radius + 1):
            for dc in range(-radius, radius + 1):
                if dr == 0 and dc == 0:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.n_rows and 0 <= c < self.n_cols:
                    out.append(self.rowcol_to_index(r, c))
        return out

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_points):
            raise IndexError(
                f"grid index {index} out of range [0, {self.n_points})"
            )


def grid_from_reference_points(
    reference_points: Sequence[Point],
    communication_radius: float,
    lattice_length: float,
) -> Grid:
    """Online grid formation (§4.3.1).

    The driving-area rectangle has corners
    ``(x_min - r_m, y_min - r_m)`` and ``(x_max + r_m, y_max + r_m)`` where
    the min/max run over the reference-point coordinates and ``r_m`` is the
    communication radius of the vehicle's RSS collector.
    """
    if not reference_points:
        raise ValueError("grid formation needs at least one reference point")
    if communication_radius <= 0:
        raise ValueError(
            f"communication_radius must be > 0, got {communication_radius}"
        )
    box = BoundingBox.around(reference_points).expanded(communication_radius)
    return Grid(box=box, lattice_length=lattice_length)
