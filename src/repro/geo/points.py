"""Planar point and bounding-box value types."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = [
    "Point",
    "BoundingBox",
    "centroid",
    "pairwise_distances",
    "nearest_point_index",
    "points_as_array",
    "array_as_points",
]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point in meters."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters.

        Computed as ``sqrt(dx² + dy²)`` rather than ``math.hypot`` so the
        scalar result is bit-identical to the vectorized distance matrices
        of :meth:`repro.sim.world.World.rss_matrix` (hypot rounds its last
        ulp differently from the sqrt form; coordinates are meters, so the
        overflow protection hypot adds is irrelevant here).
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return math.sqrt(dx * dx + dy * dy)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def as_array(self) -> NDArray[np.float64]:
        """Return a ``(2,)`` float array."""
        return np.array([self.x, self.y], dtype=np.float64)

    @staticmethod
    def from_sequence(xy: Sequence[float]) -> "Point":
        """Build a point from any length-2 sequence."""
        if len(xy) != 2:
            raise ValueError(f"expected a length-2 sequence, got {xy!r}")
        return Point(float(xy[0]), float(xy[1]))


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle defined by its lower-left / upper-right corners."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point, *, tolerance: float = 0.0) -> bool:
        """Whether ``point`` lies inside (inclusive, with optional tolerance)."""
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side.

        This is the padding step of §4.3.1: the driving-area rectangle is the
        RP bounding box expanded by the collector's communication radius.
        """
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            raise ValueError(f"margin {margin} would invert the box")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    @staticmethod
    def around(points: Iterable[Point]) -> "BoundingBox":
        """Smallest box containing every point (degenerate boxes allowed)."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return BoundingBox(min(xs), min(ys), max(xs), max(ys))


def centroid(
    points: Sequence[Point], weights: Optional[Sequence[float]] = None
) -> Point:
    """Weighted centroid of a point set (uniform weights by default).

    This is the workhorse behind both §4.3.4 (threshold-centroid processing
    of CS coefficients) and §5.4 (reliability-weighted fusion of
    crowdsourced estimates).
    """
    if not points:
        raise ValueError("cannot take the centroid of an empty point set")
    if weights is None:
        weights = [1.0] * len(points)
    if len(weights) != len(points):
        raise ValueError(
            f"{len(points)} points but {len(weights)} weights were supplied"
        )
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("centroid weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("centroid weights sum to zero")
    xs = np.array([p.x for p in points])
    ys = np.array([p.y for p in points])
    return Point(float(xs @ w / total), float(ys @ w / total))


def pairwise_distances(points: Sequence[Point]) -> NDArray[np.float64]:
    """Symmetric matrix of Euclidean distances between all point pairs."""
    coords = np.array([[p.x, p.y] for p in points], dtype=np.float64)
    if coords.size == 0:
        return np.zeros((0, 0), dtype=np.float64)
    deltas = coords[:, None, :] - coords[None, :, :]
    return np.asarray(np.sqrt((deltas**2).sum(axis=-1)), dtype=np.float64)


def nearest_point_index(target: Point, candidates: Sequence[Point]) -> int:
    """Index of the candidate closest to ``target`` (ties break to lowest index)."""
    if not candidates:
        raise ValueError("no candidates supplied")
    best_index = 0
    best_distance = target.distance_to(candidates[0])
    for index, candidate in enumerate(candidates[1:], start=1):
        distance = target.distance_to(candidate)
        if distance < best_distance:
            best_index = index
            best_distance = distance
    return best_index


def points_as_array(points: Sequence[Point]) -> NDArray[np.float64]:
    """Stack points into an ``(n, 2)`` float array."""
    return np.array([[p.x, p.y] for p in points], dtype=np.float64).reshape(-1, 2)


def array_as_points(coords: ArrayLike) -> List[Point]:
    """Convert an ``(n, 2)`` array back into a list of points."""
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {arr.shape}")
    return [Point(float(x), float(y)) for x, y in arr]
