"""Grid-bucket spatial index for fixed point sets.

City-scale worlds hold thousands of APs, but any single query point is
covered by the handful whose cells are nearby.  :class:`GridBucketIndex`
hashes a static ``(n, 2)`` point set into square buckets of a chosen cell
size; a radius query then inspects only the buckets overlapping the query
disk instead of scanning every point.

The index is a *pruning* structure: :meth:`candidates` returns a sorted
superset of the points within the radius (every point in an overlapping
bucket), and :meth:`query` applies the exact Euclidean test on top.  The
exact test uses the same ``sqrt(dx² + dy²)`` arithmetic as
:meth:`repro.geo.points.Point.distance_to`, so an index-backed lookup is
bit-identical to brute force over the same points.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = ["GridBucketIndex"]


class GridBucketIndex:
    """Uniform-grid bucketing of a static 2-D point set.

    Parameters
    ----------
    coordinates:
        ``(n, 2)`` array of point coordinates (meters).  The set is fixed
        at construction; rebuild the index when the points change.
    cell_size:
        Bucket edge length in meters.  Choose it near the typical query
        radius: a query of radius ``r`` touches ``(⌈r/cell⌉·2 + 1)²``
        buckets.
    """

    def __init__(self, coordinates: ArrayLike, cell_size: float) -> None:
        coords = np.asarray(coordinates, dtype=np.float64)
        if coords.ndim != 2 or (coords.size and coords.shape[1] != 2):
            raise ValueError(
                f"coordinates must be an (n, 2) array, got shape {coords.shape}"
            )
        if cell_size <= 0:
            raise ValueError(f"cell_size must be > 0, got {cell_size}")
        coords = coords.reshape(-1, 2)
        self._coords: NDArray[np.float64] = coords
        self.cell_size = float(cell_size)
        buckets: Dict[Tuple[int, int], List[int]] = {}
        cells = np.floor(coords / self.cell_size).astype(np.int64)
        for index, (cx, cy) in enumerate(cells.tolist()):
            buckets.setdefault((int(cx), int(cy)), []).append(index)
        self._buckets: Dict[Tuple[int, int], NDArray[np.int64]] = {
            cell: np.asarray(members, dtype=np.int64)
            for cell, members in buckets.items()
        }

    def __len__(self) -> int:
        return int(self._coords.shape[0])

    @property
    def coordinates(self) -> NDArray[np.float64]:
        """The indexed ``(n, 2)`` coordinate array."""
        return self._coords

    def candidates(self, x: float, y: float, radius: float) -> NDArray[np.int64]:
        """Sorted indices of every point in a bucket overlapping the disk.

        A superset of the points within ``radius`` of ``(x, y)``; callers
        needing the exact set apply their own distance test (or use
        :meth:`query`).  Sorted order keeps downstream iteration in the
        original deployment order.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if not self._buckets:
            return np.empty(0, dtype=np.int64)
        reach = int(np.ceil(radius / self.cell_size))
        cx = int(np.floor(x / self.cell_size))
        cy = int(np.floor(y / self.cell_size))
        found: List[NDArray[np.int64]] = []
        for bx in range(cx - reach, cx + reach + 1):
            for by in range(cy - reach, cy + reach + 1):
                members = self._buckets.get((bx, by))
                if members is not None:
                    found.append(members)
        if not found:
            return np.empty(0, dtype=np.int64)
        merged: NDArray[np.int64] = np.sort(np.concatenate(found))
        return merged

    def query(self, x: float, y: float, radius: float) -> NDArray[np.int64]:
        """Sorted indices of the points with ``distance <= radius`` exactly."""
        rough = self.candidates(x, y, radius)
        if rough.size == 0:
            return rough
        deltas = self._coords[rough] - (float(x), float(y))
        within = np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2) <= radius
        kept: NDArray[np.int64] = rough[within]
        return kept
