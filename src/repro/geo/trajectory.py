"""Arc-length-parameterised polyline trajectories.

Vehicles in the simulator follow a :class:`Trajectory`: a polyline through
waypoints, optionally closed into a loop.  Positions are queried by distance
travelled, which lets the mobility layer convert (speed, time) directly into
coordinates without integrating.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.geo.points import Point

__all__ = ["Trajectory"]


class Trajectory:
    """A polyline through 2-D waypoints with arc-length lookup.

    Parameters
    ----------
    waypoints:
        At least two distinct points.
    closed:
        If true, the final segment connects the last waypoint back to the
        first and :meth:`position_at` wraps around (a driving loop).
    """

    def __init__(self, waypoints: Sequence[Point], *, closed: bool = False) -> None:
        pts = list(waypoints)
        if len(pts) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if closed and pts[0].distance_to(pts[-1]) < 1e-12:
            # Tolerate an explicitly repeated first point in closed loops.
            pts = pts[:-1]
            if len(pts) < 2:
                raise ValueError("closed trajectory collapses to a single point")
        self.waypoints: List[Point] = pts
        self.closed = closed
        segment_points = pts + [pts[0]] if closed else pts
        lengths = [
            segment_points[i].distance_to(segment_points[i + 1])
            for i in range(len(segment_points) - 1)
        ]
        if any(length < 1e-12 for length in lengths):
            raise ValueError("trajectory contains a zero-length segment")
        self._segment_points: List[Point] = segment_points
        self._cumulative: NDArray[np.float64] = np.concatenate(
            [[0.0], np.cumsum(lengths)]
        )

    @property
    def length(self) -> float:
        """Total arc length in meters (the loop length when closed)."""
        return float(self._cumulative[-1])

    def position_at(self, distance: float) -> Point:
        """Point at arc-length ``distance`` from the start.

        Closed trajectories wrap; open trajectories clamp to the endpoints.
        """
        if self.closed:
            distance = float(distance) % self.length
        else:
            distance = min(max(float(distance), 0.0), self.length)
        idx = int(np.searchsorted(self._cumulative, distance, side="right")) - 1
        idx = min(max(idx, 0), len(self._segment_points) - 2)
        seg_start = self._segment_points[idx]
        seg_end = self._segment_points[idx + 1]
        seg_len = self._cumulative[idx + 1] - self._cumulative[idx]
        t = (distance - self._cumulative[idx]) / seg_len
        return Point(
            seg_start.x + t * (seg_end.x - seg_start.x),
            seg_start.y + t * (seg_end.y - seg_start.y),
        )

    def heading_at(self, distance: float) -> float:
        """Heading (radians, CCW from +x) of the segment containing ``distance``."""
        if self.closed:
            distance = float(distance) % self.length
        else:
            distance = min(max(float(distance), 0.0), self.length)
        idx = int(np.searchsorted(self._cumulative, distance, side="right")) - 1
        idx = min(max(idx, 0), len(self._segment_points) - 2)
        seg_start = self._segment_points[idx]
        seg_end = self._segment_points[idx + 1]
        return float(np.arctan2(seg_end.y - seg_start.y, seg_end.x - seg_start.x))

    def sample_uniform(self, count: int) -> List[Point]:
        """``count`` points spaced uniformly by arc length from the start.

        For closed loops the samples cover one full lap without repeating the
        start point; for open paths they include both endpoints.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if count == 1:
            return [self.position_at(0.0)]
        if self.closed:
            distances = np.linspace(0.0, self.length, count, endpoint=False)
        else:
            distances = np.linspace(0.0, self.length, count)
        return [self.position_at(float(d)) for d in distances]

    @staticmethod
    def rectangle(
        min_x: float, min_y: float, max_x: float, max_y: float
    ) -> "Trajectory":
        """A closed rectangular loop (counter-clockwise from the lower-left)."""
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("rectangle corners are degenerate")
        return Trajectory(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ],
            closed=True,
        )
