"""Handoff and connectivity applications on top of CrowdWiFi (§6.3).

* :mod:`repro.handoff.vanlan` — a synthetic VanLan: 11 APs over five
  building clusters on an 828 m × 559 m campus, vans looping at 25 mph,
  500-byte beacons every 100 ms, bursty Gilbert–Elliott packet loss.
* :mod:`repro.handoff.policies` — the two handoff policies the paper
  evaluates: BRR (hard handoff to the best exponentially averaged beacon
  reception ratio) and AllAP (opportunistic use of every AP in the
  vicinity).
* :mod:`repro.handoff.connectivity` — per-second adequacy, session
  segmentation, and session-length CDFs (Fig. 10).
* :mod:`repro.handoff.transfer` — the 10 KB TCP transfer experiment under
  injected counting/localization errors (Fig. 11).
"""

from repro.handoff.vanlan import VanLanConfig, VanLanTrace, synthesize_vanlan
from repro.handoff.policies import AllApPolicy, BrrPolicy, HandoffPolicy
from repro.handoff.connectivity import (
    SessionStats,
    connectivity_timeline,
    session_length_cdf,
    sessions_from_timeline,
)
from repro.handoff.transfer import TransferConfig, TransferStats, run_transfers
from repro.handoff.errors import corrupt_ap_map
from repro.handoff.lookup import identity_lookup, locate_ap
from repro.handoff.topology import (
    CoverageReport,
    InterferenceReport,
    analyze_interference,
    density_grid,
    density_per_km2,
    interference_graph,
    route_coverage,
)

__all__ = [
    "VanLanConfig",
    "VanLanTrace",
    "synthesize_vanlan",
    "HandoffPolicy",
    "BrrPolicy",
    "AllApPolicy",
    "connectivity_timeline",
    "sessions_from_timeline",
    "session_length_cdf",
    "SessionStats",
    "TransferConfig",
    "TransferStats",
    "run_transfers",
    "corrupt_ap_map",
    "identity_lookup",
    "locate_ap",
    "density_per_km2",
    "density_grid",
    "route_coverage",
    "CoverageReport",
    "interference_graph",
    "analyze_interference",
    "InterferenceReport",
]
