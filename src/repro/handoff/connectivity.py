"""Connectivity timelines, sessions, and session-length CDFs (Fig. 10).

The paper calls a one-second interval *adequately connected* when the
reception ratio exceeds 50 %.  A *session* is a maximal run of adequate
seconds; Fig. 10(c) compares the CDF of time spent in sessions of a
given length under BRR vs AllAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.handoff.policies import HandoffPolicy, SlotObservation
from repro.handoff.vanlan import VanLanTrace

__all__ = [
    "ADEQUATE_THRESHOLD",
    "connectivity_timeline",
    "sessions_from_timeline",
    "interruption_count",
    "SessionStats",
    "analyze_sessions",
    "session_length_cdf",
]

ADEQUATE_THRESHOLD = 0.5


def connectivity_timeline(
    trace: VanLanTrace, policy: HandoffPolicy
) -> List[float]:
    """Per-second success ratios of a policy over a trace, in time order."""
    by_second = trace.reception_by_second()
    timeline: List[float] = []
    for second in sorted(by_second):
        observation = SlotObservation(
            second=second,
            van_position=trace.van_position_at_second(second),
            reception=by_second[second],
        )
        timeline.append(policy.slot_success_ratio(observation))
    return timeline


def sessions_from_timeline(
    timeline: Sequence[float],
    *,
    threshold: float = ADEQUATE_THRESHOLD,
) -> List[int]:
    """Lengths (seconds) of maximal adequately connected runs."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    sessions: List[int] = []
    run = 0
    for ratio in timeline:
        if ratio > threshold:
            run += 1
        elif run:
            sessions.append(run)
            run = 0
    if run:
        sessions.append(run)
    return sessions


def interruption_count(
    timeline: Sequence[float], *, threshold: float = ADEQUATE_THRESHOLD
) -> int:
    """Number of transitions from adequate to inadequate connectivity."""
    count = 0
    previous_adequate = False
    for ratio in timeline:
        adequate = ratio > threshold
        if previous_adequate and not adequate:
            count += 1
        previous_adequate = adequate
    return count


@dataclass(frozen=True)
class SessionStats:
    """Summary of a policy's session behaviour."""

    sessions: Tuple[int, ...]
    total_connected_s: int
    interruptions: int

    @property
    def median_session_s(self) -> float:
        if not self.sessions:
            return 0.0
        return float(np.median(self.sessions))

    def time_fraction_in_sessions_longer_than(self, length_s: float) -> float:
        """Fraction of connected time spent in sessions > ``length_s``.

        This is the complement of the Fig. 10(c) CDF: the probability that
        the session containing a uniformly random connected second is
        longer than the given length.
        """
        if self.total_connected_s == 0:
            return 0.0
        qualifying = sum(s for s in self.sessions if s > length_s)
        return qualifying / self.total_connected_s


def analyze_sessions(
    timeline: Sequence[float], *, threshold: float = ADEQUATE_THRESHOLD
) -> SessionStats:
    """Compute all Fig. 10 session statistics from one timeline."""
    sessions = sessions_from_timeline(timeline, threshold=threshold)
    return SessionStats(
        sessions=tuple(sessions),
        total_connected_s=sum(sessions),
        interruptions=interruption_count(timeline, threshold=threshold),
    )


def session_length_cdf(
    sessions: Sequence[int], lengths: Sequence[float]
) -> List[float]:
    """Time-weighted CDF of session lengths at the given probe lengths.

    ``cdf[i]`` is the fraction of connected time spent in sessions of
    length ≤ ``lengths[i]`` — Fig. 10(c)'s "% of Time (CDF)" axis.
    """
    total = sum(sessions)
    if total == 0:
        return [0.0 for _ in lengths]
    out: List[float] = []
    for probe in lengths:
        covered = sum(s for s in sessions if s <= probe)
        out.append(covered / total)
    return out
