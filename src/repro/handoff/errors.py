"""Controlled corruption of AP maps for the Fig. 11 error sweeps.

Fig. 11 plots transfer performance against the user-vehicle's counting
and localization errors, with the counting axis running to 300 % — which
under the paper's metric Σ|k̂−k|/Σk necessarily includes *overcounting*
(phantom map entries), not just missing APs.  :func:`corrupt_ap_map`
realises a requested counting-error level as a mix of both directions:
error mass up to a drop ceiling removes real APs, and the remainder adds
phantom entries at random positions; each surviving AP is additionally
displaced to realise the requested localization error exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geo.points import BoundingBox, Point
from repro.util.rng import RngLike, ensure_rng

__all__ = ["MAX_DROP_FRACTION", "corrupt_ap_map"]

#: At most this fraction of real APs is dropped; counting-error mass
#: beyond it becomes phantom entries.
MAX_DROP_FRACTION = 0.9


def corrupt_ap_map(
    true_locations: Sequence[Point],
    *,
    counting_error: float = 0.0,
    localization_error: float = 0.0,
    lattice_length_m: float = 10.0,
    area: Optional[BoundingBox] = None,
    rng: RngLike = None,
) -> List[Point]:
    """Produce an AP map with the requested error levels.

    Parameters
    ----------
    counting_error:
        The paper's counting metric Σ|k̂−k|/Σk as a fraction (3.0 for the
        sweep's 300 % point).  Half the error mass (capped at
        ``MAX_DROP_FRACTION``) drops real APs — the harmful direction for
        connectivity — and the rest adds phantom entries.
    localization_error:
        The paper's normalized relative distance as a fraction: each
        surviving real AP's entry is displaced by
        ``localization_error · lattice_length_m`` in a uniformly random
        direction.
    lattice_length_m:
        The lattice length the localization error is normalized by.
    area:
        Where phantom entries may be placed; defaults to the truth's
        bounding box expanded by 50 m.

    Returns
    -------
    list of Point
        The corrupted estimated AP map (surviving entries first, then
        phantoms).
    """
    if counting_error < 0:
        raise ValueError(f"counting_error must be >= 0, got {counting_error}")
    if localization_error < 0:
        raise ValueError(
            f"localization_error must be >= 0, got {localization_error}"
        )
    if lattice_length_m <= 0:
        raise ValueError(
            f"lattice_length_m must be > 0, got {lattice_length_m}"
        )
    generator = ensure_rng(rng)
    locations = list(true_locations)
    if not locations:
        return []
    n_true = len(locations)

    drop_fraction = min(counting_error / 2.0, MAX_DROP_FRACTION)
    n_drop = int(round(drop_fraction * n_true))
    n_phantom = int(round(counting_error * n_true)) - n_drop
    n_phantom = max(n_phantom, 0)

    if n_drop:
        keep = set(
            generator.choice(n_true, size=n_true - n_drop, replace=False).tolist()
        )
        locations = [p for i, p in enumerate(locations) if i in keep]

    displaced: List[Point] = []
    radius = localization_error * lattice_length_m
    for point in locations:
        if radius == 0:
            displaced.append(point)
            continue
        angle = generator.uniform(0.0, 2.0 * np.pi)
        displaced.append(
            point.translated(radius * np.cos(angle), radius * np.sin(angle))
        )

    if n_phantom:
        box = (
            area
            if area is not None
            else BoundingBox.around(true_locations).expanded(50.0)
        )
        for _ in range(n_phantom):
            displaced.append(
                Point(
                    float(generator.uniform(box.min_x, box.max_x)),
                    float(generator.uniform(box.min_y, box.max_y)),
                )
            )
    return displaced
