"""Identity-aware AP lookup for beacon traces (the Fig. 10 application).

802.11 beacons carry their transmitter's BSSID, so a *beacon* trace —
unlike the blind drive-by RSS stream the online CS engine is built for —
already tells the vehicle which AP each reading came from.  The lookup
problem then reduces to per-AP positioning: group readings by BSSID and
fit each AP's location against the path-loss model.

The fit reuses the engine's continuous ML refinement with multiple
starting points: readings collected along a road are often nearly
collinear, so the likelihood has a mirror-image local minimum on the
wrong side of the road; starting from both the reading centroid and
points offset perpendicular to the local road direction, and keeping the
lowest-residual solution, resolves the reflection.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.refine import refine_location
from repro.geo.points import Point, centroid, points_as_array
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement

__all__ = ["locate_ap", "identity_lookup"]


def _fit_objective(
    channel: PathLossModel,
    positions: np.ndarray,
    rss: np.ndarray,
    candidate: Point,
) -> float:
    distances = np.linalg.norm(
        positions - np.array([candidate.x, candidate.y])[None, :], axis=1
    )
    return float(np.sum((rss - channel.mean_rss_dbm(distances)) ** 2))


def locate_ap(
    channel: PathLossModel,
    measurements: Sequence[RssMeasurement],
    *,
    offset_m: float = 40.0,
) -> Point:
    """Position one AP from its identified readings.

    Multi-start continuous ML fit: the weighted reading centroid plus two
    starts displaced perpendicular to the readings' principal axis (the
    local road direction) by ``offset_m`` on either side.  The
    lowest-residual refined solution wins, which disambiguates the
    mirror-image minimum of near-collinear reading sets.
    """
    if not measurements:
        raise ValueError("cannot locate an AP from zero readings")
    points = [m.position for m in measurements]
    rss = np.array([m.rss_dbm for m in measurements], dtype=float)
    positions = points_as_array(points)

    # Strong readings pin the AP near their own position.
    implied = channel.distance_for_rss(rss)
    weights = 1.0 / np.maximum(implied, 1.0)
    base = centroid(points, weights.tolist())

    starts = [base]
    if len(points) >= 2:
        centered = positions - positions.mean(axis=0, keepdims=True)
        # Principal axis of the reading positions = local road direction.
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        road = vt[0]
        normal = np.array([-road[1], road[0]])
        for sign in (+1.0, -1.0):
            starts.append(
                Point(
                    base.x + sign * offset_m * normal[0],
                    base.y + sign * offset_m * normal[1],
                )
            )

    best: Point = base
    best_objective = float("inf")
    for start in starts:
        refined = refine_location(channel, points, rss.tolist(), start)
        objective = _fit_objective(channel, positions, rss, refined)
        if objective < best_objective:
            best_objective = objective
            best = refined
    return best


def identity_lookup(
    channel: PathLossModel,
    measurements: Sequence[RssMeasurement],
    *,
    min_readings: int = 4,
) -> Dict[str, Point]:
    """Locate every AP appearing in an identified (BSSID-tagged) trace.

    Readings lacking a ``source_ap`` are ignored; APs with fewer than
    ``min_readings`` identified readings are skipped (insufficient
    geometry for a fit).
    """
    if min_readings < 1:
        raise ValueError(f"min_readings must be >= 1, got {min_readings}")
    groups: Dict[str, List[RssMeasurement]] = {}
    for measurement in measurements:
        if measurement.source_ap is None:
            continue
        groups.setdefault(measurement.source_ap, []).append(measurement)
    return {
        ap_id: locate_ap(channel, group)
        for ap_id, group in groups.items()
        if len(group) >= min_readings
    }
