"""Handoff policies (§6.3).

Both policies decide, for each one-second interval, which AP(s) the
user-vehicle may use — based on the *estimated* AP map it downloaded from
the crowd-server.  Actual packet reception is governed by the trace's
ground-truth beacon events, and the gap between map and truth is exactly
how lookup errors hurt connectivity (Fig. 11):

* a real AP **missing** from the map (undercounting) is never used;
* a **phantom** map entry (overcounting) is tried and delivers nothing;
* a **misplaced** entry (localization error) fails to resolve to its
  real AP when the displacement exceeds the map-match radius, so it
  behaves like a phantom while the real AP goes unused.

Candidates are the map entries in the vehicle's vicinity; each entry is
resolved to the nearest real AP within ``map_match_radius_m`` (or to
nothing, for phantoms).

* :class:`BrrPolicy` — hard handoff: the vehicle associates to the map
  entry with the highest exponentially averaged beacon reception ratio
  (optimistically initialised, so unprobed entries — including phantoms —
  get tried), and only that entry's receptions count.
* :class:`AllApPolicy` — opportunistic: a slot succeeds if *any*
  candidate's resolved AP receives; with independent bursty losses this
  multi-user diversity is the paper's winning design.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.points import Point

__all__ = [
    "SlotObservation",
    "CandidateEntry",
    "HandoffPolicy",
    "BrrPolicy",
    "AllApPolicy",
]


@dataclass(frozen=True)
class SlotObservation:
    """Ground truth for one second: which APs received, where the van was."""

    second: int
    van_position: Optional[Point]
    reception: Dict[str, Tuple[int, int]]  # ap_id -> (received, total)


@dataclass(frozen=True)
class CandidateEntry:
    """One usable map entry: its index, location, and resolved real AP."""

    map_index: int
    location: Point
    real_ap_id: Optional[str]  # None = phantom (no real AP nearby)


class HandoffPolicy(ABC):
    """Chooses usable map entries per second from an estimated AP map."""

    def __init__(
        self,
        estimated_map: Sequence[Point],
        ap_positions: Dict[str, Point],
        *,
        vicinity_radius_m: float = 120.0,
        map_match_radius_m: float = 25.0,
    ) -> None:
        if vicinity_radius_m <= 0:
            raise ValueError(
                f"vicinity_radius_m must be > 0, got {vicinity_radius_m}"
            )
        if map_match_radius_m <= 0:
            raise ValueError(
                f"map_match_radius_m must be > 0, got {map_match_radius_m}"
            )
        self.estimated_map = list(estimated_map)
        self.ap_positions = dict(ap_positions)
        self.vicinity_radius_m = vicinity_radius_m
        self.map_match_radius_m = map_match_radius_m
        # Map entries resolve to real APs once (static deployment).
        self._resolved: List[Optional[str]] = [
            self._resolve(entry) for entry in self.estimated_map
        ]

    def _resolve(self, entry: Point) -> Optional[str]:
        best_id: Optional[str] = None
        best_distance = self.map_match_radius_m
        for ap_id, position in self.ap_positions.items():
            distance = entry.distance_to(position)
            if distance <= best_distance:
                best_distance = distance
                best_id = ap_id
        return best_id

    def candidates(self, van_position: Optional[Point]) -> List[CandidateEntry]:
        """Map entries the vehicle believes are usable right now."""
        if van_position is None:
            return []
        out: List[CandidateEntry] = []
        for index, entry in enumerate(self.estimated_map):
            if van_position.distance_to(entry) <= self.vicinity_radius_m:
                out.append(
                    CandidateEntry(
                        map_index=index,
                        location=entry,
                        real_ap_id=self._resolved[index],
                    )
                )
        return out

    @staticmethod
    def _reception_ratio(
        candidate: CandidateEntry, reception: Dict[str, Tuple[int, int]]
    ) -> float:
        if candidate.real_ap_id is None:
            return 0.0
        received, total = reception.get(candidate.real_ap_id, (0, 0))
        if total == 0:
            return 0.0
        return received / total

    @abstractmethod
    def slot_success_ratio(self, observation: SlotObservation) -> float:
        """Fraction of the slot's transmissions that got through under
        this policy (0.0 when no candidate map entry is usable)."""


class BrrPolicy(HandoffPolicy):
    """Best beacon-reception-ratio hard handoff.

    Maintains an EWMA of each map entry's observed reception ratio.  New
    entries start optimistic (ratio 1.0): the vehicle trusts the
    downloaded map and tries them — which is precisely how phantom
    entries waste air time until their EWMA decays.  Each second only the
    associated entry's receptions count (hard handoff).
    """

    #: Optimistic initial EWMA for unprobed map entries.
    INITIAL_EWMA = 1.0

    def __init__(self, *args, alpha: float = 0.3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma: Dict[int, float] = {}
        self.associated: Optional[int] = None

    def slot_success_ratio(self, observation: SlotObservation) -> float:
        usable = self.candidates(observation.van_position)
        if not usable:
            self.associated = None
            return 0.0
        self.associated = max(
            (c.map_index for c in usable),
            key=lambda idx: self._ewma.get(idx, self.INITIAL_EWMA),
        )
        chosen = next(c for c in usable if c.map_index == self.associated)
        ratio = self._reception_ratio(chosen, observation.reception)
        previous = self._ewma.get(self.associated, self.INITIAL_EWMA)
        self._ewma[self.associated] = (
            self.alpha * ratio + (1.0 - self.alpha) * previous
        )
        return ratio


class AllApPolicy(HandoffPolicy):
    """Opportunistic use of every candidate map entry.

    A transmission succeeds if at least one resolved AP received it.
    With per-AP (received, total) second aggregates, the slot success is
    ``1 − Π(1 − ratio)`` over the distinct resolved APs — the union
    probability under sender-independent losses, which is what the VanLan
    measurement study reports.  Phantom entries contribute nothing but
    cost nothing either; AllAP's exposure to lookup errors is through the
    *missing* and *misplaced* entries that shrink its usable set.
    """

    def slot_success_ratio(self, observation: SlotObservation) -> float:
        usable = self.candidates(observation.van_position)
        if not usable:
            return 0.0
        resolved = {
            c.real_ap_id for c in usable if c.real_ap_id is not None
        }
        if not resolved:
            return 0.0
        failure = 1.0
        heard_any = False
        for ap_id in resolved:
            received, total = observation.reception.get(ap_id, (0, 0))
            if total == 0:
                continue
            heard_any = True
            failure *= 1.0 - received / total
        if not heard_any:
            return 0.0
        return 1.0 - failure
