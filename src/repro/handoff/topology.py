"""WiFi topology analysis over crowdsensed AP maps.

Fig. 1 lists *WiFi topology analysis* as a first-class consumer of the
middleware's lookup results, and §1 motivates it: network density,
connectivity and interference properties of large-scale WiFi deployments.
This module computes those analyses from a fused AP map:

* **density** — APs per km², overall and as a per-cell heat grid;
* **coverage** — the fraction of a route within radio range of some AP,
  and the gaps (uncovered stretches) a deployment planner would fill;
* **interference** — the conflict graph of APs close enough to interfere,
  its degree statistics, and a greedy channel assignment over the three
  non-overlapping 2.4 GHz channels (graph coloring via networkx).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory

__all__ = [
    "NON_OVERLAPPING_CHANNELS",
    "density_per_km2",
    "density_grid",
    "CoverageReport",
    "route_coverage",
    "interference_graph",
    "InterferenceReport",
    "analyze_interference",
]

#: The classic non-overlapping 2.4 GHz channels.
NON_OVERLAPPING_CHANNELS = (1, 6, 11)


def density_per_km2(aps: Sequence[Point], box: BoundingBox) -> float:
    """APs per square kilometer inside ``box``."""
    if box.area <= 0:
        raise ValueError("box has zero area")
    inside = sum(1 for ap in aps if box.contains(ap))
    return inside / (box.area / 1e6)


def density_grid(
    aps: Sequence[Point], box: BoundingBox, *, cell_m: float = 100.0
) -> np.ndarray:
    """AP counts per ``cell_m`` × ``cell_m`` cell, as an (n_rows, n_cols) array."""
    grid = Grid(box=box, lattice_length=cell_m)
    counts = np.zeros((grid.n_rows, grid.n_cols), dtype=int)
    for ap in aps:
        if box.contains(ap):
            row, col = grid.index_to_rowcol(grid.snap(ap))
            counts[row, col] += 1
    return counts


@dataclass(frozen=True)
class CoverageReport:
    """Route-coverage analysis."""

    covered_fraction: float
    gaps_m: Tuple[Tuple[float, float], ...]  # (start, end) arc lengths

    @property
    def longest_gap_m(self) -> float:
        if not self.gaps_m:
            return 0.0
        return max(end - start for start, end in self.gaps_m)


def route_coverage(
    aps: Sequence[Point],
    route: Trajectory,
    radio_range_m: float,
    *,
    sample_every_m: float = 10.0,
) -> CoverageReport:
    """Fraction of a route inside some AP's radio range, plus the gaps."""
    if radio_range_m <= 0:
        raise ValueError(f"radio_range_m must be > 0, got {radio_range_m}")
    if sample_every_m <= 0:
        raise ValueError(f"sample_every_m must be > 0, got {sample_every_m}")
    n_samples = max(2, int(np.ceil(route.length / sample_every_m)) + 1)
    distances = np.linspace(0.0, route.length, n_samples)
    covered = np.zeros(n_samples, dtype=bool)
    for index, distance in enumerate(distances):
        position = route.position_at(float(distance))
        covered[index] = any(
            position.distance_to(ap) <= radio_range_m for ap in aps
        )
    gaps: List[Tuple[float, float]] = []
    gap_start = None
    for index, is_covered in enumerate(covered):
        if not is_covered and gap_start is None:
            gap_start = distances[index]
        elif is_covered and gap_start is not None:
            gaps.append((float(gap_start), float(distances[index])))
            gap_start = None
    if gap_start is not None:
        gaps.append((float(gap_start), float(distances[-1])))
    return CoverageReport(
        covered_fraction=float(covered.mean()),
        gaps_m=tuple(gaps),
    )


def interference_graph(
    aps: Sequence[Point], interference_range_m: float
) -> nx.Graph:
    """Conflict graph: nodes are AP indices, edges join interfering pairs."""
    if interference_range_m <= 0:
        raise ValueError(
            f"interference_range_m must be > 0, got {interference_range_m}"
        )
    graph = nx.Graph()
    graph.add_nodes_from(range(len(aps)))
    for i in range(len(aps)):
        for j in range(i + 1, len(aps)):
            if aps[i].distance_to(aps[j]) <= interference_range_m:
                graph.add_edge(i, j)
    return graph


@dataclass(frozen=True)
class InterferenceReport:
    """Interference analysis of a deployment."""

    n_aps: int
    n_conflicts: int
    max_degree: int
    mean_degree: float
    channels: Dict[int, int]          # AP index -> channel
    residual_conflicts: int           # same-channel conflict edges left

    @property
    def conflict_free(self) -> bool:
        return self.residual_conflicts == 0


def analyze_interference(
    aps: Sequence[Point],
    interference_range_m: float,
    *,
    channels: Sequence[int] = NON_OVERLAPPING_CHANNELS,
) -> InterferenceReport:
    """Greedy channel assignment over the conflict graph.

    Colors the conflict graph with networkx's greedy strategy and maps
    colors onto the available channels round-robin; with more colors than
    channels, some conflicts are unavoidable and counted as residual.
    """
    if not channels:
        raise ValueError("need at least one channel")
    graph = interference_graph(aps, interference_range_m)
    coloring = nx.coloring.greedy_color(graph, strategy="largest_first")
    assignment = {
        node: channels[color % len(channels)]
        for node, color in coloring.items()
    }
    residual = sum(
        1 for a, b in graph.edges if assignment[a] == assignment[b]
    )
    degrees = [degree for _, degree in graph.degree]
    return InterferenceReport(
        n_aps=len(aps),
        n_conflicts=graph.number_of_edges(),
        max_degree=max(degrees) if degrees else 0,
        mean_degree=float(np.mean(degrees)) if degrees else 0.0,
        channels=assignment,
        residual_conflicts=residual,
    )
