"""The 10 KB TCP transfer experiment (Fig. 11).

A user-vehicle repeatedly transfers a 10 KB file over TCP to whatever
AP(s) its handoff policy allows.  The simulator walks the VanLan beacon
slots: each 100 ms slot delivers one 500-byte segment with the policy's
current success probability; a transfer that makes no progress for 10 s
is terminated and restarted afresh.  Metrics: median completed-transfer
time, and completed transfers per connectivity session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.handoff.connectivity import ADEQUATE_THRESHOLD, analyze_sessions
from repro.handoff.policies import HandoffPolicy, SlotObservation
from repro.handoff.vanlan import VanLanTrace
from repro.util.rng import RngLike, ensure_rng

__all__ = ["TransferConfig", "TransferStats", "run_transfers"]


@dataclass(frozen=True)
class TransferConfig:
    """Transfer-workload parameters (defaults = paper's experiment)."""

    file_size_bytes: int = 10_240
    segment_bytes: int = 500
    slot_period_s: float = 0.1
    stall_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.file_size_bytes <= 0 or self.segment_bytes <= 0:
            raise ValueError("file and segment sizes must be > 0")
        if self.slot_period_s <= 0:
            raise ValueError(f"slot_period_s must be > 0, got {self.slot_period_s}")
        if self.stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be > 0, got {self.stall_timeout_s}"
            )

    @property
    def segments_per_file(self) -> int:
        return int(np.ceil(self.file_size_bytes / self.segment_bytes))

    @property
    def slots_per_stall(self) -> int:
        return int(self.stall_timeout_s / self.slot_period_s)


@dataclass(frozen=True)
class TransferStats:
    """Outcome of a transfer run."""

    completed_times_s: Tuple[float, ...]
    aborted: int
    n_sessions: int

    @property
    def median_transfer_time_s(self) -> float:
        if not self.completed_times_s:
            return float("inf")
        return float(np.median(self.completed_times_s))

    @property
    def transfers_per_session(self) -> float:
        if self.n_sessions == 0:
            return 0.0
        return len(self.completed_times_s) / self.n_sessions


def run_transfers(
    trace: VanLanTrace,
    policy: HandoffPolicy,
    config: Optional[TransferConfig] = None,
    *,
    rng: RngLike = None,
) -> TransferStats:
    """Simulate back-to-back 10 KB transfers over one trace.

    Per second the policy yields a success ratio; each 100 ms slot inside
    that second delivers one segment with that probability.  Progress
    stalls are tracked slot-by-slot; exceeding the stall timeout aborts
    and restarts the current file.
    """
    config = config if config is not None else TransferConfig()
    generator = ensure_rng(rng)

    by_second = trace.reception_by_second()
    seconds = sorted(by_second)
    slots_per_second = max(1, int(round(1.0 / config.slot_period_s)))

    per_second_ratio: List[float] = []
    for second in seconds:
        observation = SlotObservation(
            second=second,
            van_position=trace.van_position_at_second(second),
            reception=by_second[second],
        )
        per_second_ratio.append(policy.slot_success_ratio(observation))

    sessions = analyze_sessions(per_second_ratio, threshold=ADEQUATE_THRESHOLD)

    completed: List[float] = []
    aborted = 0
    segments_done = 0
    slots_in_transfer = 0
    stalled_slots = 0
    for ratio in per_second_ratio:
        for _ in range(slots_per_second):
            slots_in_transfer += 1
            if generator.random() < ratio:
                segments_done += 1
                stalled_slots = 0
            else:
                stalled_slots += 1
            if segments_done >= config.segments_per_file:
                completed.append(slots_in_transfer * config.slot_period_s)
                segments_done = 0
                slots_in_transfer = 0
                stalled_slots = 0
            elif stalled_slots >= config.slots_per_stall:
                aborted += 1
                segments_done = 0
                slots_in_transfer = 0
                stalled_slots = 0
    return TransferStats(
        completed_times_s=tuple(completed),
        aborted=aborted,
        n_sessions=len(sessions.sessions),
    )
