"""Synthetic VanLan traces (§6.3's substrate, substituted per DESIGN.md).

The real VanLan dataset [2] has 11 APs across five buildings on the
Microsoft campus (828 m × 559 m), two vans driving at 25 mph, every AP
and van broadcasting a 500-byte packet at 1 Mbps every 100 ms, Atheros
radios at ~26 dBm.  We synthesize the same process: a fixed deployment,
vans on a loop, per-link reception gated by path loss and a
Gilbert–Elliott burst-loss chain (packet losses in vehicular WiFi are
bursty but independent across senders, which is exactly what makes AllAP
beat BRR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.mobility.models import PathFollower
from repro.mobility.units import mph_to_mps
from repro.radio.pathloss import PathLossModel
from repro.radio.rss import RssMeasurement
from repro.sim.world import AccessPoint, World
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "BeaconEvent",
    "VanLanConfig",
    "vanlan_world",
    "vanlan_route",
    "VanLanTrace",
    "synthesize_vanlan",
]


@dataclass(frozen=True)
class BeaconEvent:
    """One beacon transmission opportunity on one (van, AP) link."""

    time: float
    van_position: Point
    ap_id: str
    received: bool
    rss_dbm: float


@dataclass(frozen=True)
class VanLanConfig:
    """Knobs of the synthetic VanLan generator (defaults match §6.3)."""

    beacon_period_s: float = 0.1
    van_speed_mph: float = 25.0
    tx_power_dbm: float = 26.02
    radio_range_m: float = 120.0
    sensitivity_dbm: float = -88.0
    good_loss: float = 0.05       # loss probability in the GE good state
    bad_loss: float = 0.85        # loss probability in the GE bad state
    p_good_to_bad: float = 0.05   # per-beacon transition probabilities
    p_bad_to_good: float = 0.30
    shadowing_sigma_db: float = 1.5  # per-beacon log-normal fading

    def __post_init__(self) -> None:
        if self.beacon_period_s <= 0:
            raise ValueError(
                f"beacon_period_s must be > 0, got {self.beacon_period_s}"
            )
        for name in ("good_loss", "bad_loss", "p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.bad_loss < self.good_loss:
            raise ValueError("bad_loss must be >= good_loss")
        if self.shadowing_sigma_db < 0:
            raise ValueError(
                f"shadowing_sigma_db must be >= 0, got {self.shadowing_sigma_db}"
            )


def vanlan_world(config: Optional[VanLanConfig] = None) -> World:
    """The 11-AP / five-building VanLan deployment."""
    config = config if config is not None else VanLanConfig()
    clusters = {
        "building-a": (Point(120.0, 110.0), 3),
        "building-b": (Point(380.0, 90.0), 2),
        "building-c": (Point(660.0, 140.0), 2),
        "building-d": (Point(250.0, 420.0), 2),
        "building-e": (Point(620.0, 430.0), 2),
    }
    offsets = [Point(0.0, 0.0), Point(45.0, 20.0), Point(-35.0, 30.0)]
    aps: List[AccessPoint] = []
    for name, (center, count) in clusters.items():
        for index in range(count):
            offset = offsets[index]
            aps.append(
                AccessPoint(
                    ap_id=f"{name}-ap{index}",
                    position=center.translated(offset.x, offset.y),
                    radio_range_m=config.radio_range_m,
                )
            )
    channel = PathLossModel(
        tx_power_dbm=config.tx_power_dbm,
        reference_loss_db=45.6,
        path_loss_exponent=2.1,   # campus outdoor-to-outdoor with clutter
        shadowing_sigma_db=config.shadowing_sigma_db,
    )
    return World(access_points=aps, channel=channel)


def vanlan_route() -> Trajectory:
    """A campus loop passing all five buildings (Fig. 10's path).

    The northern stretch dips between the two northern buildings so each
    is observed from two road directions — a single straight pass cannot
    distinguish an AP from its mirror image across the road, and the real
    vans visit the region about ten times a day from multiple streets.
    """
    return Trajectory(
        [
            Point(60.0, 60.0),
            Point(420.0, 50.0),
            Point(760.0, 100.0),
            Point(770.0, 380.0),
            Point(650.0, 500.0),
            Point(520.0, 390.0),
            Point(390.0, 480.0),
            Point(250.0, 360.0),
            Point(120.0, 470.0),
            Point(80.0, 420.0),
            Point(50.0, 200.0),
        ],
        closed=True,
    )


@dataclass
class VanLanTrace:
    """The full synthetic trace of one van's drive."""

    events: List[BeaconEvent]
    world: World
    route: Trajectory
    config: VanLanConfig
    area: BoundingBox = field(
        default_factory=lambda: BoundingBox(0.0, 0.0, 828.0, 559.0)
    )

    def rss_trace(
        self,
        limit: Optional[int] = None,
        *,
        strongest_per_second: bool = False,
    ) -> List[RssMeasurement]:
        """Received beacons as an RSS measurement list for AP lookup.

        The paper subsamples 300 of ~12544 readings for the CS lookup;
        pass ``limit`` to take an evenly spaced subset.

        ``strongest_per_second`` keeps only the strongest received beacon
        of each one-second interval — the myopic "one RSS at a time"
        observation model the online CS engine is built on (§4.2.2).
        Without it the trace interleaves beacons from every audible AP.
        """
        received = [e for e in self.events if e.received]
        if strongest_per_second:
            by_second: Dict[int, BeaconEvent] = {}
            for event in received:
                second = int(event.time)
                best = by_second.get(second)
                if best is None or event.rss_dbm > best.rss_dbm:
                    by_second[second] = event
            received = [by_second[s] for s in sorted(by_second)]
        if limit is not None and 0 < limit < len(received):
            indices = np.linspace(0, len(received) - 1, limit).round().astype(int)
            received = [received[i] for i in np.unique(indices)]
        return [
            RssMeasurement(
                rss_dbm=e.rss_dbm,
                position=e.van_position,
                timestamp=e.time,
                source_ap=e.ap_id,
            )
            for e in received
        ]

    def reception_by_second(self) -> Dict[int, Dict[str, Tuple[int, int]]]:
        """Per-second, per-AP (received, total) beacon counts."""
        table: Dict[int, Dict[str, Tuple[int, int]]] = {}
        for event in self.events:
            second = int(event.time)
            per_ap = table.setdefault(second, {})
            received, total = per_ap.get(event.ap_id, (0, 0))
            per_ap[event.ap_id] = (received + int(event.received), total + 1)
        return table

    def van_position_at_second(self, second: int) -> Optional[Point]:
        """Van position at the start of a given second (``None`` off-trace)."""
        for event in self.events:
            if int(event.time) == second:
                return event.van_position
        return None


def synthesize_vanlan(
    *,
    duration_s: float = 600.0,
    config: Optional[VanLanConfig] = None,
    start_offset_m: float = 0.0,
    rng: RngLike = None,
) -> VanLanTrace:
    """Generate one van's beacon-level trace.

    Every ``beacon_period_s`` each in-range AP transmits one beacon; the
    van receives it unless (a) the shadow-faded RSS is below sensitivity
    or (b) the link's Gilbert–Elliott chain drops it.
    """
    config = config if config is not None else VanLanConfig()
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    generator = ensure_rng(rng)
    world = vanlan_world(config)
    route = vanlan_route()
    follower = PathFollower(
        route, mph_to_mps(config.van_speed_mph), start_offset_m=start_offset_m
    )

    # One Gilbert–Elliott chain per AP link; True = bad state.
    bad_state: Dict[str, bool] = {ap.ap_id: False for ap in world.access_points}
    events: List[BeaconEvent] = []
    n_slots = int(duration_s / config.beacon_period_s)
    for slot in range(n_slots):
        t = slot * config.beacon_period_s
        van_position = follower.position_at(t)
        for ap in world.access_points:
            distance = ap.position.distance_to(van_position)
            if distance > ap.radio_range_m:
                # Advance the chain even out of range so burst phases are
                # not frozen at the coverage edge.
                bad_state[ap.ap_id] = _advance_ge(
                    bad_state[ap.ap_id], config, generator
                )
                continue
            rss = float(world.channel.sample_rss_dbm(distance, rng=generator))
            bad_state[ap.ap_id] = _advance_ge(bad_state[ap.ap_id], config, generator)
            loss = config.bad_loss if bad_state[ap.ap_id] else config.good_loss
            received = rss >= config.sensitivity_dbm and generator.random() >= loss
            events.append(
                BeaconEvent(
                    time=t,
                    van_position=van_position,
                    ap_id=ap.ap_id,
                    received=received,
                    rss_dbm=rss,
                )
            )
    return VanLanTrace(events=events, world=world, route=route, config=config)


def _advance_ge(bad: bool, config: VanLanConfig, rng) -> bool:
    if bad:
        return not (rng.random() < config.p_bad_to_good)
    return rng.random() < config.p_good_to_bad
