"""Evaluation metrics — the paper's §6 error definitions.

* :func:`localization_error` — normalized relative distance: the matched
  true-vs-estimated AP distances summed over min(k, k̂) pairs, divided by
  ``k_min · l`` (l = lattice length).  Error < 100 % means estimates land
  within one grid diameter of the truth.
* :func:`counting_error` — ``Σ|k̂ − k| / Σk`` over grids.
* :func:`mean_distance_error` — plain mean matched distance in meters
  (the "average estimation error" the paper quotes for Figs. 5 and 9).
* :func:`bitwise_error_rate` — crowdsourced-label error of §5.2.
"""

from repro.metrics.errors import (
    bitwise_error_rate,
    counting_error,
    localization_error,
    match_estimates,
    mean_distance_error,
)
from repro.metrics.stats import (
    BootstrapResult,
    bootstrap_mean,
    bootstrap_median,
    paired_difference,
    win_rate,
)

__all__ = [
    "localization_error",
    "counting_error",
    "mean_distance_error",
    "match_estimates",
    "bitwise_error_rate",
    "BootstrapResult",
    "bootstrap_mean",
    "bootstrap_median",
    "paired_difference",
    "win_rate",
]
