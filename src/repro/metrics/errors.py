"""Error metrics exactly as defined in §6 of the paper."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.geo.points import Point, points_as_array

__all__ = [
    "match_estimates",
    "mean_distance_error",
    "localization_error",
    "counting_error",
    "bitwise_error_rate",
]


def match_estimates(
    true_locations: Sequence[Point],
    estimated_locations: Sequence[Point],
) -> List[Tuple[int, int, float]]:
    """Optimal (Hungarian) matching of estimates to ground truth.

    Returns ``(true_index, estimated_index, distance_m)`` triples for the
    min(k, k̂) matched pairs that minimise the total matched distance.
    The paper's error definition sums distances over corresponding pairs;
    optimal assignment makes "corresponding" well defined when counts
    differ or ordering is arbitrary.
    """
    if not true_locations or not estimated_locations:
        return []
    t = points_as_array(true_locations)
    e = points_as_array(estimated_locations)
    distances = np.sqrt(
        ((t[:, None, :] - e[None, :, :]) ** 2).sum(axis=-1)
    )
    rows, cols = linear_sum_assignment(distances)
    return [
        (int(r), int(c), float(distances[r, c])) for r, c in zip(rows, cols)
    ]


def mean_distance_error(
    true_locations: Sequence[Point],
    estimated_locations: Sequence[Point],
    *,
    max_match_distance_m: Optional[float] = None,
) -> float:
    """Mean matched distance in meters (``nan`` when either side is empty).

    ``max_match_distance_m`` drops pairs farther apart than the cutoff
    before averaging: when the estimate set contains a spurious entry (or
    the truth contains an AP the vehicle never drove past), the Hungarian
    assignment pairs them across the map and the "localization" average
    is dominated by what is really a *counting* mistake.  Counting error
    accounts for those separately; the cutoff keeps this metric about the
    accuracy of genuine detections.  If every pair exceeds the cutoff the
    uncut mean is returned (all detections missed — hiding that would
    overstate accuracy).
    """
    matches = match_estimates(true_locations, estimated_locations)
    if not matches:
        return float("nan")
    distances = [d for _, _, d in matches]
    if max_match_distance_m is not None:
        if max_match_distance_m <= 0:
            raise ValueError(
                f"max_match_distance_m must be > 0, got {max_match_distance_m}"
            )
        kept = [d for d in distances if d <= max_match_distance_m]
        if kept:
            distances = kept
    return float(np.mean(distances))


def localization_error(
    true_locations: Sequence[Point],
    estimated_locations: Sequence[Point],
    lattice_length_m: float,
) -> float:
    """The paper's normalized relative distance.

    ``(Σ_{i=1}^{k_min} ‖true_i − est_i‖) / (k_min · l)`` with optimally
    matched pairs.  Multiply by 100 for the percentage plotted in
    Figs. 6 and 8.  Returns ``nan`` when either set is empty (no pairs to
    compare — counting error captures that case).
    """
    if lattice_length_m <= 0:
        raise ValueError(f"lattice_length_m must be > 0, got {lattice_length_m}")
    matches = match_estimates(true_locations, estimated_locations)
    if not matches:
        return float("nan")
    k_min = len(matches)
    total = sum(d for _, _, d in matches)
    return float(total / (k_min * lattice_length_m))


def counting_error(
    true_counts: Sequence[int],
    estimated_counts: Sequence[int],
) -> float:
    """``Σ_i |k̂_i − k_i| / Σ_i k_i`` over grids (§6).

    Accepts parallel per-grid count sequences; scalars may be passed as
    length-1 sequences.
    """
    t = np.asarray(true_counts, dtype=float)
    e = np.asarray(estimated_counts, dtype=float)
    if t.shape != e.shape:
        raise ValueError(
            f"count sequences differ in shape: {t.shape} vs {e.shape}"
        )
    if t.size == 0:
        raise ValueError("counting_error needs at least one grid")
    denominator = t.sum()
    if denominator <= 0:
        raise ValueError("total true count must be > 0")
    return float(np.abs(e - t).sum() / denominator)


def bitwise_error_rate(
    true_labels: Sequence[int],
    estimated_labels: Sequence[int],
) -> float:
    """Average bit-wise error  (1/N) Σ 1[ẑ_i ≠ z_i]  over ±1 labels (§5.2)."""
    t = np.asarray(true_labels, dtype=int)
    e = np.asarray(estimated_labels, dtype=int)
    if t.shape != e.shape:
        raise ValueError(f"label shapes differ: {t.shape} vs {e.shape}")
    if t.size == 0:
        raise ValueError("bitwise_error_rate needs at least one label")
    valid = {-1, 1}
    if not set(np.unique(t)).issubset(valid) or not set(np.unique(e)).issubset(valid):
        raise ValueError("labels must be ±1")
    return float(np.mean(t != e))
