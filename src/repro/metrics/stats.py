"""Statistical helpers for the evaluation harnesses.

Bootstrap confidence intervals and paired comparisons, so benchmark
claims ("AllAP beats BRR") can be quantified rather than eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "BootstrapResult",
    "bootstrap_mean",
    "bootstrap_median",
    "paired_difference",
    "win_rate",
]


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with its bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_mean(
    samples: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapResult:
    """Percentile-bootstrap CI for the mean of ``samples``."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap_mean needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    generator = ensure_rng(rng)
    indices = generator.integers(0, data.size, size=(n_resamples, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(data.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def bootstrap_median(
    samples: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapResult:
    """Percentile-bootstrap CI for the median of ``samples``."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("bootstrap_median needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    generator = ensure_rng(rng)
    indices = generator.integers(0, data.size, size=(n_resamples, data.size))
    medians = np.median(data[indices], axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(medians, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(np.median(data)),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def paired_difference(
    a: Sequence[float],
    b: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RngLike = None,
) -> BootstrapResult:
    """Bootstrap CI for the mean of paired differences ``a_i − b_i``.

    The claim "method A beats method B" is supported when the whole
    interval lies below (errors) or above (throughputs) zero.
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.shape != b_arr.shape:
        raise ValueError(
            f"paired sequences differ in shape: {a_arr.shape} vs {b_arr.shape}"
        )
    return bootstrap_mean(
        a_arr - b_arr,
        confidence=confidence,
        n_resamples=n_resamples,
        rng=rng,
    )


def win_rate(
    a: Sequence[float], b: Sequence[float], *, smaller_is_better: bool = True
) -> float:
    """Fraction of paired trials in which ``a`` beats ``b`` (ties = ½)."""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.shape != b_arr.shape:
        raise ValueError(
            f"paired sequences differ in shape: {a_arr.shape} vs {b_arr.shape}"
        )
    if a_arr.size == 0:
        raise ValueError("win_rate needs at least one pair")
    if smaller_is_better:
        wins = (a_arr < b_arr).sum() + 0.5 * (a_arr == b_arr).sum()
    else:
        wins = (a_arr > b_arr).sum() + 0.5 * (a_arr == b_arr).sum()
    return float(wins / a_arr.size)
