"""The CrowdWiFi middleware layer (Fig. 1, §3, §5.5).

Three parties interact through a message protocol:

* :class:`CrowdVehicleClient` — runs the online CS engine while driving,
  uploads coarse AP reports, and answers the server's mapping tasks.
* :class:`CrowdServer` — stores reports, generates and assigns mapping
  tasks on a bipartite graph, infers vehicle reliabilities with KOS, and
  maintains the fine-grained per-segment AP database.
* :class:`UserVehicleClient` — downloads fused AP maps ahead of a drive
  and serves lookup queries to applications (handoff, topology analysis,
  location-based services) through :class:`LookupService`.

All messages are dataclasses with a JSON codec (:mod:`protocol`), so the
in-process client/server pair mirrors the wire protocol a deployment
would use.
"""

from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    TaskAssignmentMessage,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.database import ApDatabase, SegmentStore
from repro.middleware.durable import (
    DurableCrowdServer,
    DurableDatabase,
    DurableLog,
    DurableSegmentStore,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.middleware.client import CrowdVehicleClient, UserVehicleClient
from repro.middleware.service import LookupService
from repro.middleware.incentives import IncentiveLedger, OfferStatus, TaskOffer
from repro.middleware.segments import Segment, SegmentPlanner
from repro.middleware.fleet import CampaignOutcome, FleetCampaign, VehiclePlan

__all__ = [
    "ApRecord",
    "UploadReport",
    "TaskAssignmentMessage",
    "LabelSubmission",
    "DownloadResponse",
    "LookupRequest",
    "ErrorResponse",
    "encode_message",
    "decode_message",
    "ApDatabase",
    "SegmentStore",
    "DurableLog",
    "DurableSegmentStore",
    "DurableDatabase",
    "DurableCrowdServer",
    "CrowdServer",
    "ServerConfig",
    "CrowdVehicleClient",
    "UserVehicleClient",
    "LookupService",
    "IncentiveLedger",
    "TaskOffer",
    "OfferStatus",
    "Segment",
    "SegmentPlanner",
    "FleetCampaign",
    "VehiclePlan",
    "CampaignOutcome",
]
