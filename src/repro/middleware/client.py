"""Vehicle-side middleware clients.

* :class:`CrowdVehicleClient` — the worker party: runs online CS over a
  collected trace, uploads the coarse report, and answers mapping tasks
  by checking candidate patterns against its own observation.
* :class:`UserVehicleClient` — the consumer party: downloads fused AP
  maps before entering a road segment and answers nearby-AP queries for
  applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import OnlineCsEngine, OnlineCsResult
from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    LabelSubmission,
    TaskAssignmentMessage,
    UploadReport,
)
from repro.radio.rss import RssMeasurement
from repro.util.rng import ensure_rng

__all__ = ["CrowdVehicleClient", "UserVehicleClient"]


@dataclass
class CrowdVehicleClient:
    """A crowd-vehicle: senses, uploads, and labels mapping tasks.

    Parameters
    ----------
    vehicle_id:
        Stable identifier used in protocol messages.
    engine:
        The vehicle's online CS engine.
    pattern_tolerance_cells:
        A candidate pattern cell "matches" when one of the vehicle's own
        estimates lies within this many lattice lengths of it.
    spam_probability:
        For controlled experiments: probability of answering a task
        uniformly at random instead of honestly (1.0 turns the vehicle
        into a pure spammer).  Defaults to honest behaviour.
    """

    vehicle_id: str
    engine: OnlineCsEngine
    pattern_tolerance_cells: float = 1.5
    spam_probability: float = 0.0
    rng: object = None
    last_result: Optional[OnlineCsResult] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise ValueError("vehicle_id must be non-empty")
        if not 0.0 <= self.spam_probability <= 1.0:
            raise ValueError(
                f"spam_probability must be in [0, 1], got {self.spam_probability}"
            )
        if self.pattern_tolerance_cells <= 0:
            raise ValueError(
                "pattern_tolerance_cells must be > 0, "
                f"got {self.pattern_tolerance_cells}"
            )
        self.rng = ensure_rng(self.rng)

    # -- sensing -----------------------------------------------------------

    def sense(self, trace: Sequence[RssMeasurement]) -> OnlineCsResult:
        """Run online CS over a drive's trace and remember the result."""
        self.last_result = self.engine.process_trace(trace)
        return self.last_result

    def build_report(self, segment_id: str, timestamp: float) -> UploadReport:
        """Package the latest sensing result for upload."""
        if self.last_result is None:
            raise RuntimeError(
                f"vehicle {self.vehicle_id!r} has not sensed anything yet"
            )
        return UploadReport(
            vehicle_id=self.vehicle_id,
            segment_id=segment_id,
            timestamp=timestamp,
            aps=tuple(
                ApRecord(x=e.location.x, y=e.location.y, credits=e.credits)
                for e in self.last_result.estimates
            ),
            lattice_length_m=self.engine.config.lattice_length_m,
        )

    # -- task labeling -------------------------------------------------------

    def answer_tasks(
        self, assignment: TaskAssignmentMessage, grid: Grid
    ) -> LabelSubmission:
        """Label each assigned pattern against the vehicle's own estimates."""
        if assignment.vehicle_id != self.vehicle_id:
            raise ValueError(
                f"assignment addressed to {assignment.vehicle_id!r}, "
                f"but this vehicle is {self.vehicle_id!r}"
            )
        labels: List[Tuple[int, int]] = []
        for task_id, _segment_id, pattern in assignment.tasks:
            if self.rng.random() < self.spam_probability:
                label = 1 if self.rng.random() < 0.5 else -1
            else:
                label = self._honest_label(pattern, grid)
            labels.append((task_id, label))
        return LabelSubmission(vehicle_id=self.vehicle_id, labels=tuple(labels))

    def _honest_label(self, pattern: Sequence[int], grid: Grid) -> int:
        """+1 iff every pattern cell is near one of our own estimates.

        A pattern asks "do APs exist at these cells?"; the vehicle
        answers from its own observation.  The pattern's cells must each
        be explained by an estimate — but the vehicle may know of *more*
        APs than the pattern mentions (another vehicle's partial view),
        so no count agreement is required.
        """
        if self.last_result is None or not self.last_result.estimates:
            return -1
        own = [e.location for e in self.last_result.estimates]
        tolerance = self.pattern_tolerance_cells * grid.lattice_length
        for cell in pattern:
            cell_point = grid.point_at(int(cell))
            if not any(cell_point.distance_to(loc) <= tolerance for loc in own):
                return -1
        return 1


@dataclass
class UserVehicleClient:
    """A user-vehicle: downloads fused maps and serves nearby-AP queries."""

    vehicle_id: str
    _maps: Dict[str, DownloadResponse] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise ValueError("vehicle_id must be non-empty")

    def ingest_download(self, response: DownloadResponse) -> None:
        """Cache a downloaded segment map (newer generations replace older)."""
        current = self._maps.get(response.segment_id)
        if current is None or response.generation >= current.generation:
            self._maps[response.segment_id] = response

    def known_segments(self) -> List[str]:
        """Segment ids with a cached map, sorted for determinism."""
        return sorted(self._maps)

    def ap_locations(self, segment_id: str) -> List[Point]:
        """Fused AP locations of a cached segment."""
        if segment_id not in self._maps:
            raise KeyError(f"segment {segment_id!r} has not been downloaded")
        return [record.to_point() for record in self._maps[segment_id].aps]

    def nearest_aps(
        self, position: Point, *, count: int = 3
    ) -> List[Tuple[Point, float]]:
        """The ``count`` closest known APs to ``position`` across segments.

        Returns (location, distance) pairs, nearest first — the lookup an
        opportunistic-connection application calls while driving.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        candidates: List[Tuple[Point, float]] = []
        for response in self._maps.values():
            for record in response.aps:
                location = record.to_point()
                candidates.append((location, position.distance_to(location)))
        candidates.sort(key=lambda pair: pair[1])
        return candidates[:count]

    def aps_within(self, position: Point, radius_m: float) -> List[Point]:
        """All known APs within ``radius_m`` of ``position``."""
        if radius_m <= 0:
            raise ValueError(f"radius_m must be > 0, got {radius_m}")
        return [
            location
            for location, distance in self.nearest_aps(
                position, count=max(1, sum(len(m.aps) for m in self._maps.values()))
            )
            if distance <= radius_m
        ]
