"""Server-side storage: raw vehicle reports and fused per-segment AP maps.

The paper's crowd-server "includes a database for storing the crowdsourced
AP information and for distributing the information to potential users"
(§5.5).  :class:`ApDatabase` is that database, in-memory: a
:class:`SegmentStore` per road segment holding every raw upload plus the
current fused map with a monotonically increasing generation counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geo.points import Point
from repro.middleware.protocol import ApRecord, DownloadResponse, UploadReport

__all__ = ["SegmentStore", "ApDatabase"]


@dataclass
class SegmentStore:
    """Everything the server knows about one road segment."""

    segment_id: str
    reports: List[UploadReport] = field(default_factory=list)
    fused_aps: List[ApRecord] = field(default_factory=list)
    generation: int = 0

    def add_report(self, report: UploadReport) -> None:
        if report.segment_id != self.segment_id:
            raise ValueError(
                f"report for segment {report.segment_id!r} added to store "
                f"{self.segment_id!r}"
            )
        self.reports.append(report)

    def vehicles(self) -> List[str]:
        """Distinct vehicle ids that reported on this segment."""
        seen: List[str] = []
        for report in self.reports:
            if report.vehicle_id not in seen:
                seen.append(report.vehicle_id)
        return seen

    def latest_report_of(self, vehicle_id: str) -> Optional[UploadReport]:
        """Most recent report from one vehicle (``None`` when absent)."""
        candidates = [r for r in self.reports if r.vehicle_id == vehicle_id]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.timestamp)

    def publish(self, fused: List[ApRecord]) -> int:
        """Replace the fused map; returns the new generation number."""
        self.fused_aps = list(fused)
        self.generation += 1
        return self.generation

    def snapshot(self) -> DownloadResponse:
        """The downloadable view of this segment."""
        return DownloadResponse(
            segment_id=self.segment_id,
            aps=tuple(self.fused_aps),
            generation=self.generation,
        )


class ApDatabase:
    """All segments known to the crowd-server."""

    def __init__(self) -> None:
        self._segments: Dict[str, SegmentStore] = {}

    def segment(self, segment_id: str) -> SegmentStore:
        """Get (creating on first use) the store for a segment."""
        if not segment_id:
            raise ValueError("segment_id must be non-empty")
        if segment_id not in self._segments:
            self._segments[segment_id] = SegmentStore(segment_id=segment_id)
        return self._segments[segment_id]

    def has_segment(self, segment_id: str) -> bool:
        return segment_id in self._segments

    def segment_ids(self) -> List[str]:
        return sorted(self._segments)

    def all_fused_locations(self) -> List[Point]:
        """Fused AP locations across every segment (topology-analysis view)."""
        out: List[Point] = []
        for segment_id in self.segment_ids():
            out.extend(
                record.to_point()
                for record in self._segments[segment_id].fused_aps
            )
        return out

    def __len__(self) -> int:
        return len(self._segments)
