"""Server-side storage: raw vehicle reports and fused per-segment AP maps.

The paper's crowd-server "includes a database for storing the crowdsourced
AP information and for distributing the information to potential users"
(§5.5).  :class:`ApDatabase` is that database, in-memory: a
:class:`SegmentStore` per road segment holding every raw upload plus the
current fused map with a monotonically increasing generation counter.

Stores keep incremental caches over their append-only report log
(distinct vehicles, latest report per vehicle) and memoize the
:class:`DownloadResponse` snapshot until the next :meth:`SegmentStore.publish`,
so the hot download/round-opening paths do no per-call scans.  Append
reports through :meth:`SegmentStore.add_report`; mutating ``reports``
directly bypasses the caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geo.points import Point
from repro.middleware.protocol import ApRecord, DownloadResponse, UploadReport

__all__ = ["SegmentStore", "ApDatabase"]


@dataclass
class SegmentStore:
    """Everything the server knows about one road segment."""

    segment_id: str
    reports: List[UploadReport] = field(default_factory=list)
    fused_aps: List[ApRecord] = field(default_factory=list)
    generation: int = 0

    def __post_init__(self) -> None:
        self._vehicle_order: List[str] = []
        self._latest_by_vehicle: Dict[str, UploadReport] = {}
        self._snapshot_cache: Optional[DownloadResponse] = None
        for report in self.reports:
            self._index_report(report)

    def _index_report(self, report: UploadReport) -> None:
        latest = self._latest_by_vehicle.get(report.vehicle_id)
        if latest is None:
            self._vehicle_order.append(report.vehicle_id)
            self._latest_by_vehicle[report.vehicle_id] = report
        elif report.timestamp > latest.timestamp:
            # Strict inequality: among equal timestamps the earliest
            # upload stays the canonical latest, matching a max() scan
            # over the report log.
            self._latest_by_vehicle[report.vehicle_id] = report

    def add_report(self, report: UploadReport) -> None:
        """Append one vehicle upload to this segment's report log."""
        if report.segment_id != self.segment_id:
            raise ValueError(
                f"report for segment {report.segment_id!r} added to store "
                f"{self.segment_id!r}"
            )
        self.reports.append(report)
        self._index_report(report)

    def vehicles(self) -> List[str]:
        """Distinct vehicle ids that reported on this segment (first-seen order)."""
        return list(self._vehicle_order)

    def latest_report_of(self, vehicle_id: str) -> Optional[UploadReport]:
        """Most recent report from one vehicle (``None`` when absent)."""
        return self._latest_by_vehicle.get(vehicle_id)

    def publish(self, fused: List[ApRecord]) -> int:
        """Replace the fused map; returns the new generation number."""
        self.fused_aps = list(fused)
        self.generation += 1
        self._snapshot_cache = None
        return self.generation

    def snapshot(self) -> DownloadResponse:
        """The downloadable view of this segment (memoized until publish).

        :class:`DownloadResponse` is frozen, so handing every caller the
        same instance is safe.
        """
        if self._snapshot_cache is None:
            self._snapshot_cache = DownloadResponse(
                segment_id=self.segment_id,
                aps=tuple(self.fused_aps),
                generation=self.generation,
            )
        return self._snapshot_cache


class ApDatabase:
    """All segments known to the crowd-server."""

    def __init__(self) -> None:
        self._segments: Dict[str, SegmentStore] = {}

    def segment(self, segment_id: str) -> SegmentStore:
        """Get (creating on first use) the store for a segment."""
        if not segment_id:
            raise ValueError("segment_id must be non-empty")
        if segment_id not in self._segments:
            self._segments[segment_id] = SegmentStore(segment_id=segment_id)
        return self._segments[segment_id]

    def has_segment(self, segment_id: str) -> bool:
        """Whether any report or fused map exists for the segment."""
        return segment_id in self._segments

    def segment_ids(self) -> List[str]:
        """Every known segment id, sorted for determinism."""
        return sorted(self._segments)

    def all_fused_locations(self) -> List[Point]:
        """Fused AP locations across every segment (topology-analysis view)."""
        out: List[Point] = []
        for segment_id in self.segment_ids():
            out.extend(
                record.to_point()
                for record in self._segments[segment_id].fused_aps
            )
        return out

    def __len__(self) -> int:
        return len(self._segments)
