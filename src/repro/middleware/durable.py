"""Crash-recoverable server state: append-only log, snapshots, replay.

The crowd-server is the system of record for every uploaded report,
open crowdsourcing round and published map — in the paper's deployment
it must survive process death without losing a vehicle's contribution.
This module makes that durable with the classic write-ahead recipe,
modeled on the pull-based two-state task DB of the dashcam-processor
main-server design (SNIPPETS.md §2):

* :class:`DurableLog` — an append-only JSONL record log with fsync
  batching, plus an atomically-replaced JSON snapshot that compacts the
  log.  A record is durable once its batch is fsynced; a torn final
  line (the signature of dying mid-write) is tolerated on recovery.
* :class:`DurableSegmentStore` / :class:`DurableDatabase` — the
  in-memory :class:`~repro.middleware.database.SegmentStore` /
  :class:`~repro.middleware.database.ApDatabase` with every mutation
  journaled, and :meth:`DurableDatabase.recover` replaying
  snapshot + log back into bit-identical stores.
* :class:`DurableCrowdServer` — a :class:`~repro.middleware.server.CrowdServer`
  that additionally journals round lifecycles (task pools, label
  submissions, published outcomes) and its generator state, so
  :meth:`DurableCrowdServer.recover` reconstructs the *whole* server —
  including open rounds, which re-enter the pending-assignment table so
  vehicles simply re-pull their tasks (the SNIPPETS §2 lifecycle:
  a task stays ``pending`` until completed, and a crashed participant
  re-pulls the same task).

Log format (versioned; see docs/RUNTIME.md §6)
----------------------------------------------

``wal.jsonl`` holds one JSON object per line::

    {"v": 1, "seq": 17, "kind": "report", "data": {...}}

``seq`` increases by 1 per record and survives snapshots.  Message
payloads (reports, label submissions) are embedded as fully encoded
protocol-v2 frames, so the durable format inherits the wire codec's
versioning and exact float round-tripping.  ``snapshot.json`` holds
``{"v": 1, "upto_seq": N, "state": {...}}`` and is written with a
temp-file + ``os.replace`` swap; writing it truncates the (now
redundant) log prefix.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.crowd.assignment import BipartiteAssignment
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.database import ApDatabase, SegmentStore
from repro.middleware.protocol import (
    ApRecord,
    LabelSubmission,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import (
    CrowdServer,
    ServerConfig,
    _AggregateOutcome,
    _RoundPlan,
)
from repro.obs.recorder import Recorder, ensure_recorder
from repro.util.rng import RngLike

__all__ = [
    "DURABLE_FORMAT_VERSION",
    "DurableLogError",
    "DurableLog",
    "DurableSegmentStore",
    "DurableDatabase",
    "DurableCrowdServer",
]

#: Version tag carried by every log record and snapshot.  Bump on any
#: record-shape change and document it in the module docstring.
DURABLE_FORMAT_VERSION = 1

_WAL_NAME = "wal.jsonl"
_SNAPSHOT_NAME = "snapshot.json"


class DurableLogError(RuntimeError):
    """The durable log is corrupt beyond the tolerated torn tail."""


class DurableLog:
    """Append-only JSONL record log with fsync batching and snapshots.

    ``fsync_every`` trades durability for throughput: appended records
    are buffered and the batch is written + ``fsync``-ed once it reaches
    that size (1 = every record is durable before ``append`` returns).
    :meth:`flush` forces the batch out early; :meth:`crash` is the test
    hook that simulates process death by *discarding* the unflushed
    batch, which is exactly what the OS would lose.

    Opening a directory that already holds a log parses it immediately:
    ``recovered_snapshot`` / ``recovered_records`` expose what was found
    (records already covered by the snapshot are dropped), and the
    sequence counter continues where the log left off.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync_every: int = 1,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / _WAL_NAME
        self.snapshot_path = self.directory / _SNAPSHOT_NAME
        self.fsync_every = fsync_every
        self.recorder = ensure_recorder(recorder)
        self.recovered_snapshot, self.recovered_records = self.read(
            self.directory
        )
        last_seq = 0
        if self.recovered_snapshot is not None:
            last_seq = int(self.recovered_snapshot["upto_seq"])
        if self.recovered_records:
            last_seq = max(last_seq, int(self.recovered_records[-1]["seq"]))
        self._seq = last_seq
        self._buffer: List[str] = []
        self._suspend_depth = 0
        self._file = open(self.wal_path, "a", encoding="utf-8")
        self.appends_since_snapshot = len(self.recovered_records)

    # -- reading ---------------------------------------------------------

    @staticmethod
    def read(
        directory: Union[str, Path]
    ) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
        """Parse a log directory: ``(snapshot payload or None, records)``.

        Records already covered by the snapshot (``seq <= upto_seq``)
        are dropped.  A torn final line is ignored — it is the one
        failure mode an append-only writer can leave behind — but any
        earlier parse failure or a version mismatch raises
        :class:`DurableLogError`.
        """
        directory = Path(directory)
        snapshot: Optional[Dict[str, Any]] = None
        snapshot_path = directory / _SNAPSHOT_NAME
        if snapshot_path.exists():
            try:
                snapshot = json.loads(snapshot_path.read_text("utf-8"))
            except json.JSONDecodeError as error:
                raise DurableLogError(
                    f"corrupt snapshot {snapshot_path}: {error}"
                ) from error
            if snapshot.get("v") != DURABLE_FORMAT_VERSION:
                raise DurableLogError(
                    f"snapshot {snapshot_path} has format version "
                    f"{snapshot.get('v')!r}; this node speaks "
                    f"v{DURABLE_FORMAT_VERSION}"
                )
        records: List[Dict[str, Any]] = []
        wal_path = directory / _WAL_NAME
        if wal_path.exists():
            lines = wal_path.read_text("utf-8").splitlines()
            for number, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    if number == len(lines) - 1:
                        break  # torn tail: the crash interrupted this write
                    raise DurableLogError(
                        f"corrupt record at {wal_path}:{number + 1}: {error}"
                    ) from error
                if record.get("v") != DURABLE_FORMAT_VERSION:
                    raise DurableLogError(
                        f"record at {wal_path}:{number + 1} has format "
                        f"version {record.get('v')!r}; this node speaks "
                        f"v{DURABLE_FORMAT_VERSION}"
                    )
                records.append(record)
        if snapshot is not None:
            upto = int(snapshot["upto_seq"])
            records = [r for r in records if int(r["seq"]) > upto]
        return snapshot, records

    @property
    def is_fresh(self) -> bool:
        """Whether the directory held no snapshot and no records at open."""
        return (
            self.recovered_snapshot is None and not self.recovered_records
        )

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    # -- writing ---------------------------------------------------------

    def append(self, kind: str, data: Dict[str, Any]) -> Optional[int]:
        """Journal one record; returns its ``seq`` (None while suspended)."""
        if self._suspend_depth:
            return None
        self._seq += 1
        line = json.dumps(
            {
                "v": DURABLE_FORMAT_VERSION,
                "seq": self._seq,
                "kind": kind,
                "data": data,
            },
            sort_keys=True,
        )
        self._buffer.append(line)
        self.appends_since_snapshot += 1
        self.recorder.count("durable.appends")
        if len(self._buffer) >= self.fsync_every:
            self.flush()
        return self._seq

    def flush(self) -> None:
        """Write and fsync the buffered batch (no-op when empty)."""
        if not self._buffer:
            return
        self._file.write("\n".join(self._buffer) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        self._buffer.clear()
        self.recorder.count("durable.fsyncs")

    def close(self) -> None:
        """Flush and release the log file handle."""
        if not self._file.closed:
            self.flush()
            self._file.close()

    def crash(self) -> None:
        """Test hook: die without flushing — the buffered batch is lost."""
        self._buffer.clear()
        if not self._file.closed:
            self._file.close()

    @contextlib.contextmanager
    def suspended(self) -> Iterator[None]:
        """Silence :meth:`append` — used while replaying the log itself."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    def write_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically persist a full-state snapshot and compact the log.

        The snapshot lands via temp-file + ``os.replace`` so a crash
        mid-write leaves the previous snapshot intact; the log records
        it covers are then truncated away (they are redundant).
        """
        self.flush()
        payload = {
            "v": DURABLE_FORMAT_VERSION,
            "upto_seq": self._seq,
            "state": state,
        }
        tmp_path = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._file.close()
        self._file = open(self.wal_path, "w", encoding="utf-8")
        self.appends_since_snapshot = 0
        self.recorder.count("durable.snapshots")


# -- serialization helpers ---------------------------------------------------


def _grid_state(grid: Grid) -> Dict[str, float]:
    return {
        "min_x": grid.box.min_x,
        "min_y": grid.box.min_y,
        "max_x": grid.box.max_x,
        "max_y": grid.box.max_y,
        "lattice_length": grid.lattice_length,
    }


def _grid_from_state(state: Dict[str, float]) -> Grid:
    return Grid(
        box=BoundingBox(
            state["min_x"], state["min_y"], state["max_x"], state["max_y"]
        ),
        lattice_length=state["lattice_length"],
    )


def _records_state(records: Tuple[ApRecord, ...]) -> List[List[float]]:
    return [[r.x, r.y, r.credits] for r in records]


def _records_from_state(state: List[List[float]]) -> Tuple[ApRecord, ...]:
    return tuple(ApRecord(x=x, y=y, credits=credits) for x, y, credits in state)


def _plan_state(plan: _RoundPlan) -> Dict[str, Any]:
    return {
        "segment_id": plan.segment_id,
        "vehicles": list(plan.vehicles),
        "patterns": [sorted(pattern) for pattern in plan.patterns],
        "n_tasks": plan.assignment.n_tasks,
        "n_workers": plan.assignment.n_workers,
        "edges": [[task, worker] for task, worker in plan.assignment.edges],
    }


def _plan_from_state(state: Dict[str, Any]) -> _RoundPlan:
    return _RoundPlan(
        segment_id=state["segment_id"],
        vehicles=tuple(state["vehicles"]),
        patterns=tuple(
            frozenset(int(cell) for cell in pattern)
            for pattern in state["patterns"]
        ),
        assignment=BipartiteAssignment(
            n_tasks=int(state["n_tasks"]),
            n_workers=int(state["n_workers"]),
            edges=[(int(t), int(w)) for t, w in state["edges"]],
        ),
    )


def _store_state(store: SegmentStore) -> Dict[str, Any]:
    return {
        "reports": [encode_message(report) for report in store.reports],
        "fused": _records_state(tuple(store.fused_aps)),
        "generation": store.generation,
    }


# -- the durable database ----------------------------------------------------


class DurableSegmentStore(SegmentStore):
    """A :class:`SegmentStore` that journals every mutation.

    ``add_report`` journals the full encoded upload frame and
    ``publish`` the fused records + resulting generation, *after* the
    in-memory mutation succeeds — a rejected mutation never reaches the
    log, and the call only returns once its record is journaled (durable
    subject to the log's fsync batching).
    """

    def __init__(
        self,
        segment_id: str,
        log: DurableLog,
        *,
        reports: Optional[List[UploadReport]] = None,
        fused_aps: Optional[List[ApRecord]] = None,
        generation: int = 0,
    ) -> None:
        self._log = log
        super().__init__(
            segment_id=segment_id,
            reports=list(reports) if reports is not None else [],
            fused_aps=list(fused_aps) if fused_aps is not None else [],
            generation=generation,
        )

    def add_report(self, report: UploadReport) -> None:
        """Append one upload and journal its encoded frame."""
        super().add_report(report)
        self._log.append("report", {"frame": encode_message(report)})

    def publish(self, fused: List[ApRecord]) -> int:
        """Replace the fused map and journal records + new generation."""
        generation = super().publish(fused)
        self._log.append(
            "publish",
            {
                "segment_id": self.segment_id,
                "aps": _records_state(tuple(self.fused_aps)),
                "generation": generation,
            },
        )
        return generation


class DurableDatabase(ApDatabase):
    """An :class:`ApDatabase` whose stores journal into one shared log."""

    def __init__(self, log: DurableLog) -> None:
        super().__init__()
        self._log = log

    @property
    def log(self) -> DurableLog:
        """The shared journal every store of this database appends to."""
        return self._log

    def segment(self, segment_id: str) -> SegmentStore:
        """Get (creating on first use) the durable store for a segment."""
        if not segment_id:
            raise ValueError("segment_id must be non-empty")
        if segment_id not in self._segments:
            self._segments[segment_id] = DurableSegmentStore(
                segment_id, self._log
            )
        return self._segments[segment_id]

    def install_segment(
        self,
        segment_id: str,
        *,
        reports: List[UploadReport],
        fused_aps: List[ApRecord],
        generation: int,
    ) -> None:
        """Install a recovered store wholesale (replaces any existing one)."""
        self._segments[segment_id] = DurableSegmentStore(
            segment_id,
            self._log,
            reports=reports,
            fused_aps=fused_aps,
            generation=generation,
        )

    def snapshot_state(self) -> Dict[str, Any]:
        """The database's full state as a JSON-ready snapshot section."""
        return {
            segment_id: _store_state(self.segment(segment_id))
            for segment_id in self.segment_ids()
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install every store of a snapshot section (journal-silent)."""
        for segment_id, store_state in state.items():
            reports = [
                _expect(decode_message(frame), UploadReport)
                for frame in store_state["reports"]
            ]
            self.install_segment(
                segment_id,
                reports=reports,
                fused_aps=list(_records_from_state(store_state["fused"])),
                generation=int(store_state["generation"]),
            )

    def apply_record(self, record: Dict[str, Any]) -> None:
        """Replay one store-level log record (journal must be suspended)."""
        kind = record["kind"]
        data = record["data"]
        if kind == "report":
            report = _expect(decode_message(data["frame"]), UploadReport)
            self.segment(report.segment_id).add_report(report)
        elif kind == "publish":
            store = self.segment(data["segment_id"])
            store.publish(list(_records_from_state(data["aps"])))
            if store.generation != int(data["generation"]):
                raise DurableLogError(
                    f"replayed generation {store.generation} != journaled "
                    f"{data['generation']} on {data['segment_id']!r}"
                )
        else:
            raise DurableLogError(f"unknown record kind {kind!r}")

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        *,
        fsync_every: int = 1,
        recorder: Optional[Recorder] = None,
    ) -> "DurableDatabase":
        """Rebuild a database bit-identically from snapshot + log replay."""
        rec = ensure_recorder(recorder)
        log = DurableLog(directory, fsync_every=fsync_every, recorder=rec)
        database = cls(log)
        with rec.span("durable.recover"), log.suspended():
            if log.recovered_snapshot is not None:
                database.restore_state(
                    log.recovered_snapshot["state"]["segments"]
                )
            for record in log.recovered_records:
                database.apply_record(record)
                rec.count("durable.records.replayed")
        return database

    def write_snapshot(self) -> None:
        """Persist the full database state and compact the log."""
        self._log.write_snapshot({"segments": self.snapshot_state()})


def _expect(message: Any, cls: type) -> Any:
    if not isinstance(message, cls):
        raise DurableLogError(
            f"journaled frame decoded to {type(message).__name__}, "
            f"expected {cls.__name__}"
        )
    return message


# -- the durable crowd-server ------------------------------------------------


class DurableCrowdServer(CrowdServer):
    """A crowd-server whose full state survives process death.

    Everything the in-memory server mutates is journaled through one
    :class:`DurableLog`: segment registrations (with their grids),
    uploaded reports, installed rounds (the task pool, so assignments
    re-enter ``pending`` on recovery and vehicles re-pull them), label
    submissions, published outcomes (reliabilities + fused records) and
    the server's own generator state after every draw batch.
    :meth:`recover` replays snapshot + log and reconstructs the server
    bit-identically — stores, open pools, pending assignments,
    reliabilities and the random stream all resume exactly where the
    dead process left them.

    ``snapshot_every`` bounds replay work: once that many records have
    accumulated since the last snapshot, the next mutating operation
    writes a fresh snapshot and compacts the log.
    """

    def __init__(
        self,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        super().__init__(config, rng=rng, recorder=recorder)
        self._log = DurableLog(
            durable_dir, fsync_every=fsync_every, recorder=self.recorder
        )
        self.database = DurableDatabase(self._log)
        self._snapshot_every = snapshot_every
        if self._log.is_fresh:
            self._journal_rng()

    @property
    def log(self) -> DurableLog:
        """The journal this server and its database append to."""
        return self._log

    def close(self) -> None:
        """Flush and close the underlying log."""
        self._log.close()

    # -- journaling hooks -------------------------------------------------

    def _journal_rng(self) -> None:
        self._log.append("rng_state", {"state": self._rng.bit_generator.state})

    def _maybe_snapshot(self) -> None:
        if (
            self._snapshot_every is not None
            and self._log.appends_since_snapshot >= self._snapshot_every
        ):
            self.write_snapshot()

    def register_segment(self, segment_id: str, grid: Grid) -> None:
        """Declare a segment, journaling its id and grid."""
        self._log.append(
            "segment_registered",
            {"segment_id": segment_id, "grid": _grid_state(grid)},
        )
        super().register_segment(segment_id, grid)
        self._maybe_snapshot()

    def receive_report(self, report: UploadReport) -> None:
        """Store an uploaded report (journaled by the durable store)."""
        # The store journals the report itself; this override only adds
        # the snapshot cadence check.
        super().receive_report(report)
        self._maybe_snapshot()

    def _install_round(self, plan: _RoundPlan):
        self._log.append("round_opened", _plan_state(plan))
        return super()._install_round(plan)

    def submit_labels(self, segment_id: str, submission: LabelSubmission) -> None:
        """Record one vehicle's answers and journal the submission."""
        super().submit_labels(segment_id, submission)
        self._log.append(
            "labels",
            {
                "segment_id": segment_id,
                "frame": encode_message(submission),
            },
        )
        self._maybe_snapshot()

    def _publish_outcome(self, outcome: _AggregateOutcome):
        self._log.append(
            "round_published",
            {
                "segment_id": outcome.segment_id,
                "reliabilities": [
                    [vehicle_id, reliability]
                    for vehicle_id, reliability in outcome.reliabilities
                ],
                "records": _records_state(outcome.records),
            },
        )
        # The rich record above carries everything replay needs; the
        # store-level publish journaling would only duplicate it.
        with self._log.suspended():
            return super()._publish_outcome(outcome)

    def open_round(self, segment_id: str):
        """Open one round, journaling the pool and post-draw rng state."""
        result = super().open_round(segment_id)
        self._journal_rng()
        self._maybe_snapshot()
        return result

    def open_rounds(self, segment_ids, *, n_workers=None, rngs=None):
        """Open a round per segment, journaling pools and rng state."""
        result = super().open_rounds(
            segment_ids, n_workers=n_workers, rngs=rngs
        )
        if rngs is None:
            self._journal_rng()
        self._maybe_snapshot()
        return result

    def aggregate(self, segment_id: str):
        """Aggregate one round, journaling the outcome and rng state."""
        result = super().aggregate(segment_id)
        self._journal_rng()
        self._maybe_snapshot()
        return result

    def aggregate_rounds(self, segment_ids, *, n_workers=None, rngs=None):
        """Aggregate completed rounds, journaling outcomes and rng state."""
        result = super().aggregate_rounds(
            segment_ids, n_workers=n_workers, rngs=rngs
        )
        if rngs is None:
            self._journal_rng()
        self._maybe_snapshot()
        return result

    # -- snapshot & recovery ----------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """The server's full state as a JSON-ready dict."""
        assert isinstance(self.database, DurableDatabase)
        pools = {}
        for segment_id, pool in self._pools.items():
            plan = _RoundPlan(
                segment_id=segment_id,
                vehicles=tuple(pool.vehicle_order),
                patterns=tuple(pattern for _, pattern in pool.tasks),
                assignment=pool.assignment,
            )
            pools[segment_id] = {
                "plan": _plan_state(plan),
                "labels": [int(v) for v in pool.labels.ravel()],
                "submissions_seen": [
                    vehicle_id
                    for vehicle_id, seen in pool.submissions_seen.items()
                    if seen
                ],
            }
        return {
            "grids": {
                segment_id: _grid_state(grid)
                for segment_id, grid in sorted(self._grids.items())
            },
            "segments": self.database.snapshot_state(),
            "pools": pools,
            "reliabilities": dict(sorted(self._reliabilities.items())),
            "rng": self._rng.bit_generator.state,
        }

    def write_snapshot(self) -> None:
        """Persist the full server state and compact the log."""
        self._log.write_snapshot(self.snapshot_state())

    def _restore_state(self, state: Dict[str, Any]) -> None:
        assert isinstance(self.database, DurableDatabase)
        for segment_id, grid_state in state["grids"].items():
            self._grids[segment_id] = _grid_from_state(grid_state)
            self.database.segment(segment_id)
        self.database.restore_state(state["segments"])
        for segment_id, pool_state in state["pools"].items():
            plan = _plan_from_state(pool_state["plan"])
            super()._install_round(plan)
            pool = self._pools[segment_id]
            pool.labels[...] = np.asarray(
                pool_state["labels"], dtype=int
            ).reshape(pool.labels.shape)
            for vehicle_id in pool_state["submissions_seen"]:
                pool.submissions_seen[vehicle_id] = True
        self._reliabilities.update(state["reliabilities"])
        self._rng.bit_generator.state = state["rng"]

    def apply_record(self, record: Dict[str, Any]) -> None:
        """Replay one log record (journal must be suspended)."""
        assert isinstance(self.database, DurableDatabase)
        kind = record["kind"]
        data = record["data"]
        if kind == "segment_registered":
            super().register_segment(
                data["segment_id"], _grid_from_state(data["grid"])
            )
        elif kind in ("report", "publish"):
            self.database.apply_record(record)
        elif kind == "round_opened":
            super()._install_round(_plan_from_state(data))
        elif kind == "labels":
            submission = _expect(
                decode_message(data["frame"]), LabelSubmission
            )
            super().submit_labels(data["segment_id"], submission)
        elif kind == "round_published":
            outcome = _AggregateOutcome(
                segment_id=data["segment_id"],
                reliabilities=tuple(
                    (vehicle_id, float(reliability))
                    for vehicle_id, reliability in data["reliabilities"]
                ),
                records=_records_from_state(data["records"]),
            )
            super()._publish_outcome(outcome)
        elif kind == "rng_state":
            self._rng.bit_generator.state = data["state"]
        else:
            raise DurableLogError(f"unknown record kind {kind!r}")

    def replay_recovered(self) -> None:
        """Apply whatever the log held at open time (no-op when fresh)."""
        with self.recorder.span("durable.recover"), self._log.suspended():
            if self._log.recovered_snapshot is not None:
                self._restore_state(self._log.recovered_snapshot["state"])
            for record in self._log.recovered_records:
                self.apply_record(record)
                self.recorder.count("durable.records.replayed")

    @classmethod
    def recover(
        cls,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
    ) -> "DurableCrowdServer":
        """Reconstruct the server bit-identically from its durable dir.

        ``rng`` only seeds the stream when the log holds no
        ``rng_state`` record (it always does for a server that journaled
        anything); a recovered stream resumes exactly where the dead
        process left it.
        """
        server = cls(
            durable_dir,
            config,
            rng=rng,
            recorder=recorder,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
        )
        server.replay_recovered()
        return server
