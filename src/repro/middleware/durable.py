"""Crash-recoverable server state: append-only log, snapshots, replay.

The crowd-server is the system of record for every uploaded report,
open crowdsourcing round and published map — in the paper's deployment
it must survive process death without losing a vehicle's contribution.
This module makes that durable with the classic write-ahead recipe,
modeled on the pull-based two-state task DB of the dashcam-processor
main-server design (SNIPPETS.md §2):

* :class:`DurableLog` — an append-only JSONL record log with fsync
  batching, plus an atomically-replaced JSON snapshot that compacts the
  log.  A record is durable once its batch is fsynced; a torn final
  line (the signature of dying mid-write) is tolerated on recovery.
* :class:`DurableSegmentStore` / :class:`DurableDatabase` — the
  in-memory :class:`~repro.middleware.database.SegmentStore` /
  :class:`~repro.middleware.database.ApDatabase` with every mutation
  journaled, and :meth:`DurableDatabase.recover` replaying
  snapshot + log back into bit-identical stores.
* :class:`DurableCrowdServer` — a :class:`~repro.middleware.server.CrowdServer`
  that additionally journals round lifecycles (task pools, label
  submissions, published outcomes) and its generator state, so
  :meth:`DurableCrowdServer.recover` reconstructs the *whole* server —
  including open rounds, which re-enter the pending-assignment table so
  vehicles simply re-pull their tasks (the SNIPPETS §2 lifecycle:
  a task stays ``pending`` until completed, and a crashed participant
  re-pulls the same task).

Log format (versioned; see docs/RUNTIME.md §6)
----------------------------------------------

``wal.jsonl`` holds one JSON object per line::

    {"v": 1, "seq": 17, "kind": "report", "data": {...}}

``seq`` increases by 1 per record and survives snapshots.  Message
payloads (reports, label submissions) are embedded as fully encoded
protocol-v2 frames, so the durable format inherits the wire codec's
versioning and exact float round-tripping.  ``snapshot.json`` holds
``{"v": 1, "upto_seq": N, "state": {...}}`` and is written with a
temp-file + ``os.replace`` swap; writing it truncates the (now
redundant) log prefix.
"""

from __future__ import annotations

import contextlib
import json
import mmap
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.crowd.assignment import BipartiteAssignment
from repro.geo.grid import Grid
from repro.geo.points import BoundingBox
from repro.middleware.database import ApDatabase, SegmentStore
from repro.middleware.protocol import (
    ApRecord,
    LabelSubmission,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import (
    CrowdServer,
    ServerConfig,
    _AggregateOutcome,
    _RoundPlan,
)
from repro.obs.recorder import Recorder, ensure_recorder
from repro.util.rng import RngLike

__all__ = [
    "DURABLE_FORMAT_VERSION",
    "DurableLogError",
    "DurableLog",
    "BlockDurableLog",
    "detect_wal_format",
    "open_wal",
    "DurableSegmentStore",
    "DurableDatabase",
    "DurableCrowdServer",
]

#: Version tag carried by every log record and snapshot.  Bump on any
#: record-shape change and document it in the module docstring.
DURABLE_FORMAT_VERSION = 1

_WAL_NAME = "wal.jsonl"
_BLOCK_WAL_NAME = "wal.blk"
_SNAPSHOT_NAME = "snapshot.json"

#: Write granularity of :class:`BlockDurableLog`: every durable batch is
#: zero-padded to a multiple of this, so concurrent shard processes
#: never contend on a shared filesystem-journal commit for sub-block
#: appends (the jsonl log's scaling ceiling — see docs/SERVING.md).
_WAL_BLOCK_BYTES = 4096

#: Initial preallocation of a block WAL; doubles on demand.  Preallocating
#: keeps the O_DSYNC append path free of block-allocation metadata
#: transactions, which would otherwise serialize across processes in the
#: filesystem journal exactly like fsync does.
_INITIAL_BLOCK_WAL_BYTES = 8 * 1024 * 1024


class DurableLogError(RuntimeError):
    """The durable log is corrupt beyond the tolerated torn tail."""


def _read_snapshot_file(snapshot_path: Path) -> Optional[Dict[str, Any]]:
    """Parse a snapshot file (shared by both WAL formats)."""
    if not snapshot_path.exists():
        return None
    try:
        snapshot: Dict[str, Any] = json.loads(
            snapshot_path.read_text("utf-8")
        )
    except json.JSONDecodeError as error:
        raise DurableLogError(
            f"corrupt snapshot {snapshot_path}: {error}"
        ) from error
    if snapshot.get("v") != DURABLE_FORMAT_VERSION:
        raise DurableLogError(
            f"snapshot {snapshot_path} has format version "
            f"{snapshot.get('v')!r}; this node speaks "
            f"v{DURABLE_FORMAT_VERSION}"
        )
    return snapshot


class DurableLog:
    """Append-only JSONL record log with fsync batching and snapshots.

    ``fsync_every`` trades durability for throughput: appended records
    are buffered and the batch is written + ``fsync``-ed once it reaches
    that size (1 = every record is durable before ``append`` returns).
    :meth:`flush` forces the batch out early; :meth:`crash` is the test
    hook that simulates process death by *discarding* the unflushed
    batch, which is exactly what the OS would lose.

    Opening a directory that already holds a log parses it immediately:
    ``recovered_snapshot`` / ``recovered_records`` expose what was found
    (records already covered by the snapshot are dropped), and the
    sequence counter continues where the log left off.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync_every: int = 1,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / self.WAL_NAME
        self.snapshot_path = self.directory / _SNAPSHOT_NAME
        self.fsync_every = fsync_every
        self.recorder = ensure_recorder(recorder)
        self._reject_foreign_wal()
        self.recovered_snapshot, self.recovered_records = self.read(
            self.directory
        )
        last_seq = 0
        if self.recovered_snapshot is not None:
            last_seq = int(self.recovered_snapshot["upto_seq"])
        if self.recovered_records:
            last_seq = max(last_seq, int(self.recovered_records[-1]["seq"]))
        self._seq = last_seq
        self._buffer: List[str] = []
        self._suspend_depth = 0
        self._open_output()
        self.appends_since_snapshot = len(self.recovered_records)

    #: Log file name; :class:`BlockDurableLog` overrides it, and the two
    #: formats refuse to open each other's directories (see
    #: :meth:`_reject_foreign_wal`).
    WAL_NAME = _WAL_NAME

    def _reject_foreign_wal(self) -> None:
        """Refuse a directory already journaled in the other WAL format."""
        for foreign in (_WAL_NAME, _BLOCK_WAL_NAME):
            if foreign == self.WAL_NAME:
                continue
            foreign_path = self.directory / foreign
            if foreign_path.exists() and foreign_path.stat().st_size > 0:
                raise DurableLogError(
                    f"{self.directory} already holds a {foreign} log; "
                    f"refusing to open it as {self.WAL_NAME} "
                    "(pass the matching wal_format, or recover with "
                    "detect_wal_format)"
                )

    # -- reading ---------------------------------------------------------

    @staticmethod
    def read(
        directory: Union[str, Path]
    ) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
        """Parse a log directory: ``(snapshot payload or None, records)``.

        Records already covered by the snapshot (``seq <= upto_seq``)
        are dropped.  A torn final line is ignored — it is the one
        failure mode an append-only writer can leave behind — but any
        earlier parse failure or a version mismatch raises
        :class:`DurableLogError`.
        """
        directory = Path(directory)
        snapshot = _read_snapshot_file(directory / _SNAPSHOT_NAME)
        records: List[Dict[str, Any]] = []
        wal_path = directory / _WAL_NAME
        if wal_path.exists():
            lines = wal_path.read_text("utf-8").splitlines()
            for number, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    if number == len(lines) - 1:
                        break  # torn tail: the crash interrupted this write
                    raise DurableLogError(
                        f"corrupt record at {wal_path}:{number + 1}: {error}"
                    ) from error
                if record.get("v") != DURABLE_FORMAT_VERSION:
                    raise DurableLogError(
                        f"record at {wal_path}:{number + 1} has format "
                        f"version {record.get('v')!r}; this node speaks "
                        f"v{DURABLE_FORMAT_VERSION}"
                    )
                records.append(record)
        if snapshot is not None:
            upto = int(snapshot["upto_seq"])
            records = [r for r in records if int(r["seq"]) > upto]
        return snapshot, records

    @property
    def is_fresh(self) -> bool:
        """Whether the directory held no snapshot and no records at open."""
        return (
            self.recovered_snapshot is None and not self.recovered_records
        )

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    # -- writing ---------------------------------------------------------

    def append(self, kind: str, data: Dict[str, Any]) -> Optional[int]:
        """Journal one record; returns its ``seq`` (None while suspended)."""
        if self._suspend_depth:
            return None
        self._seq += 1
        line = json.dumps(
            {
                "v": DURABLE_FORMAT_VERSION,
                "seq": self._seq,
                "kind": kind,
                "data": data,
            },
            sort_keys=True,
        )
        self._buffer.append(line)
        self.appends_since_snapshot += 1
        self.recorder.count("durable.appends")
        if len(self._buffer) >= self.fsync_every:
            self.flush()
        return self._seq

    def flush(self) -> None:
        """Durably write the buffered batch in one barrier (no-op if empty)."""
        if not self._buffer:
            return
        self._write_batch(self._buffer)
        self._buffer.clear()
        self.recorder.count("durable.fsyncs")

    def close(self) -> None:
        """Flush and release the log file handle."""
        if not self._output_closed():
            self.flush()
            self._close_output()

    def crash(self) -> None:
        """Test hook: die without flushing — the buffered batch is lost."""
        self._buffer.clear()
        if not self._output_closed():
            self._close_output()

    # -- output seams (overridden by BlockDurableLog) ---------------------

    def _open_output(self) -> None:
        self._file = open(self.wal_path, "a", encoding="utf-8")

    def _write_batch(self, lines: List[str]) -> None:
        self._file.write("\n".join(lines) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def _close_output(self) -> None:
        self._file.close()

    def _output_closed(self) -> bool:
        return self._file.closed

    def _reset_wal(self) -> None:
        """Truncate the (snapshot-covered, now redundant) log records."""
        self._file.close()
        self._file = open(self.wal_path, "w", encoding="utf-8")

    @contextlib.contextmanager
    def suspended(self) -> Iterator[None]:
        """Silence :meth:`append` — used while replaying the log itself."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    def write_snapshot(self, state: Dict[str, Any]) -> None:
        """Atomically persist a full-state snapshot and compact the log.

        The snapshot lands via temp-file + ``os.replace`` so a crash
        mid-write leaves the previous snapshot intact; the log records
        it covers are then truncated away (they are redundant).
        """
        self.flush()
        payload = {
            "v": DURABLE_FORMAT_VERSION,
            "upto_seq": self._seq,
            "state": state,
        }
        tmp_path = self.snapshot_path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._reset_wal()
        self.appends_since_snapshot = 0
        self.recorder.count("durable.snapshots")


class BlockDurableLog(DurableLog):
    """A :class:`DurableLog` on block-aligned ``O_DSYNC`` appends.

    Same record format, same snapshot file, same public surface — only
    the write path differs.  The jsonl log's ``write + fsync`` pairs all
    commit through the filesystem journal, which serializes *across
    processes*: four shard workers flushing concurrently see barely more
    throughput than one.  This log instead preallocates ``wal.blk``,
    pads every flushed batch to a 4 KiB block multiple, and appends with
    a single ``pwrite`` on an ``O_DSYNC`` (and, where the filesystem
    supports it, ``O_DIRECT``) descriptor: each write is its own device
    barrier with no journal transaction, so independent WAL lanes
    genuinely overlap and a multi-process serving tier scales with the
    device's flush parallelism instead of the journal's single commit
    lock (measured curves in ``BENCH_serving.json``).

    Recovery semantics match the jsonl log: a batch is durable once its
    ``pwrite`` returns; a torn tail — a batch the crash interrupted,
    whose records were never acknowledged — is dropped; and the next
    writer resumes at the first block boundary past the last readable
    record, overwriting any torn garbage.  Zeroed preallocated space
    marks the end of the log, which is why padding uses NULs.
    """

    WAL_NAME = _BLOCK_WAL_NAME

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        fsync_every: int = 1,
        recorder: Optional[Recorder] = None,
        o_direct: bool = True,
    ) -> None:
        self._o_direct_requested = o_direct
        self.o_direct = False
        self._fd = -1
        self._closed = False
        self._write_offset = 0
        self._capacity = 0
        self._scratch: Optional[mmap.mmap] = None
        super().__init__(
            directory, fsync_every=fsync_every, recorder=recorder
        )

    # -- reading ---------------------------------------------------------

    @staticmethod
    def read(
        directory: Union[str, Path]
    ) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
        """Parse a block-log directory: ``(snapshot or None, records)``."""
        directory = Path(directory)
        snapshot = _read_snapshot_file(directory / _SNAPSHOT_NAME)
        records, _ = BlockDurableLog._scan(directory / _BLOCK_WAL_NAME)
        if snapshot is not None:
            upto = int(snapshot["upto_seq"])
            records = [r for r in records if int(r["seq"]) > upto]
        return snapshot, records

    @staticmethod
    def _scan(wal_path: Path) -> Tuple[List[Dict[str, Any]], int]:
        """Parse the block WAL: ``(records, resume write offset)``.

        Batches are newline-joined record lines zero-padded to a block
        multiple.  An unparseable line is a torn batch: scanning skips
        to the next block boundary and continues if a later writer
        resumed there, or stops at the zeroed free space.  None of a
        torn batch's records were ever acknowledged, so dropping its
        tail loses nothing a client was promised.
        """
        records: List[Dict[str, Any]] = []
        if not wal_path.exists():
            return records, 0
        data = wal_path.read_bytes()
        offset = 0
        block = _WAL_BLOCK_BYTES
        while offset < len(data):
            head = data[offset]
            if head == 0:
                break  # zeroed preallocated space: end of the log
            end = data.find(b"\n", offset)
            line = data[offset:end] if end >= 0 else b""
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn batch: resume at the next block boundary in case
                # a post-recovery writer continued there.
                offset = ((offset // block) + 1) * block
                continue
            if record.get("v") != DURABLE_FORMAT_VERSION:
                raise DurableLogError(
                    f"record at {wal_path} offset {offset} has format "
                    f"version {record.get('v')!r}; this node speaks "
                    f"v{DURABLE_FORMAT_VERSION}"
                )
            records.append(record)
            offset = end + 1
            if offset < len(data) and data[offset] == 0:
                # Batch padding: skip to the next block boundary.
                offset = -(-offset // block) * block
        return records, -(-offset // block) * block

    # -- output seams -----------------------------------------------------

    def _open_output(self) -> None:
        flags = os.O_RDWR | os.O_CREAT | getattr(os, "O_DSYNC", os.O_SYNC)
        if self._o_direct_requested and hasattr(os, "O_DIRECT"):
            try:
                self._fd = os.open(
                    self.wal_path, flags | os.O_DIRECT, 0o644
                )
                self.o_direct = True
            except OSError:
                self._fd = -1  # filesystem refuses O_DIRECT; fall back
                self.recorder.count("durable.odirect_fallbacks")
        if self._fd < 0:
            self._fd = os.open(self.wal_path, flags, 0o644)
        _, self._write_offset = self._scan(self.wal_path)
        size = os.fstat(self._fd).st_size
        self._capacity = max(size, _INITIAL_BLOCK_WAL_BYTES)
        if size < self._capacity:
            os.ftruncate(self._fd, self._capacity)
            os.fsync(self._fd)
        if self.o_direct:
            self._scratch = mmap.mmap(-1, 16 * _WAL_BLOCK_BYTES)

    def _write_batch(self, lines: List[str]) -> None:
        blob = ("\n".join(lines) + "\n").encode("utf-8")
        block = _WAL_BLOCK_BYTES
        padded = -(-len(blob) // block) * block
        if self._write_offset + padded > self._capacity:
            self._capacity = max(
                self._capacity * 2, self._write_offset + padded
            )
            os.ftruncate(self._fd, self._capacity)
            os.fsync(self._fd)
        if self._scratch is not None:
            if padded > len(self._scratch):
                self._scratch.close()
                self._scratch = mmap.mmap(-1, 2 * padded)
            view = memoryview(self._scratch)
            view[: len(blob)] = blob
            view[len(blob):padded] = b"\0" * (padded - len(blob))
            os.pwrite(self._fd, view[:padded], self._write_offset)
        else:
            os.pwrite(
                self._fd,
                blob + b"\0" * (padded - len(blob)),
                self._write_offset,
            )
        self._write_offset += padded

    def _close_output(self) -> None:
        self._closed = True
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1
        if self._scratch is not None:
            self._scratch.close()
            self._scratch = None

    def _output_closed(self) -> bool:
        return self._closed

    def _reset_wal(self) -> None:
        # Truncating to zero deallocates every block (reads as NULs =
        # end-of-log) and re-preallocating restores the append runway.
        os.ftruncate(self._fd, 0)
        os.ftruncate(self._fd, self._capacity)
        os.fsync(self._fd)
        self._write_offset = 0


def detect_wal_format(directory: Union[str, Path]) -> Optional[str]:
    """Which WAL format a durable directory holds (``None`` when fresh)."""
    directory = Path(directory)
    if (directory / _BLOCK_WAL_NAME).exists():
        return "block"
    if (directory / _WAL_NAME).exists():
        return "jsonl"
    return None


def open_wal(
    directory: Union[str, Path],
    *,
    wal_format: Optional[str] = None,
    fsync_every: int = 1,
    recorder: Optional[Recorder] = None,
) -> DurableLog:
    """Open a durable log, detecting the on-disk format when unspecified.

    ``wal_format`` is ``"jsonl"``, ``"block"``, or ``None`` to reuse
    whatever the directory already holds (defaulting to ``"jsonl"``
    when fresh).
    """
    fmt = wal_format or detect_wal_format(directory) or "jsonl"
    if fmt == "block":
        return BlockDurableLog(
            directory, fsync_every=fsync_every, recorder=recorder
        )
    if fmt != "jsonl":
        raise ValueError(
            f"wal_format must be 'jsonl' or 'block', got {fmt!r}"
        )
    return DurableLog(directory, fsync_every=fsync_every, recorder=recorder)


# -- serialization helpers ---------------------------------------------------


def _grid_state(grid: Grid) -> Dict[str, float]:
    return {
        "min_x": grid.box.min_x,
        "min_y": grid.box.min_y,
        "max_x": grid.box.max_x,
        "max_y": grid.box.max_y,
        "lattice_length": grid.lattice_length,
    }


def _grid_from_state(state: Dict[str, float]) -> Grid:
    return Grid(
        box=BoundingBox(
            state["min_x"], state["min_y"], state["max_x"], state["max_y"]
        ),
        lattice_length=state["lattice_length"],
    )


def _records_state(records: Tuple[ApRecord, ...]) -> List[List[float]]:
    return [[r.x, r.y, r.credits] for r in records]


def _records_from_state(state: List[List[float]]) -> Tuple[ApRecord, ...]:
    return tuple(ApRecord(x=x, y=y, credits=credits) for x, y, credits in state)


def _plan_state(plan: _RoundPlan) -> Dict[str, Any]:
    return {
        "segment_id": plan.segment_id,
        "vehicles": list(plan.vehicles),
        "patterns": [sorted(pattern) for pattern in plan.patterns],
        "n_tasks": plan.assignment.n_tasks,
        "n_workers": plan.assignment.n_workers,
        "edges": [[task, worker] for task, worker in plan.assignment.edges],
    }


def _plan_from_state(state: Dict[str, Any]) -> _RoundPlan:
    return _RoundPlan(
        segment_id=state["segment_id"],
        vehicles=tuple(state["vehicles"]),
        patterns=tuple(
            frozenset(int(cell) for cell in pattern)
            for pattern in state["patterns"]
        ),
        assignment=BipartiteAssignment(
            n_tasks=int(state["n_tasks"]),
            n_workers=int(state["n_workers"]),
            edges=[(int(t), int(w)) for t, w in state["edges"]],
        ),
    )


def _store_state(store: SegmentStore) -> Dict[str, Any]:
    return {
        "reports": [encode_message(report) for report in store.reports],
        "fused": _records_state(tuple(store.fused_aps)),
        "generation": store.generation,
    }


# -- the durable database ----------------------------------------------------


class DurableSegmentStore(SegmentStore):
    """A :class:`SegmentStore` that journals every mutation.

    ``add_report`` journals the full encoded upload frame and
    ``publish`` the fused records + resulting generation, *after* the
    in-memory mutation succeeds — a rejected mutation never reaches the
    log, and the call only returns once its record is journaled (durable
    subject to the log's fsync batching).
    """

    def __init__(
        self,
        segment_id: str,
        log: DurableLog,
        *,
        reports: Optional[List[UploadReport]] = None,
        fused_aps: Optional[List[ApRecord]] = None,
        generation: int = 0,
    ) -> None:
        self._log = log
        super().__init__(
            segment_id=segment_id,
            reports=list(reports) if reports is not None else [],
            fused_aps=list(fused_aps) if fused_aps is not None else [],
            generation=generation,
        )

    def add_report(self, report: UploadReport) -> None:
        """Append one upload and journal its encoded frame."""
        super().add_report(report)
        self._log.append("report", {"frame": encode_message(report)})

    def publish(self, fused: List[ApRecord]) -> int:
        """Replace the fused map and journal records + new generation."""
        generation = super().publish(fused)
        self._log.append(
            "publish",
            {
                "segment_id": self.segment_id,
                "aps": _records_state(tuple(self.fused_aps)),
                "generation": generation,
            },
        )
        return generation


class DurableDatabase(ApDatabase):
    """An :class:`ApDatabase` whose stores journal into one shared log."""

    def __init__(self, log: DurableLog) -> None:
        super().__init__()
        self._log = log

    @property
    def log(self) -> DurableLog:
        """The shared journal every store of this database appends to."""
        return self._log

    def segment(self, segment_id: str) -> SegmentStore:
        """Get (creating on first use) the durable store for a segment."""
        if not segment_id:
            raise ValueError("segment_id must be non-empty")
        if segment_id not in self._segments:
            self._segments[segment_id] = DurableSegmentStore(
                segment_id, self._log
            )
        return self._segments[segment_id]

    def install_segment(
        self,
        segment_id: str,
        *,
        reports: List[UploadReport],
        fused_aps: List[ApRecord],
        generation: int,
    ) -> None:
        """Install a recovered store wholesale (replaces any existing one)."""
        self._segments[segment_id] = DurableSegmentStore(
            segment_id,
            self._log,
            reports=reports,
            fused_aps=fused_aps,
            generation=generation,
        )

    def drop_segment(self, segment_id: str) -> None:
        """Forget a segment's store (journal-silent; callers journal)."""
        self._segments.pop(segment_id, None)

    def snapshot_state(self) -> Dict[str, Any]:
        """The database's full state as a JSON-ready snapshot section."""
        return {
            segment_id: _store_state(self.segment(segment_id))
            for segment_id in self.segment_ids()
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install every store of a snapshot section (journal-silent)."""
        for segment_id, store_state in state.items():
            reports = [
                _expect(decode_message(frame), UploadReport)
                for frame in store_state["reports"]
            ]
            self.install_segment(
                segment_id,
                reports=reports,
                fused_aps=list(_records_from_state(store_state["fused"])),
                generation=int(store_state["generation"]),
            )

    def apply_record(self, record: Dict[str, Any]) -> None:
        """Replay one store-level log record (journal must be suspended)."""
        kind = record["kind"]
        data = record["data"]
        if kind == "report":
            report = _expect(decode_message(data["frame"]), UploadReport)
            self.segment(report.segment_id).add_report(report)
        elif kind == "publish":
            store = self.segment(data["segment_id"])
            store.publish(list(_records_from_state(data["aps"])))
            if store.generation != int(data["generation"]):
                raise DurableLogError(
                    f"replayed generation {store.generation} != journaled "
                    f"{data['generation']} on {data['segment_id']!r}"
                )
        else:
            raise DurableLogError(f"unknown record kind {kind!r}")

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        *,
        fsync_every: int = 1,
        recorder: Optional[Recorder] = None,
    ) -> "DurableDatabase":
        """Rebuild a database bit-identically from snapshot + log replay."""
        rec = ensure_recorder(recorder)
        log = DurableLog(directory, fsync_every=fsync_every, recorder=rec)
        database = cls(log)
        with rec.span("durable.recover"), log.suspended():
            if log.recovered_snapshot is not None:
                database.restore_state(
                    log.recovered_snapshot["state"]["segments"]
                )
            for record in log.recovered_records:
                database.apply_record(record)
                rec.count("durable.records.replayed")
        return database

    def write_snapshot(self) -> None:
        """Persist the full database state and compact the log."""
        self._log.write_snapshot({"segments": self.snapshot_state()})


def _expect(message: Any, cls: type) -> Any:
    if not isinstance(message, cls):
        raise DurableLogError(
            f"journaled frame decoded to {type(message).__name__}, "
            f"expected {cls.__name__}"
        )
    return message


# -- the durable crowd-server ------------------------------------------------


class DurableCrowdServer(CrowdServer):
    """A crowd-server whose full state survives process death.

    Everything the in-memory server mutates is journaled through one
    :class:`DurableLog`: segment registrations (with their grids),
    uploaded reports, installed rounds (the task pool, so assignments
    re-enter ``pending`` on recovery and vehicles re-pull them), label
    submissions, published outcomes (reliabilities + fused records) and
    the server's own generator state after every draw batch.
    :meth:`recover` replays snapshot + log and reconstructs the server
    bit-identically — stores, open pools, pending assignments,
    reliabilities and the random stream all resume exactly where the
    dead process left them.

    ``snapshot_every`` bounds replay work: once that many records have
    accumulated since the last snapshot, the next mutating operation
    writes a fresh snapshot and compacts the log.
    """

    def __init__(
        self,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
        wal_format: Optional[str] = None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        super().__init__(config, rng=rng, recorder=recorder)
        self._log = open_wal(
            durable_dir,
            wal_format=wal_format,
            fsync_every=fsync_every,
            recorder=self.recorder,
        )
        self.wal_format = (
            "block" if isinstance(self._log, BlockDurableLog) else "jsonl"
        )
        self.database = DurableDatabase(self._log)
        self._snapshot_every = snapshot_every
        if self._log.is_fresh:
            self._journal_rng()

    @property
    def log(self) -> DurableLog:
        """The journal this server and its database append to."""
        return self._log

    def close(self) -> None:
        """Flush and close the underlying log."""
        self._log.close()

    # -- journaling hooks -------------------------------------------------

    def _journal_rng(self) -> None:
        self._log.append("rng_state", {"state": self._rng.bit_generator.state})

    def _maybe_snapshot(self) -> None:
        if (
            self._snapshot_every is not None
            and self._log.appends_since_snapshot >= self._snapshot_every
        ):
            self.write_snapshot()

    def register_segment(self, segment_id: str, grid: Grid) -> None:
        """Declare a segment, journaling its id and grid."""
        self._log.append(
            "segment_registered",
            {"segment_id": segment_id, "grid": _grid_state(grid)},
        )
        super().register_segment(segment_id, grid)
        self._maybe_snapshot()

    def receive_report(self, report: UploadReport) -> None:
        """Store an uploaded report (journaled by the durable store)."""
        # The store journals the report itself; this override only adds
        # the snapshot cadence check.
        super().receive_report(report)
        self._maybe_snapshot()

    def _install_round(self, plan: _RoundPlan):
        self._log.append("round_opened", _plan_state(plan))
        return super()._install_round(plan)

    def submit_labels(self, segment_id: str, submission: LabelSubmission) -> None:
        """Record one vehicle's answers and journal the submission."""
        super().submit_labels(segment_id, submission)
        self._log.append(
            "labels",
            {
                "segment_id": segment_id,
                "frame": encode_message(submission),
            },
        )
        self._maybe_snapshot()

    def _publish_outcome(self, outcome: _AggregateOutcome):
        self._log.append(
            "round_published",
            {
                "segment_id": outcome.segment_id,
                "reliabilities": [
                    [vehicle_id, reliability]
                    for vehicle_id, reliability in outcome.reliabilities
                ],
                "records": _records_state(outcome.records),
            },
        )
        # The rich record above carries everything replay needs; the
        # store-level publish journaling would only duplicate it.
        with self._log.suspended():
            return super()._publish_outcome(outcome)

    def open_round(self, segment_id: str):
        """Open one round, journaling the pool and post-draw rng state."""
        result = super().open_round(segment_id)
        self._journal_rng()
        self._maybe_snapshot()
        return result

    def open_rounds(self, segment_ids, *, n_workers=None, rngs=None):
        """Open a round per segment, journaling pools and rng state."""
        result = super().open_rounds(
            segment_ids, n_workers=n_workers, rngs=rngs
        )
        if rngs is None:
            self._journal_rng()
        self._maybe_snapshot()
        return result

    def aggregate(self, segment_id: str):
        """Aggregate one round, journaling the outcome and rng state."""
        result = super().aggregate(segment_id)
        self._journal_rng()
        self._maybe_snapshot()
        return result

    def aggregate_rounds(self, segment_ids, *, n_workers=None, rngs=None):
        """Aggregate completed rounds, journaling outcomes and rng state."""
        result = super().aggregate_rounds(
            segment_ids, n_workers=n_workers, rngs=rngs
        )
        if rngs is None:
            self._journal_rng()
        self._maybe_snapshot()
        return result

    # -- segment handoff ---------------------------------------------------

    def export_segment(self, segment_id: str) -> Dict[str, Any]:
        """Detach a segment for handoff; return its portable state bundle.

        The bundle carries everything segment-scoped — the grid, the
        durable store (reports, fused map, generation) and any open
        round's pool (tasks, assignment, labels so far, plus the
        streaming-KOS interim state so the adopting shard resumes the
        consumer mid-round instead of re-deriving it) — so
        :meth:`install_segment` on another shard resumes the segment
        bit-identically, vehicles re-pulling their unchanged
        assignments.  Vehicle reliabilities are *not* segment-scoped and
        deliberately stay behind: the serving tier routes reliability
        reads to the shard that aggregated (docs/SERVING.md).

        Journaled as ``segment_exported``, so a crash after export
        replays to a shard that has already let the segment go.
        """
        if segment_id not in self._grids:
            raise KeyError(f"unknown segment {segment_id!r}")
        assert isinstance(self.database, DurableDatabase)
        bundle = {
            "segment_id": segment_id,
            "grid": _grid_state(self._grids[segment_id]),
            "store": _store_state(self.database.segment(segment_id)),
            "pool": (
                self._pool_state(segment_id)
                if segment_id in self._pools
                else None
            ),
        }
        self._log.append("segment_exported", {"segment_id": segment_id})
        self._drop_segment_state(segment_id)
        self.recorder.count("durable.segments.exported")
        self._maybe_snapshot()
        return bundle

    def install_segment(self, bundle: Dict[str, Any]) -> None:
        """Adopt a segment bundle produced by :meth:`export_segment`.

        Journaled as ``segment_imported`` with the full bundle, so the
        adopting shard's WAL alone reconstructs the migrated state —
        recovery never needs the old shard's log.
        """
        self._log.append("segment_imported", {"bundle": bundle})
        with self._log.suspended():
            self._install_bundle(bundle)
        self.recorder.count("durable.segments.imported")
        self._maybe_snapshot()

    def _drop_segment_state(self, segment_id: str) -> None:
        assert isinstance(self.database, DurableDatabase)
        if segment_id in self._pools:
            self._remove_round(segment_id)
        del self._grids[segment_id]
        self.database.drop_segment(segment_id)

    def _install_bundle(self, bundle: Dict[str, Any]) -> None:
        assert isinstance(self.database, DurableDatabase)
        segment_id = str(bundle["segment_id"])
        if segment_id in self._grids:
            raise DurableLogError(
                f"cannot install {segment_id!r}: segment already present"
            )
        super().register_segment(
            segment_id, _grid_from_state(bundle["grid"])
        )
        store_state = bundle["store"]
        self.database.install_segment(
            segment_id,
            reports=[
                _expect(decode_message(frame), UploadReport)
                for frame in store_state["reports"]
            ],
            fused_aps=list(_records_from_state(store_state["fused"])),
            generation=int(store_state["generation"]),
        )
        pool_state = bundle.get("pool")
        if pool_state is not None:
            self._restore_pool(segment_id, pool_state)

    # -- snapshot & recovery ----------------------------------------------

    def _pool_state(self, segment_id: str) -> Dict[str, Any]:
        pool = self._pools[segment_id]
        plan = _RoundPlan(
            segment_id=segment_id,
            vehicles=tuple(pool.vehicle_order),
            patterns=tuple(pattern for _, pattern in pool.tasks),
            assignment=pool.assignment,
        )
        return {
            "plan": _plan_state(plan),
            "labels": [int(v) for v in pool.labels.ravel()],
            "submissions_seen": [
                vehicle_id
                for vehicle_id, seen in pool.submissions_seen.items()
                if seen
            ],
            # Interim streaming-KOS state (damped y-messages + sweep
            # counters).  Edge labels are *not* duplicated here: they are
            # reloaded from the label matrix above.  json round-trips
            # float64 exactly, so restore keeps interim readouts
            # bit-identical; finalize() never depends on this state.
            "stream": pool.stream.state_dict(),
        }

    def _restore_pool(
        self, segment_id: str, pool_state: Dict[str, Any]
    ) -> None:
        plan = _plan_from_state(pool_state["plan"])
        super()._install_round(plan)
        pool = self._pools[segment_id]
        pool.labels[...] = np.asarray(
            pool_state["labels"], dtype=int
        ).reshape(pool.labels.shape)
        for vehicle_id in pool_state["submissions_seen"]:
            pool.submissions_seen[vehicle_id] = True
        # Re-arm the streaming consumer: the label matrix is authoritative
        # for filled edges; the journaled interim state (when present —
        # pre-streaming snapshots lack it) restores the exact damped
        # message trajectory on top.
        pool.stream.load_matrix(pool.labels)
        stream_state = pool_state.get("stream")
        if stream_state is not None:
            pool.stream.restore_state(stream_state)

    def snapshot_state(self) -> Dict[str, Any]:
        """The server's full state as a JSON-ready dict."""
        assert isinstance(self.database, DurableDatabase)
        pools = {
            segment_id: self._pool_state(segment_id)
            for segment_id in self._pools
        }
        return {
            "grids": {
                segment_id: _grid_state(grid)
                for segment_id, grid in sorted(self._grids.items())
            },
            "segments": self.database.snapshot_state(),
            "pools": pools,
            "reliabilities": dict(sorted(self._reliabilities.items())),
            "rng": self._rng.bit_generator.state,
        }

    def write_snapshot(self) -> None:
        """Persist the full server state and compact the log."""
        self._log.write_snapshot(self.snapshot_state())

    def _restore_state(self, state: Dict[str, Any]) -> None:
        assert isinstance(self.database, DurableDatabase)
        for segment_id, grid_state in state["grids"].items():
            self._grids[segment_id] = _grid_from_state(grid_state)
            self.database.segment(segment_id)
        self.database.restore_state(state["segments"])
        for segment_id, pool_state in state["pools"].items():
            self._restore_pool(segment_id, pool_state)
        self._reliabilities.update(state["reliabilities"])
        self._rng.bit_generator.state = state["rng"]

    def apply_record(self, record: Dict[str, Any]) -> None:
        """Replay one log record (journal must be suspended)."""
        assert isinstance(self.database, DurableDatabase)
        kind = record["kind"]
        data = record["data"]
        if kind == "segment_registered":
            super().register_segment(
                data["segment_id"], _grid_from_state(data["grid"])
            )
        elif kind in ("report", "publish"):
            self.database.apply_record(record)
        elif kind == "round_opened":
            super()._install_round(_plan_from_state(data))
        elif kind == "labels":
            submission = _expect(
                decode_message(data["frame"]), LabelSubmission
            )
            super().submit_labels(data["segment_id"], submission)
        elif kind == "round_published":
            outcome = _AggregateOutcome(
                segment_id=data["segment_id"],
                reliabilities=tuple(
                    (vehicle_id, float(reliability))
                    for vehicle_id, reliability in data["reliabilities"]
                ),
                records=_records_from_state(data["records"]),
            )
            super()._publish_outcome(outcome)
        elif kind == "segment_exported":
            self._drop_segment_state(data["segment_id"])
        elif kind == "segment_imported":
            self._install_bundle(data["bundle"])
        elif kind == "rng_state":
            self._rng.bit_generator.state = data["state"]
        else:
            raise DurableLogError(f"unknown record kind {kind!r}")

    def replay_recovered(self) -> None:
        """Apply whatever the log held at open time (no-op when fresh)."""
        with self.recorder.span("durable.recover"), self._log.suspended():
            if self._log.recovered_snapshot is not None:
                self._restore_state(self._log.recovered_snapshot["state"])
            for record in self._log.recovered_records:
                self.apply_record(record)
                self.recorder.count("durable.records.replayed")

    @classmethod
    def recover(
        cls,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
        wal_format: Optional[str] = None,
    ) -> "DurableCrowdServer":
        """Reconstruct the server bit-identically from its durable dir.

        ``rng`` only seeds the stream when the log holds no
        ``rng_state`` record (it always does for a server that journaled
        anything); a recovered stream resumes exactly where the dead
        process left it.  ``wal_format=None`` reuses whatever format the
        directory already holds, so recovery never has to be told.
        """
        server = cls(
            durable_dir,
            config,
            rng=rng,
            recorder=recorder,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
            wal_format=wal_format,
        )
        server.replay_recovered()
        return server
