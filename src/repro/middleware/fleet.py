"""Fleet orchestration: run a whole crowdsensing campaign in one call.

Everything the examples and integration tests wire by hand — vehicles
driving routes, per-segment trace splitting, online CS per segment,
uploads, task rounds, aggregation — packaged as a single campaign runner.
This is the entry point a deployment would script against:

    planner = SegmentPlanner(area, n_rows=2, n_cols=3)
    fleet = FleetCampaign(world, planner, engine_config)
    fleet.add_vehicle("bus-1", route_a, n_samples=200)
    fleet.add_vehicle("bus-2", route_b, n_samples=200)
    outcome = fleet.run(rng=7)
    outcome.city_map()          # every fused AP across segments
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import EngineConfig, OnlineCsEngine, OnlineCsResult
from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.geo.trajectory import Trajectory
from repro.middleware.client import CrowdVehicleClient
from repro.middleware.segments import SegmentPlanner
from repro.middleware.server import CrowdServer, ServerConfig
from repro.middleware.service import LookupService
from repro.mobility.models import PathFollower
from repro.mobility.units import mph_to_mps
from repro.obs.recorder import NULL_RECORDER, Recorder, ensure_recorder
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import World
from repro.util.parallel import run_recorded_tasks
from repro.util.rng import RngLike, ensure_rng, spawn_children

__all__ = ["VehiclePlan", "CampaignOutcome", "FleetCampaign"]


@dataclass(frozen=True)
class _VehicleSenseJob:
    """Everything one vehicle's phase-1 sensing needs, picklable.

    Carries its own child generator so the sensing stream is a function
    of the campaign seed and the vehicle's enrollment position only —
    never of which worker process runs it or in what order.
    """

    world: World
    collector_config: CollectorConfig
    engine_config: EngineConfig
    plan: "VehiclePlan"
    planner: SegmentPlanner
    grids: Tuple[Tuple[str, Grid], ...]
    min_segment_readings: int
    rng: np.random.Generator


def _sense_vehicle(
    job: _VehicleSenseJob, recorder: Recorder = NULL_RECORDER
) -> Dict[str, OnlineCsResult]:
    """Phase 1 for one vehicle: drive, split by segment, run online CS.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it.
    Returns the per-segment results (planner-split order) that produced
    at least one AP from at least ``min_segment_readings`` readings.
    ``recorder`` is the per-task sink handed in by
    :func:`repro.util.parallel.run_recorded_tasks`; every engine round
    this vehicle runs reports into it.
    """
    grids = dict(job.grids)
    with recorder.span("fleet.sense_vehicle"):
        collector = RssCollector(job.world, job.collector_config, rng=job.rng)
        follower = PathFollower(
            job.plan.route, mph_to_mps(job.plan.speed_mph)
        )
        trace = collector.collect_along(follower, n_samples=job.plan.n_samples)
        results: Dict[str, OnlineCsResult] = {}
        for segment_id, sub_trace in job.planner.split_trace(trace).items():
            if len(sub_trace) < job.min_segment_readings:
                continue
            engine = OnlineCsEngine(
                job.world.channel,
                job.engine_config,
                grid=grids[segment_id],
                rng=job.rng,
                recorder=recorder,
            )
            result = engine.process_trace(sub_trace)
            if result.n_aps == 0:
                continue
            results[segment_id] = result
    return results


@dataclass(frozen=True)
class VehiclePlan:
    """One vehicle's participation in the campaign."""

    vehicle_id: str
    route: Trajectory
    n_samples: int
    speed_mph: float = 25.0
    spam_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise ValueError("vehicle_id must be non-empty")
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.speed_mph <= 0:
            raise ValueError(f"speed_mph must be > 0, got {self.speed_mph}")


@dataclass
class CampaignOutcome:
    """Results of one full campaign run."""

    server: CrowdServer
    segments_mapped: List[str]
    per_vehicle_segments: Dict[str, List[str]]
    reliabilities: Dict[str, float] = field(default_factory=dict)

    def city_map(self, *, dedup_radius_m: float = 15.0) -> List[Point]:
        """Every fused AP location across all mapped segments.

        Segments overlap at their padded borders, so an AP near a
        boundary appears in more than one segment's map; entries within
        ``dedup_radius_m`` of an earlier entry are merged by averaging.
        Pass 0 to disable deduplication.
        """
        if dedup_radius_m < 0:
            raise ValueError(
                f"dedup_radius_m must be >= 0, got {dedup_radius_m}"
            )
        raw = self.server.database.all_fused_locations()
        if dedup_radius_m == 0:
            return raw
        merged: List[List[Point]] = []
        for location in raw:
            for cluster in merged:
                center_x = sum(p.x for p in cluster) / len(cluster)
                center_y = sum(p.y for p in cluster) / len(cluster)
                if location.distance_to(Point(center_x, center_y)) <= (
                    dedup_radius_m
                ):
                    cluster.append(location)
                    break
            else:
                merged.append([location])
        return [
            Point(
                sum(p.x for p in cluster) / len(cluster),
                sum(p.y for p in cluster) / len(cluster),
            )
            for cluster in merged
        ]

    def segment_map(self, segment_id: str) -> List[Point]:
        """The fused AP locations of one segment."""
        return [
            record.to_point()
            for record in self.server.download(segment_id).aps
        ]

    def lookup_service(self) -> LookupService:
        """The application-facing query API over the campaign's database."""
        return LookupService(self.server.database)


class FleetCampaign:
    """Plans and executes a multi-vehicle, multi-segment campaign.

    Parameters
    ----------
    world:
        The deployment to sense.
    planner:
        Road-segment tiling; each segment gets its own grid and its own
        crowdsourcing rounds.
    engine_config:
        The online CS configuration every vehicle runs.
    server_config:
        Crowd-server tunables (assignment degree, fusion radii, …).
    min_segment_readings:
        Segments where a vehicle collected fewer readings than this are
        skipped for that vehicle (not enough data for a window round).
    grid_margin_m:
        Padding added around each segment's grid so APs just across a
        segment border remain representable.
    """

    def __init__(
        self,
        world: World,
        planner: SegmentPlanner,
        engine_config: EngineConfig,
        *,
        server_config: Optional[ServerConfig] = None,
        collector_config: Optional[CollectorConfig] = None,
        min_segment_readings: int = 12,
        grid_margin_m: float = 60.0,
    ) -> None:
        if min_segment_readings < 1:
            raise ValueError(
                f"min_segment_readings must be >= 1, got {min_segment_readings}"
            )
        self.world = world
        self.planner = planner
        self.engine_config = engine_config
        self.server_config = (
            server_config if server_config is not None else ServerConfig()
        )
        self.collector_config = (
            collector_config
            if collector_config is not None
            else CollectorConfig(
                sample_period_s=1.0,
                communication_radius_m=engine_config.communication_radius_m,
            )
        )
        self.min_segment_readings = min_segment_readings
        self.grid_margin_m = grid_margin_m
        self._plans: List[VehiclePlan] = []

    def add_vehicle(
        self,
        vehicle_id: str,
        route: Trajectory,
        *,
        n_samples: int,
        speed_mph: float = 25.0,
        spam_probability: float = 0.0,
    ) -> VehiclePlan:
        """Enroll one vehicle in the campaign."""
        if any(plan.vehicle_id == vehicle_id for plan in self._plans):
            raise ValueError(f"vehicle {vehicle_id!r} already enrolled")
        plan = VehiclePlan(
            vehicle_id=vehicle_id,
            route=route,
            n_samples=n_samples,
            speed_mph=speed_mph,
            spam_probability=spam_probability,
        )
        self._plans.append(plan)
        return plan

    def run(
        self,
        *,
        rng: RngLike = None,
        n_workers: Optional[int] = None,
        telemetry: Optional[Recorder] = None,
    ) -> CampaignOutcome:
        """Execute the whole campaign and return the fused city map.

        ``n_workers`` fans phase 1 (the per-vehicle sensing, by far the
        dominant cost) and the phase-2 round opening / aggregation over
        a process pool.  Randomness is split into per-unit child
        generators derived from the campaign seed *before* dispatch, and
        results are consumed in enrollment/planner order, so any worker
        count — including the serial default — produces a bit-identical
        outcome for the same seed.

        ``telemetry`` attaches a :class:`~repro.obs.recorder.Recorder`
        to the whole campaign: engine rounds, server rounds and the
        phase spans all report into it, and per-vehicle telemetry
        gathered in worker processes is merged back deterministically
        (the aggregates are identical for any ``n_workers``).  ``None``
        keeps every hook a no-op.
        """
        if not self._plans:
            raise RuntimeError("no vehicles enrolled; call add_vehicle first")
        recorder = ensure_recorder(telemetry)
        with recorder.span("fleet.run"):
            return self._run(rng=rng, n_workers=n_workers, recorder=recorder)

    def _run(
        self,
        *,
        rng: RngLike,
        n_workers: Optional[int],
        recorder: Recorder,
    ) -> CampaignOutcome:
        generator = ensure_rng(rng)
        # Child 0 drives the server; children (1+2i, 2+2i) drive vehicle
        # i's sensing and its task-labeling clients respectively.  The
        # sensing children cross the process boundary; the label children
        # stay in this process for phase 2.
        children = spawn_children(generator, 1 + 2 * len(self._plans))
        server = CrowdServer(
            self.server_config, rng=children[0], recorder=recorder
        )
        for segment in self.planner.all_segments():
            server.register_segment(
                segment.segment_id,
                segment.grid(
                    self.engine_config.lattice_length_m,
                    margin_m=self.grid_margin_m,
                ),
            )
        grids = tuple(
            (segment.segment_id, server.segment_grid(segment.segment_id))
            for segment in self.planner.all_segments()
        )

        # Phase 1: every vehicle drives, senses per segment, uploads.
        recorder.count("fleet.vehicles", len(self._plans))
        jobs = [
            _VehicleSenseJob(
                world=self.world,
                collector_config=self.collector_config,
                engine_config=self.engine_config,
                plan=plan,
                planner=self.planner,
                grids=grids,
                min_segment_readings=self.min_segment_readings,
                rng=children[1 + 2 * index],
            )
            for index, plan in enumerate(self._plans)
        ]
        with recorder.span("fleet.phase1.sense"):
            sensed = run_recorded_tasks(
                _sense_vehicle, jobs, recorder=recorder, n_workers=n_workers
            )

        clients: Dict[Tuple[str, str], CrowdVehicleClient] = {}
        per_vehicle_segments: Dict[str, List[str]] = {}
        for index, (plan, results) in enumerate(zip(self._plans, sensed)):
            label_rng = children[2 + 2 * index]
            per_vehicle_segments[plan.vehicle_id] = []
            for segment_id, result in results.items():
                engine = OnlineCsEngine(
                    self.world.channel,
                    self.engine_config,
                    grid=server.segment_grid(segment_id),
                    rng=label_rng,
                    recorder=recorder,
                )
                client = CrowdVehicleClient(
                    vehicle_id=plan.vehicle_id,
                    engine=engine,
                    spam_probability=plan.spam_probability,
                    rng=label_rng,
                )
                client.last_result = result
                server.receive_report(
                    client.build_report(segment_id, timestamp=0.0)
                )
                clients[(plan.vehicle_id, segment_id)] = client
                per_vehicle_segments[plan.vehicle_id].append(segment_id)

        # Phase 2: open every active segment's round (optionally fanned
        # over workers), collect labels in planner order, then aggregate
        # the batch.  The batch APIs spawn per-segment child generators
        # before dispatch, so the outcome is identical for any n_workers.
        segments_mapped = [
            segment.segment_id
            for segment in self.planner.all_segments()
            if server.database.segment(segment.segment_id).vehicles()
        ]
        recorder.count("fleet.segments.mapped", len(segments_mapped))
        if segments_mapped:
            with recorder.span("fleet.phase2.rounds"):
                assignments_by_segment = server.open_rounds(
                    segments_mapped, n_workers=n_workers
                )
                for segment_id in segments_mapped:
                    grid = server.segment_grid(segment_id)
                    for vehicle_id, message in assignments_by_segment[
                        segment_id
                    ].items():
                        client = clients[(vehicle_id, segment_id)]
                        server.submit_labels(
                            segment_id, client.answer_tasks(message, grid)
                        )
                server.aggregate_rounds(segments_mapped, n_workers=n_workers)

        reliabilities = {
            plan.vehicle_id: server.reliability_of(plan.vehicle_id)
            for plan in self._plans
        }
        return CampaignOutcome(
            server=server,
            segments_mapped=segments_mapped,
            per_vehicle_segments=per_vehicle_segments,
            reliabilities=reliabilities,
        )
