"""Fleet orchestration: run a whole crowdsensing campaign in one call.

Everything the examples and integration tests wire by hand — vehicles
driving routes, per-segment trace splitting, online CS per segment,
uploads, task rounds, aggregation — packaged as a single campaign runner.
This is the entry point a deployment would script against:

    planner = SegmentPlanner(area, n_rows=2, n_cols=3)
    fleet = FleetCampaign(world, planner, engine_config)
    fleet.add_vehicle("bus-1", route_a, n_samples=200)
    fleet.add_vehicle("bus-2", route_b, n_samples=200)
    outcome = fleet.run(rng=7)
    outcome.city_map()          # every fused AP across segments

Execution is delegated to the transport-agnostic runtime
(:class:`repro.runtime.CampaignScheduler`, see docs/RUNTIME.md): every
client↔server exchange crosses the wire codec, and ``n_shards`` spreads
the server state over a sharded router — bit-identically to a single
in-process server, for any seed, worker count and shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.core.engine import EngineConfig
from repro.geo.points import Point
from repro.geo.trajectory import Trajectory
from repro.middleware.segments import SegmentPlanner
from repro.middleware.server import CrowdServer, ServerConfig
from repro.middleware.service import LookupService
from repro.obs.recorder import Recorder, ensure_recorder
from repro.sim.collector import CollectorConfig
from repro.sim.world import World
from repro.util.rng import RngLike

if TYPE_CHECKING:
    from repro.runtime.router import ServerRouter

__all__ = ["VehiclePlan", "CampaignOutcome", "FleetCampaign"]

#: What a campaign outcome holds as its server: the in-process
#: :class:`CrowdServer` or the runtime's sharded router — both expose
#: ``database``, ``download`` and ``reliability_of``.
CampaignEndpoint = Union[CrowdServer, "ServerRouter"]


@dataclass(frozen=True)
class VehiclePlan:
    """One vehicle's participation in the campaign."""

    vehicle_id: str
    route: Trajectory
    n_samples: int
    speed_mph: float = 25.0
    spam_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.vehicle_id:
            raise ValueError("vehicle_id must be non-empty")
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.speed_mph <= 0:
            raise ValueError(f"speed_mph must be > 0, got {self.speed_mph}")


@dataclass
class CampaignOutcome:
    """Results of one full campaign run."""

    server: CampaignEndpoint
    segments_mapped: List[str]
    per_vehicle_segments: Dict[str, List[str]]
    reliabilities: Dict[str, float] = field(default_factory=dict)

    def city_map(self, *, dedup_radius_m: float = 15.0) -> List[Point]:
        """Every fused AP location across all mapped segments.

        Segments overlap at their padded borders, so an AP near a
        boundary appears in more than one segment's map; entries within
        ``dedup_radius_m`` of an earlier entry are merged by averaging.
        Pass 0 to disable deduplication.
        """
        if dedup_radius_m < 0:
            raise ValueError(
                f"dedup_radius_m must be >= 0, got {dedup_radius_m}"
            )
        raw = self.server.database.all_fused_locations()
        if dedup_radius_m == 0:
            return raw
        merged: List[List[Point]] = []
        for location in raw:
            for cluster in merged:
                center_x = sum(p.x for p in cluster) / len(cluster)
                center_y = sum(p.y for p in cluster) / len(cluster)
                if location.distance_to(Point(center_x, center_y)) <= (
                    dedup_radius_m
                ):
                    cluster.append(location)
                    break
            else:
                merged.append([location])
        return [
            Point(
                sum(p.x for p in cluster) / len(cluster),
                sum(p.y for p in cluster) / len(cluster),
            )
            for cluster in merged
        ]

    def segment_map(self, segment_id: str) -> List[Point]:
        """The fused AP locations of one segment."""
        return [
            record.to_point()
            for record in self.server.download(segment_id).aps
        ]

    def lookup_service(self) -> LookupService:
        """The application-facing query API over the campaign's database."""
        return LookupService(self.server.database)


class FleetCampaign:
    """Plans and executes a multi-vehicle, multi-segment campaign.

    Parameters
    ----------
    world:
        The deployment to sense.
    planner:
        Road-segment tiling; each segment gets its own grid and its own
        crowdsourcing rounds.
    engine_config:
        The online CS configuration every vehicle runs.
    server_config:
        Crowd-server tunables (assignment degree, fusion radii, …).
    min_segment_readings:
        Segments where a vehicle collected fewer readings than this are
        skipped for that vehicle (not enough data for a window round).
    grid_margin_m:
        Padding added around each segment's grid so APs just across a
        segment border remain representable.
    """

    def __init__(
        self,
        world: World,
        planner: SegmentPlanner,
        engine_config: EngineConfig,
        *,
        server_config: Optional[ServerConfig] = None,
        collector_config: Optional[CollectorConfig] = None,
        min_segment_readings: int = 12,
        grid_margin_m: float = 60.0,
    ) -> None:
        if min_segment_readings < 1:
            raise ValueError(
                f"min_segment_readings must be >= 1, got {min_segment_readings}"
            )
        self.world = world
        self.planner = planner
        self.engine_config = engine_config
        self.server_config = (
            server_config if server_config is not None else ServerConfig()
        )
        self.collector_config = (
            collector_config
            if collector_config is not None
            else CollectorConfig(
                sample_period_s=1.0,
                communication_radius_m=engine_config.communication_radius_m,
            )
        )
        self.min_segment_readings = min_segment_readings
        self.grid_margin_m = grid_margin_m
        self._plans: List[VehiclePlan] = []

    @property
    def plans(self) -> Tuple[VehiclePlan, ...]:
        """The enrolled vehicle plans, in enrollment order."""
        return tuple(self._plans)

    def add_vehicle(
        self,
        vehicle_id: str,
        route: Trajectory,
        *,
        n_samples: int,
        speed_mph: float = 25.0,
        spam_probability: float = 0.0,
    ) -> VehiclePlan:
        """Enroll one vehicle in the campaign."""
        if any(plan.vehicle_id == vehicle_id for plan in self._plans):
            raise ValueError(f"vehicle {vehicle_id!r} already enrolled")
        plan = VehiclePlan(
            vehicle_id=vehicle_id,
            route=route,
            n_samples=n_samples,
            speed_mph=speed_mph,
            spam_probability=spam_probability,
        )
        self._plans.append(plan)
        return plan

    def run(
        self,
        *,
        rng: RngLike = None,
        n_workers: Optional[int] = None,
        telemetry: Optional[Recorder] = None,
        n_shards: int = 1,
        transport: str = "inprocess",
        durable_dir: Optional[Union[str, Path]] = None,
        wal_format: Optional[str] = None,
    ) -> CampaignOutcome:
        """Execute the whole campaign and return the fused city map.

        A thin wrapper over :class:`repro.runtime.CampaignScheduler`: the
        scheduler walks the sense → upload → open_round → label →
        aggregate → publish step graph, pushing every client↔server
        exchange over the in-process wire transport and the sharded
        server router (``n_shards`` segment shards; 1 behaves like a
        single server and *any* value is bit-identical to it).

        ``n_workers`` fans the per-vehicle sensing (by far the dominant
        cost) and the round opening / aggregation over a process pool.
        Randomness is split into per-unit child generators derived from
        the campaign seed *before* dispatch, and results are consumed in
        enrollment/planner order, so any worker count — including the
        serial default — produces a bit-identical outcome for the same
        seed.

        ``telemetry`` attaches a :class:`~repro.obs.recorder.Recorder`
        to the whole campaign: engine rounds, server rounds and the
        phase spans all report into it, and per-vehicle telemetry
        gathered in worker processes is merged back deterministically
        (the aggregates are identical for any ``n_workers``).  ``None``
        keeps every hook a no-op.

        ``transport="tcp"`` runs the identical campaign over a loopback
        socket (framing, timeouts, reconnect retries — see
        docs/RUNTIME.md §5) instead of the in-process seam, and
        ``durable_dir`` journals every server mutation so a killed
        server can be rebuilt bit-identically mid-campaign (§6).
        ``transport="serving"`` runs each shard as its own worker
        process behind its own TCP listener (docs/SERVING.md; requires
        ``durable_dir``, and ``wal_format`` selects the workers' WAL
        format).  All of them leave the outcome byte-identical to the
        defaults.
        """
        # Deferred import: the runtime package imports this module for
        # VehiclePlan/CampaignOutcome, so the dependency must point that
        # way at module-load time.
        from repro.runtime.scheduler import CampaignScheduler

        if not self._plans:
            raise RuntimeError("no vehicles enrolled; call add_vehicle first")
        recorder = ensure_recorder(telemetry)
        scheduler = CampaignScheduler(
            self,
            n_shards=n_shards,
            transport=transport,
            durable_dir=durable_dir,
            wal_format=wal_format,
        )
        with recorder.span("fleet.run"):
            return scheduler.run(
                rng=rng, n_workers=n_workers, recorder=recorder
            )
