"""Incentive and privacy bookkeeping for crowd-vehicles (§5.5).

The paper's crowdsourcing platform lets crowd-vehicles *accept tasks to
share information for rewards, or deny the tasks to protect their
privacy*.  :class:`IncentiveLedger` is the server-side account book for
that contract: task offers, accept/deny decisions, reward credits for
completed work, and a quality bonus tied to the reliability the
iterative inference later assigns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["OfferStatus", "TaskOffer", "VehicleAccount", "IncentiveLedger"]


class OfferStatus(str, enum.Enum):
    """Lifecycle of a task offer (pending → accepted/declined → completed)."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    DECLINED = "declined"
    COMPLETED = "completed"


@dataclass
class TaskOffer:
    """One offer of sensing/labeling work to a vehicle."""

    offer_id: int
    vehicle_id: str
    segment_id: str
    reward: float
    status: OfferStatus = OfferStatus.PENDING

    def __post_init__(self) -> None:
        if self.reward < 0:
            raise ValueError(f"reward must be >= 0, got {self.reward}")


@dataclass
class VehicleAccount:
    """A vehicle's running balance and participation history."""

    vehicle_id: str
    balance: float = 0.0
    offers_received: int = 0
    offers_declined: int = 0
    tasks_completed: int = 0

    @property
    def participation_rate(self) -> float:
        """Fraction of offers not declined (1.0 before any offer)."""
        if self.offers_received == 0:
            return 1.0
        return 1.0 - self.offers_declined / self.offers_received


class IncentiveLedger:
    """Server-side reward accounting with accept/deny semantics.

    Parameters
    ----------
    base_reward:
        Credits granted for each completed task offer.
    quality_bonus:
        Extra credits per completed task, scaled by how far the vehicle's
        inferred reliability exceeds a coin flip: ``bonus · max(q − ½, 0)·2``.
    """

    def __init__(
        self, *, base_reward: float = 1.0, quality_bonus: float = 1.0
    ) -> None:
        if base_reward < 0 or quality_bonus < 0:
            raise ValueError("rewards must be >= 0")
        self.base_reward = base_reward
        self.quality_bonus = quality_bonus
        self._accounts: Dict[str, VehicleAccount] = {}
        self._offers: Dict[int, TaskOffer] = {}
        self._next_offer_id = 0

    # -- offers -----------------------------------------------------------

    def offer_task(self, vehicle_id: str, segment_id: str) -> TaskOffer:
        """Record a new task offer to a vehicle."""
        if not vehicle_id or not segment_id:
            raise ValueError("vehicle_id and segment_id must be non-empty")
        offer = TaskOffer(
            offer_id=self._next_offer_id,
            vehicle_id=vehicle_id,
            segment_id=segment_id,
            reward=self.base_reward,
        )
        self._next_offer_id += 1
        self._offers[offer.offer_id] = offer
        account = self.account(vehicle_id)
        account.offers_received += 1
        return offer

    def accept(self, offer_id: int) -> None:
        """The vehicle accepts: it will sense/label and share the data."""
        offer = self._require(offer_id, OfferStatus.PENDING)
        offer.status = OfferStatus.ACCEPTED

    def decline(self, offer_id: int) -> None:
        """The vehicle declines (privacy choice) — never penalised beyond
        forgoing the reward."""
        offer = self._require(offer_id, OfferStatus.PENDING)
        offer.status = OfferStatus.DECLINED
        self.account(offer.vehicle_id).offers_declined += 1

    def complete(
        self, offer_id: int, *, reliability: Optional[float] = None
    ) -> float:
        """Pay out a completed accepted offer; returns the credit granted."""
        offer = self._require(offer_id, OfferStatus.ACCEPTED)
        if reliability is not None and not 0.0 <= reliability <= 1.0:
            raise ValueError(
                f"reliability must be in [0, 1], got {reliability}"
            )
        offer.status = OfferStatus.COMPLETED
        credit = offer.reward
        if reliability is not None:
            credit += self.quality_bonus * max(reliability - 0.5, 0.0) * 2.0
        account = self.account(offer.vehicle_id)
        account.balance += credit
        account.tasks_completed += 1
        return credit

    # -- queries ------------------------------------------------------------

    def account(self, vehicle_id: str) -> VehicleAccount:
        """The (auto-created) account of one vehicle."""
        if vehicle_id not in self._accounts:
            self._accounts[vehicle_id] = VehicleAccount(vehicle_id=vehicle_id)
        return self._accounts[vehicle_id]

    def offer(self, offer_id: int) -> TaskOffer:
        """Look up one offer by id (KeyError when unknown)."""
        if offer_id not in self._offers:
            raise KeyError(f"unknown offer {offer_id}")
        return self._offers[offer_id]

    def pending_offers(self, vehicle_id: str) -> List[TaskOffer]:
        """Offers awaiting the vehicle's accept/deny decision."""
        return [
            offer
            for offer in self._offers.values()
            if offer.vehicle_id == vehicle_id
            and offer.status is OfferStatus.PENDING
        ]

    def total_paid(self) -> float:
        """Sum of all balances — the platform's incentive spend."""
        return sum(account.balance for account in self._accounts.values())

    def _require(self, offer_id: int, expected: OfferStatus) -> TaskOffer:
        offer = self.offer(offer_id)
        if offer.status is not expected:
            raise ValueError(
                f"offer {offer_id} is {offer.status.value}, expected "
                f"{expected.value}"
            )
        return offer
