"""Client–server message protocol with a JSON codec.

Every message is a frozen dataclass; :func:`encode_message` /
:func:`decode_message` round-trip them through JSON with an explicit
``type`` tag, so the protocol is self-describing on the wire.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Tuple, Type, Union

from repro.geo.points import Point

__all__ = [
    "ApRecord",
    "UploadReport",
    "TaskAssignmentMessage",
    "LabelSubmission",
    "DownloadResponse",
    "LookupRequest",
    "ErrorResponse",
    "ProtocolMessage",
    "encode_message",
    "decode_message",
]


@dataclass(frozen=True)
class ApRecord:
    """One AP estimate as carried in protocol messages."""

    x: float
    y: float
    credits: float = 1.0

    def to_point(self) -> Point:
        """The record's location as a geometry-layer :class:`Point`."""
        return Point(self.x, self.y)

    @staticmethod
    def from_point(point: Point, credits: float = 1.0) -> "ApRecord":
        """Build a wire record from a geometry-layer :class:`Point`."""
        return ApRecord(x=point.x, y=point.y, credits=credits)


@dataclass(frozen=True)
class UploadReport:
    """Crowd-vehicle → server: one drive's coarse AP estimates."""

    vehicle_id: str
    segment_id: str
    timestamp: float
    aps: Tuple[ApRecord, ...]
    lattice_length_m: float

    def __post_init__(self) -> None:
        if not self.vehicle_id or not self.segment_id:
            raise ValueError("vehicle_id and segment_id must be non-empty")
        if self.lattice_length_m <= 0:
            raise ValueError(
                f"lattice_length_m must be > 0, got {self.lattice_length_m}"
            )


@dataclass(frozen=True)
class TaskAssignmentMessage:
    """Server → crowd-vehicle: mapping tasks to label.

    Each task is (task_id, segment_id, pattern grid indices); the vehicle
    answers whether the pattern matches its own observation of the
    segment.
    """

    vehicle_id: str
    tasks: Tuple[Tuple[int, str, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class LabelSubmission:
    """Crowd-vehicle → server: ±1 answers to assigned mapping tasks."""

    vehicle_id: str
    labels: Tuple[Tuple[int, int], ...]  # (task_id, ±1)

    def __post_init__(self) -> None:
        for task_id, label in self.labels:
            if label not in (-1, 1):
                raise ValueError(
                    f"label for task {task_id} must be ±1, got {label}"
                )

    def as_dict(self) -> Dict[int, int]:
        """The submitted labels as a task-id → ±1 mapping."""
        return {task_id: label for task_id, label in self.labels}


@dataclass(frozen=True)
class DownloadResponse:
    """Server → user-vehicle: the fused fine-grained AP map of a segment."""

    segment_id: str
    aps: Tuple[ApRecord, ...]
    generation: int = 0


@dataclass(frozen=True)
class LookupRequest:
    """User-vehicle → server: request a segment's fused AP map."""

    vehicle_id: str
    segment_id: str

    def __post_init__(self) -> None:
        if not self.vehicle_id or not self.segment_id:
            raise ValueError("vehicle_id and segment_id must be non-empty")


@dataclass(frozen=True)
class ErrorResponse:
    """Server → client: a request could not be served."""

    reason: str

    def __post_init__(self) -> None:
        if not self.reason:
            raise ValueError("reason must be non-empty")


#: Every dataclass that can cross the wire.
ProtocolMessage = Union[
    UploadReport,
    TaskAssignmentMessage,
    LabelSubmission,
    DownloadResponse,
    LookupRequest,
    ErrorResponse,
]

_MESSAGE_TYPES: Dict[str, Type[ProtocolMessage]] = {
    "upload_report": UploadReport,
    "task_assignment": TaskAssignmentMessage,
    "label_submission": LabelSubmission,
    "download_response": DownloadResponse,
    "lookup_request": LookupRequest,
    "error_response": ErrorResponse,
}
_TYPE_NAMES = {cls: name for name, cls in _MESSAGE_TYPES.items()}


def encode_message(message: ProtocolMessage) -> str:
    """Serialize a protocol message to a JSON string with a type tag."""
    cls = type(message)
    if cls not in _TYPE_NAMES:
        raise TypeError(f"{cls.__name__} is not a protocol message")
    payload = {"type": _TYPE_NAMES[cls], "body": asdict(message)}
    return json.dumps(payload, sort_keys=True)


def _rebuild(cls: Type[ProtocolMessage], body: Dict[str, Any]) -> ProtocolMessage:
    if cls is UploadReport:
        return UploadReport(
            vehicle_id=body["vehicle_id"],
            segment_id=body["segment_id"],
            timestamp=body["timestamp"],
            aps=tuple(ApRecord(**ap) for ap in body["aps"]),
            lattice_length_m=body["lattice_length_m"],
        )
    if cls is TaskAssignmentMessage:
        return TaskAssignmentMessage(
            vehicle_id=body["vehicle_id"],
            tasks=tuple(
                (int(t[0]), str(t[1]), tuple(int(g) for g in t[2]))
                for t in body["tasks"]
            ),
        )
    if cls is LabelSubmission:
        return LabelSubmission(
            vehicle_id=body["vehicle_id"],
            labels=tuple((int(t), int(l)) for t, l in body["labels"]),
        )
    if cls is DownloadResponse:
        return DownloadResponse(
            segment_id=body["segment_id"],
            aps=tuple(ApRecord(**ap) for ap in body["aps"]),
            generation=int(body.get("generation", 0)),
        )
    if cls is LookupRequest:
        return LookupRequest(
            vehicle_id=body["vehicle_id"], segment_id=body["segment_id"]
        )
    if cls is ErrorResponse:
        return ErrorResponse(reason=body["reason"])
    raise TypeError(f"unhandled message class {cls.__name__}")  # pragma: no cover


def decode_message(text: str) -> ProtocolMessage:
    """Parse a JSON protocol message back into its dataclass."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed protocol message: {error}") from error
    if not isinstance(payload, dict) or "type" not in payload or "body" not in payload:
        raise ValueError("protocol message must have 'type' and 'body' fields")
    type_name = payload["type"]
    if type_name not in _MESSAGE_TYPES:
        raise ValueError(f"unknown message type {type_name!r}")
    return _rebuild(_MESSAGE_TYPES[type_name], payload["body"])
