"""Client–server message protocol with a versioned JSON codec.

Every message is a frozen dataclass; :func:`encode_message` /
:func:`decode_message` round-trip them through JSON with an explicit
``type`` tag and a ``v`` (protocol version) field, so the protocol is
self-describing *and* evolvable on the wire: a node can reject a frame
from an incompatible peer with a clear error instead of mis-parsing it.

Version history
---------------
* **v1** (implicit) — ``{"type", "body"}`` envelope, no version field.
* **v2** — ``{"v", "type", "body"}`` envelope; new :class:`TaskRequest`
  poll message; :class:`LabelSubmission` gained an optional
  ``segment_id`` so submissions are wire-routable when a vehicle has
  several rounds open at once.  Additive (same version): the
  :class:`BusyResponse` backpressure reply — an overloaded shard answers
  a request with it instead of queueing unboundedly; clients honor
  ``retry_after_s`` and re-send (see docs/SERVING.md).  Nodes predating
  it reject the frame as an unknown type, which retrying clients treat
  the same as any other error reply.

Encoding is hand-rolled per message type (no ``dataclasses.asdict``
deep-copy walk): the runtime transport pushes every client↔server
exchange through this codec, so it sits on the campaign hot path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple, Type, Union

from repro.geo.points import Point

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolVersionError",
    "ApRecord",
    "UploadReport",
    "TaskRequest",
    "TaskAssignmentMessage",
    "LabelSubmission",
    "DownloadResponse",
    "LookupRequest",
    "ErrorResponse",
    "BusyResponse",
    "ProtocolMessage",
    "encode_message",
    "decode_message",
]

#: Wire format generation this node speaks.  Bump on any envelope or
#: message-shape change and document the change in the module docstring.
PROTOCOL_VERSION = 2


class ProtocolVersionError(ValueError):
    """A frame carried a missing or incompatible protocol version."""


@dataclass(frozen=True)
class ApRecord:
    """One AP estimate as carried in protocol messages."""

    x: float
    y: float
    credits: float = 1.0

    def to_point(self) -> Point:
        """The record's location as a geometry-layer :class:`Point`."""
        return Point(self.x, self.y)

    @staticmethod
    def from_point(point: Point, credits: float = 1.0) -> "ApRecord":
        """Build a wire record from a geometry-layer :class:`Point`."""
        return ApRecord(x=point.x, y=point.y, credits=credits)


@dataclass(frozen=True)
class UploadReport:
    """Crowd-vehicle → server: one drive's coarse AP estimates."""

    vehicle_id: str
    segment_id: str
    timestamp: float
    aps: Tuple[ApRecord, ...]
    lattice_length_m: float

    def __post_init__(self) -> None:
        if not self.vehicle_id or not self.segment_id:
            raise ValueError("vehicle_id and segment_id must be non-empty")
        if self.lattice_length_m <= 0:
            raise ValueError(
                f"lattice_length_m must be > 0, got {self.lattice_length_m}"
            )


@dataclass(frozen=True)
class TaskRequest:
    """Crowd-vehicle → server: poll for the mapping tasks of a round.

    A vehicle that uploaded on a segment asks whether the open round
    assigned it any tasks; the server answers with the stored
    :class:`TaskAssignmentMessage` (or an :class:`ErrorResponse` when no
    round is open or the vehicle is not a participant).
    """

    vehicle_id: str
    segment_id: str

    def __post_init__(self) -> None:
        if not self.vehicle_id or not self.segment_id:
            raise ValueError("vehicle_id and segment_id must be non-empty")


@dataclass(frozen=True)
class TaskAssignmentMessage:
    """Server → crowd-vehicle: mapping tasks to label.

    Each task is (task_id, segment_id, pattern grid indices); the vehicle
    answers whether the pattern matches its own observation of the
    segment.
    """

    vehicle_id: str
    tasks: Tuple[Tuple[int, str, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class LabelSubmission:
    """Crowd-vehicle → server: ±1 answers to assigned mapping tasks.

    ``segment_id`` (v2) addresses the round the labels belong to; the
    empty string keeps the v1 behaviour of routing to the vehicle's
    oldest open round, which is only unambiguous while a vehicle has at
    most one round open.
    """

    vehicle_id: str
    labels: Tuple[Tuple[int, int], ...]  # (task_id, ±1)
    segment_id: str = ""

    def __post_init__(self) -> None:
        for task_id, label in self.labels:
            if label not in (-1, 1):
                raise ValueError(
                    f"label for task {task_id} must be ±1, got {label}"
                )

    def as_dict(self) -> Dict[int, int]:
        """The submitted labels as a task-id → ±1 mapping."""
        return {task_id: label for task_id, label in self.labels}


@dataclass(frozen=True)
class DownloadResponse:
    """Server → user-vehicle: the fused fine-grained AP map of a segment."""

    segment_id: str
    aps: Tuple[ApRecord, ...]
    generation: int = 0


@dataclass(frozen=True)
class LookupRequest:
    """User-vehicle → server: request a segment's fused AP map."""

    vehicle_id: str
    segment_id: str

    def __post_init__(self) -> None:
        if not self.vehicle_id or not self.segment_id:
            raise ValueError("vehicle_id and segment_id must be non-empty")


@dataclass(frozen=True)
class ErrorResponse:
    """Server → client: a request could not be served."""

    reason: str

    def __post_init__(self) -> None:
        if not self.reason:
            raise ValueError("reason must be non-empty")


@dataclass(frozen=True)
class BusyResponse:
    """Server → client: the shard's inbound queue is full, try again.

    The wire-level backpressure signal of the serving tier (see
    docs/SERVING.md): instead of queueing unboundedly, an overloaded
    shard answers with the delay it wants the client to wait
    (``retry_after_s``) and its queue depth at rejection time (for
    telemetry).  :class:`~repro.runtime.transport.TransportBusy` is the
    client-side exception carrying these fields into the retry loop.
    """

    retry_after_s: float
    queue_depth: int = 0

    def __post_init__(self) -> None:
        if self.retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {self.retry_after_s}"
            )


#: Every dataclass that can cross the wire.
ProtocolMessage = Union[
    UploadReport,
    TaskRequest,
    TaskAssignmentMessage,
    LabelSubmission,
    DownloadResponse,
    LookupRequest,
    ErrorResponse,
    BusyResponse,
]

_MESSAGE_TYPES: Dict[str, Type[ProtocolMessage]] = {
    "upload_report": UploadReport,
    "task_request": TaskRequest,
    "task_assignment": TaskAssignmentMessage,
    "label_submission": LabelSubmission,
    "download_response": DownloadResponse,
    "lookup_request": LookupRequest,
    "error_response": ErrorResponse,
    "busy": BusyResponse,
}
_TYPE_NAMES = {cls: name for name, cls in _MESSAGE_TYPES.items()}


def _record_body(record: ApRecord) -> Dict[str, Any]:
    return {"x": record.x, "y": record.y, "credits": record.credits}


def _body_of(message: ProtocolMessage) -> Dict[str, Any]:
    """Hand-rolled body serialisation (no asdict deep-copy walk)."""
    if isinstance(message, UploadReport):
        return {
            "vehicle_id": message.vehicle_id,
            "segment_id": message.segment_id,
            "timestamp": message.timestamp,
            "aps": [_record_body(ap) for ap in message.aps],
            "lattice_length_m": message.lattice_length_m,
        }
    if isinstance(message, TaskRequest):
        return {
            "vehicle_id": message.vehicle_id,
            "segment_id": message.segment_id,
        }
    if isinstance(message, TaskAssignmentMessage):
        return {
            "vehicle_id": message.vehicle_id,
            "tasks": [
                [task_id, segment_id, list(pattern)]
                for task_id, segment_id, pattern in message.tasks
            ],
        }
    if isinstance(message, LabelSubmission):
        return {
            "vehicle_id": message.vehicle_id,
            "labels": [list(pair) for pair in message.labels],
            "segment_id": message.segment_id,
        }
    if isinstance(message, DownloadResponse):
        return {
            "segment_id": message.segment_id,
            "aps": [_record_body(ap) for ap in message.aps],
            "generation": message.generation,
        }
    if isinstance(message, LookupRequest):
        return {
            "vehicle_id": message.vehicle_id,
            "segment_id": message.segment_id,
        }
    if isinstance(message, ErrorResponse):
        return {"reason": message.reason}
    if isinstance(message, BusyResponse):
        return {
            "retry_after_s": message.retry_after_s,
            "queue_depth": message.queue_depth,
        }
    raise TypeError(  # pragma: no cover - guarded by encode_message
        f"unhandled message class {type(message).__name__}"
    )


def encode_message(message: ProtocolMessage) -> str:
    """Serialize a protocol message to a JSON string with a type tag.

    The envelope is ``{"v": PROTOCOL_VERSION, "type": ..., "body": ...}``
    with sorted keys, so equal messages encode to equal strings.
    """
    cls = type(message)
    if cls not in _TYPE_NAMES:
        raise TypeError(f"{cls.__name__} is not a protocol message")
    payload = {
        "v": PROTOCOL_VERSION,
        "type": _TYPE_NAMES[cls],
        "body": _body_of(message),
    }
    return json.dumps(payload, sort_keys=True)


def _rebuild(cls: Type[ProtocolMessage], body: Dict[str, Any]) -> ProtocolMessage:
    if cls is UploadReport:
        return UploadReport(
            vehicle_id=body["vehicle_id"],
            segment_id=body["segment_id"],
            timestamp=body["timestamp"],
            aps=tuple(ApRecord(**ap) for ap in body["aps"]),
            lattice_length_m=body["lattice_length_m"],
        )
    if cls is TaskRequest:
        return TaskRequest(
            vehicle_id=body["vehicle_id"], segment_id=body["segment_id"]
        )
    if cls is TaskAssignmentMessage:
        return TaskAssignmentMessage(
            vehicle_id=body["vehicle_id"],
            tasks=tuple(
                (int(t[0]), str(t[1]), tuple(int(g) for g in t[2]))
                for t in body["tasks"]
            ),
        )
    if cls is LabelSubmission:
        return LabelSubmission(
            vehicle_id=body["vehicle_id"],
            labels=tuple((int(t), int(l)) for t, l in body["labels"]),
            segment_id=str(body.get("segment_id", "")),
        )
    if cls is DownloadResponse:
        return DownloadResponse(
            segment_id=body["segment_id"],
            aps=tuple(ApRecord(**ap) for ap in body["aps"]),
            generation=int(body.get("generation", 0)),
        )
    if cls is LookupRequest:
        return LookupRequest(
            vehicle_id=body["vehicle_id"], segment_id=body["segment_id"]
        )
    if cls is ErrorResponse:
        return ErrorResponse(reason=body["reason"])
    if cls is BusyResponse:
        return BusyResponse(
            retry_after_s=float(body["retry_after_s"]),
            queue_depth=int(body.get("queue_depth", 0)),
        )
    raise TypeError(f"unhandled message class {cls.__name__}")  # pragma: no cover


def decode_message(text: str) -> ProtocolMessage:
    """Parse a JSON protocol message back into its dataclass.

    Raises :class:`ProtocolVersionError` (a :class:`ValueError`) when the
    frame's ``v`` field is missing or differs from
    :data:`PROTOCOL_VERSION`, so endpoints can answer incompatible peers
    with a clear :class:`ErrorResponse` instead of a parse failure.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed protocol message: {error}") from error
    if not isinstance(payload, dict) or "type" not in payload or "body" not in payload:
        raise ValueError("protocol message must have 'type' and 'body' fields")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"unsupported protocol version {version!r}; this node speaks "
            f"v{PROTOCOL_VERSION}"
        )
    type_name = payload["type"]
    if type_name not in _MESSAGE_TYPES:
        raise ValueError(f"unknown message type {type_name!r}")
    return _rebuild(_MESSAGE_TYPES[type_name], payload["body"])


#: Decoder dispatch is type-driven; kept for introspection/tests.
_DECODERS: Dict[str, Callable[[Dict[str, Any]], ProtocolMessage]] = {
    name: (lambda body, _cls=cls: _rebuild(_cls, body))
    for name, cls in _MESSAGE_TYPES.items()
}
