"""Road-segment planning: partitioning a city into crowdsourcing units.

The paper's mapping tasks are defined *per road segment* ("a possible
distribution pattern … given a road segment ID", §5.2), and
crowd-vehicles are assigned "lookup tasks … in some road segments" (§3).
:class:`SegmentPlanner` supplies that geography: it tiles the operating
area into rectangular segments with stable ids, maps positions and
whole traces onto them, and builds the per-segment grids the
crowd-server registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.radio.rss import RssMeasurement

__all__ = ["Segment", "SegmentPlanner"]


@dataclass(frozen=True)
class Segment:
    """One rectangular road segment."""

    segment_id: str
    box: BoundingBox

    def grid(self, lattice_length_m: float, *, margin_m: float = 0.0) -> Grid:
        """The CS grid covering this segment (optionally padded)."""
        return Grid(
            box=self.box.expanded(margin_m), lattice_length=lattice_length_m
        )


class SegmentPlanner:
    """Tiles an operating area into an ``n_rows × n_cols`` segment grid.

    Segment ids are stable strings ``seg-<row>-<col>``.  Positions on a
    shared edge belong to the lower-indexed segment (the tiling is a
    partition).
    """

    def __init__(
        self, area: BoundingBox, *, n_rows: int = 2, n_cols: int = 2
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError(
                f"need at least a 1x1 tiling, got {n_rows}x{n_cols}"
            )
        if area.width <= 0 or area.height <= 0:
            raise ValueError("area must have positive extent")
        self.area = area
        self.n_rows = n_rows
        self.n_cols = n_cols

    @property
    def n_segments(self) -> int:
        """How many road-segment tiles the planner manages."""
        return self.n_rows * self.n_cols

    def segment_id(self, row: int, col: int) -> str:
        """Stable id of the tile at ``(row, col)`` (IndexError off-grid)."""
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise IndexError(f"no segment ({row}, {col})")
        return f"seg-{row}-{col}"

    def segment(self, row: int, col: int) -> Segment:
        """The segment at tile ``(row, col)``."""
        segment_id = self.segment_id(row, col)
        width = self.area.width / self.n_cols
        height = self.area.height / self.n_rows
        return Segment(
            segment_id=segment_id,
            box=BoundingBox(
                self.area.min_x + col * width,
                self.area.min_y + row * height,
                self.area.min_x + (col + 1) * width,
                self.area.min_y + (row + 1) * height,
            ),
        )

    def all_segments(self) -> List[Segment]:
        """Every segment, row-major."""
        return [
            self.segment(row, col)
            for row in range(self.n_rows)
            for col in range(self.n_cols)
        ]

    def locate(self, point: Point) -> Segment:
        """The segment containing ``point`` (clamped to the border tiles)."""
        col = int(
            (point.x - self.area.min_x) / self.area.width * self.n_cols
        )
        row = int(
            (point.y - self.area.min_y) / self.area.height * self.n_rows
        )
        col = min(max(col, 0), self.n_cols - 1)
        row = min(max(row, 0), self.n_rows - 1)
        return self.segment(row, col)

    def split_trace(
        self, measurements: Iterable[RssMeasurement]
    ) -> Dict[str, List[RssMeasurement]]:
        """Partition a trace by the segment each reading was taken in.

        Readings stay in collection order within each segment, so the
        per-segment sub-traces remain valid sliding-window inputs.
        """
        out: Dict[str, List[RssMeasurement]] = {}
        for measurement in measurements:
            segment = self.locate(measurement.position)
            out.setdefault(segment.segment_id, []).append(measurement)
        return out

    def segments_along(
        self, positions: Sequence[Point]
    ) -> List[str]:
        """Distinct segment ids a sequence of positions passes through,
        in first-visited order."""
        seen: List[str] = []
        for position in positions:
            segment_id = self.locate(position).segment_id
            if segment_id not in seen:
                seen.append(segment_id)
        return seen
