"""The crowd-server (§3, §5).

Responsibilities, in the order of the Fig. 2 offline half:

1. **Collect** coarse AP reports uploaded by crowd-vehicles.
2. **Generate mapping tasks** for a segment: each distinct reported AP
   placement (snapped to the segment grid) becomes a candidate pattern,
   plus perturbed variants so the pool contains non-existent patterns to
   catch spammers (§5.2's bootstrapping).
3. **Assign** each task to multiple vehicles on a bipartite graph.
4. **Aggregate** the submitted ±1 labels with KOS iterative inference,
   obtaining per-vehicle reliabilities (§5.3).
5. **Fuse** the reports with reliability-weighted centroid processing and
   publish the fine-grained map (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.crowd.assignment import BipartiteAssignment
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.crowd.inference import kos_inference
from repro.geo.grid import Grid
from repro.middleware.database import ApDatabase
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    TaskAssignmentMessage,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.util.rng import RngLike, ensure_rng

__all__ = ["ServerConfig", "CrowdServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Crowd-server tunables."""

    workers_per_task: int = 3
    perturbed_variants_per_pattern: int = 1
    fusion_alignment_radius_m: float = 15.0
    fusion_min_support: int = 1
    default_reliability: float = 0.75
    #: Below this many participating vehicles the iterative inference is
    #: statistically unreliable (its messages can lock onto a spurious
    #: fixed point); reliability then falls back to majority-vote
    #: agreement, which is exactly KOS's 0-th iteration.
    min_workers_for_kos: int = 6

    def __post_init__(self) -> None:
        if self.workers_per_task < 1:
            raise ValueError(
                f"workers_per_task must be >= 1, got {self.workers_per_task}"
            )
        if self.perturbed_variants_per_pattern < 0:
            raise ValueError(
                "perturbed_variants_per_pattern must be >= 0, got "
                f"{self.perturbed_variants_per_pattern}"
            )
        if not 0.0 < self.default_reliability <= 1.0:
            raise ValueError(
                f"default_reliability must be in (0, 1], got {self.default_reliability}"
            )


@dataclass
class _TaskPool:
    """One segment's open crowdsourcing round."""

    tasks: List[Tuple[int, FrozenSet[int]]]            # (task_id, pattern)
    vehicle_order: List[str]
    assignment: BipartiteAssignment
    labels: np.ndarray                                  # (n_tasks, n_vehicles)
    submissions_seen: Dict[str, bool]


class CrowdServer:
    """In-process crowd-server speaking the protocol messages."""

    def __init__(
        self, config: ServerConfig = None, *, rng: RngLike = None
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.database = ApDatabase()
        self._grids: Dict[str, Grid] = {}
        self._pools: Dict[str, _TaskPool] = {}
        self._reliabilities: Dict[str, float] = {}
        self._rng = ensure_rng(rng)

    # -- registration & upload -----------------------------------------

    def register_segment(self, segment_id: str, grid: Grid) -> None:
        """Declare a road segment and the grid its patterns live on."""
        self._grids[segment_id] = grid
        self.database.segment(segment_id)

    def segment_grid(self, segment_id: str) -> Grid:
        if segment_id not in self._grids:
            raise KeyError(f"segment {segment_id!r} is not registered")
        return self._grids[segment_id]

    def receive_report(self, report: UploadReport) -> None:
        """Store an uploaded coarse AP report."""
        if report.segment_id not in self._grids:
            raise KeyError(
                f"report for unregistered segment {report.segment_id!r}"
            )
        self.database.segment(report.segment_id).add_report(report)

    def reliability_of(self, vehicle_id: str) -> float:
        """Current reliability belief for a vehicle (default before any round)."""
        return self._reliabilities.get(vehicle_id, self.config.default_reliability)

    # -- task generation & assignment ------------------------------------

    def open_round(self, segment_id: str) -> Dict[str, TaskAssignmentMessage]:
        """Build the task pool for a segment and assign tasks to vehicles.

        Returns one :class:`TaskAssignmentMessage` per participating
        vehicle.  Requires at least one report on the segment.
        """
        grid = self.segment_grid(segment_id)
        store = self.database.segment(segment_id)
        vehicles = store.vehicles()
        if not vehicles:
            raise RuntimeError(
                f"segment {segment_id!r} has no reports; nothing to crowdsource"
            )

        patterns = self._candidate_patterns(segment_id, grid)
        tasks = [(task_id, pattern) for task_id, pattern in enumerate(patterns)]
        assignment = self._assign(len(tasks), vehicles)
        labels = np.zeros((len(tasks), len(vehicles)), dtype=int)
        self._pools[segment_id] = _TaskPool(
            tasks=tasks,
            vehicle_order=list(vehicles),
            assignment=assignment,
            labels=labels,
            submissions_seen={v: False for v in vehicles},
        )

        messages: Dict[str, TaskAssignmentMessage] = {}
        for worker_index, vehicle_id in enumerate(vehicles):
            task_indices = assignment.tasks_of_worker.get(worker_index, [])
            messages[vehicle_id] = TaskAssignmentMessage(
                vehicle_id=vehicle_id,
                tasks=tuple(
                    (
                        tasks[t][0],
                        segment_id,
                        tuple(sorted(tasks[t][1])),
                    )
                    for t in task_indices
                ),
            )
        return messages

    def _candidate_patterns(
        self, segment_id: str, grid: Grid
    ) -> List[FrozenSet[int]]:
        """Distinct reported placements plus perturbed (likely bogus) variants."""
        store = self.database.segment(segment_id)
        patterns: List[FrozenSet[int]] = []
        seen = set()
        for report in store.reports:
            snapped = frozenset(
                grid.snap(record.to_point()) for record in report.aps
            )
            if snapped and snapped not in seen:
                seen.add(snapped)
                patterns.append(snapped)
        variants: List[FrozenSet[int]] = []
        for pattern in patterns:
            for _ in range(self.config.perturbed_variants_per_pattern):
                variant = self._perturb(pattern, grid)
                if variant not in seen:
                    seen.add(variant)
                    variants.append(variant)
        return patterns + variants

    def _perturb(self, pattern: FrozenSet[int], grid: Grid) -> FrozenSet[int]:
        cells = list(pattern)
        target = cells[int(self._rng.integers(len(cells)))]
        neighbors = [n for n in grid.neighbors(target, radius=2) if n not in pattern]
        if not neighbors:
            return pattern
        moved = set(pattern)
        moved.discard(target)
        moved.add(int(self._rng.choice(neighbors)))
        return frozenset(moved)

    def _assign(self, n_tasks: int, vehicles: List[str]) -> BipartiteAssignment:
        """Assign each task to ``min(ℓ, M)`` distinct vehicles at random.

        Unlike the controlled Fig. 7 experiments (which use exactly
        (ℓ,γ)-regular graphs), live segments have arbitrary vehicle
        counts, so only the left degree is kept regular.
        """
        n_vehicles = len(vehicles)
        per_task = min(self.config.workers_per_task, n_vehicles)
        edges = []
        for task in range(n_tasks):
            chosen = self._rng.choice(n_vehicles, size=per_task, replace=False)
            edges.extend((task, int(worker)) for worker in chosen)
        return BipartiteAssignment(
            n_tasks=n_tasks, n_workers=n_vehicles, edges=edges
        )

    # -- label collection & aggregation ----------------------------------

    def submit_labels(self, segment_id: str, submission: LabelSubmission) -> None:
        """Record one vehicle's answers for the open round."""
        pool = self._require_pool(segment_id)
        if submission.vehicle_id not in pool.vehicle_order:
            raise KeyError(
                f"vehicle {submission.vehicle_id!r} is not part of this round"
            )
        worker_index = pool.vehicle_order.index(submission.vehicle_id)
        expected = set(pool.assignment.tasks_of_worker.get(worker_index, []))
        answered = submission.as_dict()
        task_id_to_index = {task_id: i for i, (task_id, _) in enumerate(pool.tasks)}
        for task_id, label in answered.items():
            if task_id not in task_id_to_index:
                raise KeyError(f"unknown task id {task_id}")
            task_index = task_id_to_index[task_id]
            if task_index not in expected:
                raise ValueError(
                    f"vehicle {submission.vehicle_id!r} answered unassigned "
                    f"task {task_id}"
                )
            pool.labels[task_index, worker_index] = label
        missing = expected - {task_id_to_index[t] for t in answered}
        if missing:
            raise ValueError(
                f"vehicle {submission.vehicle_id!r} left "
                f"{len(missing)} assigned tasks unanswered"
            )
        pool.submissions_seen[submission.vehicle_id] = True

    def round_complete(self, segment_id: str) -> bool:
        pool = self._require_pool(segment_id)
        return all(pool.submissions_seen.values())

    def aggregate(self, segment_id: str) -> DownloadResponse:
        """Run KOS on the round's labels, fuse reports, publish the map."""
        pool = self._require_pool(segment_id)
        if not self.round_complete(segment_id):
            missing = [v for v, seen in pool.submissions_seen.items() if not seen]
            raise RuntimeError(
                f"round on {segment_id!r} incomplete; waiting on {missing}"
            )
        max_iterations = (
            100
            if pool.assignment.n_workers >= self.config.min_workers_for_kos
            else 0  # 0 iterations of KOS = majority voting (§5.3)
        )
        result = kos_inference(
            pool.labels,
            pool.assignment,
            max_iterations=max_iterations,
            rng=self._rng,
        )
        for worker_index, vehicle_id in enumerate(pool.vehicle_order):
            self._reliabilities[vehicle_id] = float(
                result.worker_reliability[worker_index]
            )

        store = self.database.segment(segment_id)
        reports: List[VehicleReport] = []
        for vehicle_id in pool.vehicle_order:
            latest = store.latest_report_of(vehicle_id)
            if latest is None:
                continue
            reports.append(
                VehicleReport(
                    vehicle_id=vehicle_id,
                    ap_locations=tuple(r.to_point() for r in latest.aps),
                    reliability=self.reliability_of(vehicle_id),
                )
            )
        fused = weighted_centroid_fusion(
            reports,
            alignment_radius_m=self.config.fusion_alignment_radius_m,
            min_support=self.config.fusion_min_support,
        )
        records = [
            ApRecord(x=ap.location.x, y=ap.location.y, credits=ap.total_weight)
            for ap in fused
        ]
        store.publish(records)
        del self._pools[segment_id]
        return store.snapshot()

    # -- wire endpoint ------------------------------------------------------

    def handle_wire_message(self, text: str) -> Optional[str]:
        """Serve one encoded protocol message; return the encoded reply.

        The in-process transport for what a deployment would do over
        HTTP: uploads and label submissions are acknowledged silently
        (``None``), lookup requests return an encoded
        :class:`DownloadResponse`, and failures come back as an encoded
        :class:`ErrorResponse` instead of raising across the "wire".
        """
        try:
            message = decode_message(text)
        except ValueError as error:
            return encode_message(ErrorResponse(reason=str(error)))
        try:
            if isinstance(message, UploadReport):
                self.receive_report(message)
                return None
            if isinstance(message, LabelSubmission):
                # Labels carry no segment id on the wire; route them to
                # the (single) open round awaiting this vehicle.
                for segment_id, pool in self._pools.items():
                    if message.vehicle_id in pool.vehicle_order:
                        self.submit_labels(segment_id, message)
                        return None
                raise KeyError(
                    f"no open round awaits vehicle {message.vehicle_id!r}"
                )
            if isinstance(message, LookupRequest):
                return encode_message(self.download(message.segment_id))
        except (KeyError, ValueError, RuntimeError) as error:
            return encode_message(ErrorResponse(reason=str(error)))
        return encode_message(
            ErrorResponse(
                reason=f"cannot handle {type(message).__name__} here"
            )
        )

    # -- download ---------------------------------------------------------

    def download(self, segment_id: str) -> DownloadResponse:
        """Serve the current fused map of a segment."""
        if not self.database.has_segment(segment_id):
            raise KeyError(f"unknown segment {segment_id!r}")
        return self.database.segment(segment_id).snapshot()

    def _require_pool(self, segment_id: str) -> _TaskPool:
        if segment_id not in self._pools:
            raise RuntimeError(
                f"no open crowdsourcing round on segment {segment_id!r}"
            )
        return self._pools[segment_id]
