"""The crowd-server (§3, §5).

Responsibilities, in the order of the Fig. 2 offline half:

1. **Collect** coarse AP reports uploaded by crowd-vehicles.
2. **Generate mapping tasks** for a segment: each distinct reported AP
   placement (snapped to the segment grid) becomes a candidate pattern,
   plus perturbed variants so the pool contains non-existent patterns to
   catch spammers (§5.2's bootstrapping).
3. **Assign** each task to multiple vehicles on a bipartite graph.
4. **Aggregate** the submitted ±1 labels with KOS iterative inference,
   obtaining per-vehicle reliabilities (§5.3).
5. **Fuse** the reports with reliability-weighted centroid processing and
   publish the fine-grained map (§5.4).

Round construction (:func:`_plan_round`) and aggregation
(:func:`_aggregate_round`) are pure module-level functions over picklable
job descriptions, so :meth:`CrowdServer.open_rounds` /
:meth:`CrowdServer.aggregate_rounds` can fan independent segments over
:func:`repro.util.parallel.run_recorded_tasks`.  Each segment carries its own
child generator spawned from the server seed *before* dispatch and
results are merged in submission order, so any worker count produces a
bit-identical server state for the same seed.

Aggregation is **streaming**: every open round owns a
:class:`repro.crowd.streaming.StreamingKos` consumer that
:meth:`CrowdServer.submit_labels` feeds on arrival, so message-passing
work is amortised across the round instead of happening all at once at
the aggregate step.  ``_aggregate_round`` is then a thin finalizer over
that state — ``finalize()`` is bit-identical to batch ``kos_inference``
on the completed pool, so nothing downstream can tell the difference.
Per-vehicle reliabilities live in a
:class:`repro.crowd.streaming.ReliabilityLedger` carried across rounds
(exponential forgetting via ``ServerConfig.reliability_forgetting``;
the default 1.0 reproduces the historical overwrite semantics exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.crowd.assignment import BipartiteAssignment
from repro.crowd.fine_grained import VehicleReport, weighted_centroid_fusion
from repro.crowd.inference import kos_inference
from repro.crowd.streaming import ReliabilityLedger, StreamingKos
from repro.geo.grid import Grid
from repro.middleware.database import ApDatabase
from repro.middleware.protocol import (
    ApRecord,
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    ProtocolMessage,
    TaskAssignmentMessage,
    TaskRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.obs.recorder import NULL_RECORDER, Recorder, ensure_recorder
from repro.util.parallel import run_recorded_tasks
from repro.util.rng import RngLike, ensure_rng, spawn_children

__all__ = ["ServerConfig", "CrowdServer"]

#: Perturbation retry budget per requested variant: drawing an
#: already-pooled variant is retried this many times before giving up on
#: that slot (patterns with very few free neighbor cells).
_PERTURB_ATTEMPTS_PER_VARIANT = 16


@dataclass(frozen=True)
class ServerConfig:
    """Crowd-server tunables."""

    workers_per_task: int = 3
    perturbed_variants_per_pattern: int = 1
    fusion_alignment_radius_m: float = 15.0
    fusion_min_support: int = 1
    default_reliability: float = 0.75
    #: Below this many participating vehicles the iterative inference is
    #: statistically unreliable (its messages can lock onto a spurious
    #: fixed point); reliability then falls back to majority-vote
    #: agreement, which is exactly KOS's 0-th iteration.
    min_workers_for_kos: int = 6
    #: Weight of the newest round's calibrated reliability in the
    #: cross-round ledger belief: ``post = (1-λ)·prior + λ·observation``.
    #: The default 1.0 is plain overwrite — bit-identical to the
    #: pre-ledger behaviour; lower it to remember history (0.6 is a good
    #: drift-detection setting, see crowd/simulate.py).
    reliability_forgetting: float = 1.0

    def __post_init__(self) -> None:
        if self.workers_per_task < 1:
            raise ValueError(
                f"workers_per_task must be >= 1, got {self.workers_per_task}"
            )
        if self.perturbed_variants_per_pattern < 0:
            raise ValueError(
                "perturbed_variants_per_pattern must be >= 0, got "
                f"{self.perturbed_variants_per_pattern}"
            )
        if not 0.0 < self.default_reliability <= 1.0:
            raise ValueError(
                f"default_reliability must be in (0, 1], got {self.default_reliability}"
            )
        if not 0.0 < self.reliability_forgetting <= 1.0:
            raise ValueError(
                "reliability_forgetting must be in (0, 1], got "
                f"{self.reliability_forgetting}"
            )


@dataclass
class _TaskPool:
    """One segment's open crowdsourcing round.

    ``vehicle_index`` and ``task_row`` are the inverse lookups of
    ``vehicle_order`` / ``tasks`` — precomputed once at install time so
    label submission is O(answers), not O(vehicles + tasks) per call.
    """

    tasks: List[Tuple[int, FrozenSet[int]]]            # (task_id, pattern)
    vehicle_order: List[str]
    assignment: BipartiteAssignment
    labels: NDArray[np.int_]                            # (n_tasks, n_vehicles)
    submissions_seen: Dict[str, bool]
    vehicle_index: Dict[str, int]                       # vehicle_id -> column
    task_row: Dict[int, int]                            # task_id -> row
    #: Incremental KOS consumer fed by ``submit_labels``; aggregation
    #: finalizes it instead of recomputing from the label matrix.
    stream: StreamingKos


# -- pure round construction / aggregation (picklable) ---------------------


@dataclass(frozen=True)
class _RoundJob:
    """Everything needed to build one segment's round, picklable."""

    segment_id: str
    grid: Grid
    reports: Tuple[UploadReport, ...]
    vehicles: Tuple[str, ...]
    config: ServerConfig
    rng: np.random.Generator


@dataclass(frozen=True)
class _RoundPlan:
    """The deterministic product of :func:`_plan_round`."""

    segment_id: str
    vehicles: Tuple[str, ...]
    patterns: Tuple[FrozenSet[int], ...]
    assignment: BipartiteAssignment


@dataclass(frozen=True)
class _AggregateJob:
    """Everything needed to aggregate one completed round, picklable."""

    segment_id: str
    labels: NDArray[np.int_]
    assignment: BipartiteAssignment
    vehicle_order: Tuple[str, ...]
    latest_reports: Tuple[Tuple[str, UploadReport], ...]
    config: ServerConfig
    rng: np.random.Generator
    #: The round's streaming consumer; when present, aggregation is a
    #: thin ``finalize()`` over it (bit-identical to the batch path run
    #: on ``labels``, which remains the fallback for callers that build
    #: jobs without a live pool, e.g. the offline benchmark harness).
    stream: Optional[StreamingKos] = None


@dataclass(frozen=True)
class _AggregateOutcome:
    """The deterministic product of :func:`_aggregate_round`."""

    segment_id: str
    reliabilities: Tuple[Tuple[str, float], ...]
    records: Tuple[ApRecord, ...]


def _perturb_pattern(
    pattern: FrozenSet[int], grid: Grid, rng: np.random.Generator
) -> Optional[FrozenSet[int]]:
    """Move one cell of ``pattern`` to a free neighbor cell.

    Cells are tried in random order until one has a free neighbor; the
    result therefore always differs from ``pattern``.  Returns ``None``
    only when *every* cell is boxed in (no free neighbor anywhere), in
    which case no perturbed variant exists at all.
    """
    cells = sorted(pattern)
    for position in rng.permutation(len(cells)):
        target = cells[int(position)]
        neighbors = [
            n for n in grid.neighbors(target, radius=2) if n not in pattern
        ]
        if neighbors:
            moved = set(pattern)
            moved.discard(target)
            moved.add(int(rng.choice(neighbors)))
            return frozenset(moved)
    return None


def _candidate_patterns(
    reports: Sequence[UploadReport],
    grid: Grid,
    config: ServerConfig,
    rng: np.random.Generator,
    recorder: Recorder = NULL_RECORDER,
) -> List[FrozenSet[int]]:
    """Distinct reported placements plus perturbed (likely bogus) variants.

    Each reported pattern contributes up to
    ``perturbed_variants_per_pattern`` *distinct, new* variants: a draw
    that collides with an already-pooled pattern is retried (bounded by
    :data:`_PERTURB_ATTEMPTS_PER_VARIANT`) instead of being silently
    dropped, so the §5.2 spammer-catching pool only falls short when the
    grid genuinely has no further distinct variant to offer.
    """
    patterns: List[FrozenSet[int]] = []
    seen: Set[FrozenSet[int]] = set()
    for report in reports:
        snapped = frozenset(grid.snap(record.to_point()) for record in report.aps)
        if snapped and snapped not in seen:
            seen.add(snapped)
            patterns.append(snapped)
    variants: List[FrozenSet[int]] = []
    for pattern in patterns:
        produced = 0
        attempts = 0
        budget = _PERTURB_ATTEMPTS_PER_VARIANT * config.perturbed_variants_per_pattern
        while produced < config.perturbed_variants_per_pattern and attempts < budget:
            attempts += 1
            variant = _perturb_pattern(pattern, grid, rng)
            if variant is None:
                break  # every cell is boxed in; no distinct variant exists
            if variant in seen:
                continue
            seen.add(variant)
            variants.append(variant)
            produced += 1
    recorder.count("server.patterns.reported", len(patterns))
    recorder.count("server.patterns.variants", len(variants))
    return patterns + variants


def _draw_assignment(
    n_tasks: int,
    n_vehicles: int,
    config: ServerConfig,
    rng: np.random.Generator,
) -> BipartiteAssignment:
    """Assign each task to ``min(ℓ, M)`` distinct vehicles at random.

    Unlike the controlled Fig. 7 experiments (which use exactly
    (ℓ,γ)-regular graphs), live segments have arbitrary vehicle counts,
    so only the left degree is kept regular.
    """
    per_task = min(config.workers_per_task, n_vehicles)
    edges: List[Tuple[int, int]] = []
    for task in range(n_tasks):
        chosen = rng.choice(n_vehicles, size=per_task, replace=False)
        edges.extend((task, int(worker)) for worker in chosen)
    return BipartiteAssignment(n_tasks=n_tasks, n_workers=n_vehicles, edges=edges)


def _plan_round(job: _RoundJob, recorder: Recorder = NULL_RECORDER) -> _RoundPlan:
    """Build one segment's task pool and assignment (pure, picklable)."""
    with recorder.span("server.plan_round"):
        patterns = _candidate_patterns(
            job.reports, job.grid, job.config, job.rng, recorder
        )
        assignment = _draw_assignment(
            len(patterns), len(job.vehicles), job.config, job.rng
        )
    recorder.count("server.tasks", len(patterns))
    recorder.count("server.assignment.edges", len(assignment.edges))
    return _RoundPlan(
        segment_id=job.segment_id,
        vehicles=job.vehicles,
        patterns=tuple(patterns),
        assignment=assignment,
    )


def _aggregate_round(
    job: _AggregateJob, recorder: Recorder = NULL_RECORDER
) -> _AggregateOutcome:
    """Finalize KOS over a round's labels + reliability-weighted fusion (pure).

    With a streaming consumer attached (the server path), this is a thin
    ``finalize()`` over the already-fed message state; without one (e.g.
    benchmark jobs built from a bare label matrix), the batch estimator
    runs — both produce bit-identical results by construction.
    """
    use_kos = job.assignment.n_workers >= job.config.min_workers_for_kos
    # 0 iterations of KOS = majority voting (§5.3); surface the silent
    # small-round fallback so operators can see statistically weak rounds.
    max_iterations = 100 if use_kos else 0
    if not use_kos:
        recorder.count("server.kos_fallback")
    with recorder.span("server.aggregate_round"):
        if job.stream is not None:
            result = job.stream.finalize(
                max_iterations=max_iterations,
                rng=job.rng,
                recorder=recorder,
            )
        else:
            result = kos_inference(
                job.labels,
                job.assignment,
                max_iterations=max_iterations,
                rng=job.rng,
                recorder=recorder,
            )
    reliabilities = tuple(
        (vehicle_id, float(result.worker_reliability[worker_index]))
        for worker_index, vehicle_id in enumerate(job.vehicle_order)
    )
    if recorder.enabled:
        # Per-vehicle reliability trajectories (§5.3): one event per
        # vehicle per aggregated round, plus the distribution histogram.
        for vehicle_id, reliability in reliabilities:
            recorder.event(
                "server.reliability",
                segment=job.segment_id,
                vehicle=vehicle_id,
                value=reliability,
            )
            recorder.observe("server.reliability", reliability)
    reliability_of = dict(reliabilities)
    with recorder.span("server.fusion"):
        reports = [
            VehicleReport(
                vehicle_id=vehicle_id,
                ap_locations=tuple(r.to_point() for r in latest.aps),
                reliability=reliability_of[vehicle_id],
            )
            for vehicle_id, latest in job.latest_reports
        ]
        fused = weighted_centroid_fusion(
            reports,
            alignment_radius_m=job.config.fusion_alignment_radius_m,
            min_support=job.config.fusion_min_support,
        )
    records = tuple(
        ApRecord(x=ap.location.x, y=ap.location.y, credits=ap.total_weight)
        for ap in fused
    )
    recorder.count("server.aps.fused", len(records))
    return _AggregateOutcome(
        segment_id=job.segment_id,
        reliabilities=reliabilities,
        records=records,
    )


class CrowdServer:
    """In-process crowd-server speaking the protocol messages.

    Implements the offline half of Fig. 2: collect coarse reports (§3),
    generate and assign mapping tasks (§5.2), aggregate ±1 labels with KOS
    message passing (§5.3), and publish reliability-weighted fused maps
    (§5.4).  An optional ``recorder`` (see :mod:`repro.obs`) observes
    round lifecycles, task-pool occupancy and per-vehicle reliability
    trajectories without affecting any decision the server makes.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.recorder = ensure_recorder(recorder)
        self.database = ApDatabase()
        self._grids: Dict[str, Grid] = {}
        self._pools: Dict[str, _TaskPool] = {}
        #: Cross-round reliability beliefs.  ``_reliabilities`` aliases
        #: the ledger's backing dict so durable snapshot/restore and the
        #: sharded router keep operating on a plain mapping.
        self._ledger = ReliabilityLedger(
            default=self.config.default_reliability,
            forgetting=self.config.reliability_forgetting,
        )
        self._reliabilities: Dict[str, float] = self._ledger.beliefs
        #: vehicle id -> segment ids of its open rounds, oldest first —
        #: the O(1) replacement for scanning every pool on label routing.
        self._open_rounds_by_vehicle: Dict[str, List[str]] = {}
        #: (segment_id, vehicle_id) -> assignment, held while the round
        #: is open so vehicles can poll for their tasks with
        #: :class:`TaskRequest` instead of being handed the message
        #: through a direct method call.
        self._pending_assignments: Dict[
            Tuple[str, str], TaskAssignmentMessage
        ] = {}
        self._rng = ensure_rng(rng)

    # -- registration & upload -----------------------------------------

    def register_segment(self, segment_id: str, grid: Grid) -> None:
        """Declare a road segment and the grid its patterns live on."""
        self._grids[segment_id] = grid
        self.database.segment(segment_id)

    def segment_grid(self, segment_id: str) -> Grid:
        """The registered pattern grid of a segment (KeyError if unknown)."""
        if segment_id not in self._grids:
            raise KeyError(f"segment {segment_id!r} is not registered")
        return self._grids[segment_id]

    def receive_report(self, report: UploadReport) -> None:
        """Store an uploaded coarse AP report."""
        if report.segment_id not in self._grids:
            raise KeyError(
                f"report for unregistered segment {report.segment_id!r}"
            )
        self.recorder.count("server.reports")
        self.database.segment(report.segment_id).add_report(report)

    def reliability_of(self, vehicle_id: str) -> float:
        """Current ledger belief for a vehicle (default before any round)."""
        return self._ledger.get(vehicle_id)

    # -- task generation & assignment ------------------------------------

    def open_round(self, segment_id: str) -> Dict[str, TaskAssignmentMessage]:
        """Build the task pool for a segment and assign tasks to vehicles.

        Returns one :class:`TaskAssignmentMessage` per participating
        vehicle.  Requires at least one report on the segment.  Draws
        from the server's own generator; :meth:`open_rounds` is the
        multi-segment batch variant with per-segment child streams.
        """
        with self.recorder.span("server.open_round"):
            return self._install_round(
                _plan_round(self._round_job(segment_id, self._rng), self.recorder)
            )

    def open_rounds(
        self,
        segment_ids: Sequence[str],
        *,
        n_workers: Optional[int] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
    ) -> Dict[str, Dict[str, TaskAssignmentMessage]]:
        """Open a round on each segment, optionally over a process pool.

        Each segment's pool is built from its own child generator,
        spawned from the server seed *before* dispatch and consumed in
        submission order, so any ``n_workers`` — including the serial
        default — installs bit-identical rounds for the same seed.
        ``rngs`` substitutes externally spawned per-segment generators
        (one per segment, in order) for the server's own children — the
        hook :class:`repro.runtime.ServerRouter` uses to keep a sharded
        deployment on the exact random stream of a single server.
        Returns ``{segment_id: {vehicle_id: message}}``.
        """
        ids = list(segment_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate segment ids in batch: {ids}")
        if rngs is None:
            children: Sequence[np.random.Generator] = spawn_children(
                self._rng, len(ids)
            )
        else:
            if len(rngs) != len(ids):
                raise ValueError(
                    f"got {len(rngs)} rngs for {len(ids)} segments"
                )
            children = rngs
        jobs = [
            self._round_job(segment_id, child)
            for segment_id, child in zip(ids, children)
        ]
        with self.recorder.span("server.open_rounds"):
            plans = run_recorded_tasks(
                _plan_round, jobs, recorder=self.recorder, n_workers=n_workers
            )
            return {
                plan.segment_id: self._install_round(plan) for plan in plans
            }

    def _round_job(
        self, segment_id: str, rng: np.random.Generator
    ) -> _RoundJob:
        """Validate a segment and package its round inputs."""
        grid = self.segment_grid(segment_id)
        store = self.database.segment(segment_id)
        vehicles = store.vehicles()
        if not vehicles:
            raise RuntimeError(
                f"segment {segment_id!r} has no reports; nothing to crowdsource"
            )
        return _RoundJob(
            segment_id=segment_id,
            grid=grid,
            reports=tuple(store.reports),
            vehicles=tuple(vehicles),
            config=self.config,
            rng=rng,
        )

    def _install_round(
        self, plan: _RoundPlan
    ) -> Dict[str, TaskAssignmentMessage]:
        """Install a built round and materialise its assignment messages."""
        segment_id = plan.segment_id
        if segment_id in self._pools:
            self._remove_round(segment_id)
        vehicles = list(plan.vehicles)
        tasks = [(task_id, pattern) for task_id, pattern in enumerate(plan.patterns)]
        self._pools[segment_id] = _TaskPool(
            tasks=tasks,
            vehicle_order=vehicles,
            assignment=plan.assignment,
            labels=np.zeros((len(tasks), len(vehicles)), dtype=int),
            submissions_seen={v: False for v in vehicles},
            vehicle_index={v: i for i, v in enumerate(vehicles)},
            task_row={task_id: i for i, (task_id, _) in enumerate(tasks)},
            stream=StreamingKos(plan.assignment),
        )
        for vehicle_id in vehicles:
            self._open_rounds_by_vehicle.setdefault(vehicle_id, []).append(
                segment_id
            )
        self.recorder.count("server.rounds.opened")
        self.recorder.gauge("server.pools.open", len(self._pools))
        messages: Dict[str, TaskAssignmentMessage] = {}
        for worker_index, vehicle_id in enumerate(vehicles):
            task_indices = plan.assignment.tasks_of_worker.get(worker_index, [])
            messages[vehicle_id] = TaskAssignmentMessage(
                vehicle_id=vehicle_id,
                tasks=tuple(
                    (
                        tasks[t][0],
                        segment_id,
                        tuple(sorted(tasks[t][1])),
                    )
                    for t in task_indices
                ),
            )
        for vehicle_id, message in messages.items():
            self._pending_assignments[(segment_id, vehicle_id)] = message
        return messages

    def _remove_round(self, segment_id: str) -> None:
        """Close a round and unregister its label routing."""
        pool = self._pools.pop(segment_id)
        for vehicle_id in pool.vehicle_order:
            self._pending_assignments.pop((segment_id, vehicle_id), None)
            open_segments = self._open_rounds_by_vehicle.get(vehicle_id)
            if open_segments is None:
                continue
            open_segments.remove(segment_id)
            if not open_segments:
                del self._open_rounds_by_vehicle[vehicle_id]
        self.recorder.gauge("server.pools.open", len(self._pools))

    # -- label collection & aggregation ----------------------------------

    def submit_labels(self, segment_id: str, submission: LabelSubmission) -> None:
        """Record one vehicle's answers for the open round."""
        pool = self._require_pool(segment_id)
        if submission.vehicle_id not in pool.vehicle_index:
            raise KeyError(
                f"vehicle {submission.vehicle_id!r} is not part of this round"
            )
        worker_index = pool.vehicle_index[submission.vehicle_id]
        expected = set(pool.assignment.tasks_of_worker.get(worker_index, []))
        answered = submission.as_dict()
        answered_rows: List[int] = []
        answered_values: List[int] = []
        for task_id, label in answered.items():
            if task_id not in pool.task_row:
                raise KeyError(f"unknown task id {task_id}")
            task_index = pool.task_row[task_id]
            if task_index not in expected:
                raise ValueError(
                    f"vehicle {submission.vehicle_id!r} answered unassigned "
                    f"task {task_id}"
                )
            answered_rows.append(task_index)
            answered_values.append(label)
        missing = expected - set(answered_rows)
        if missing:
            raise ValueError(
                f"vehicle {submission.vehicle_id!r} left "
                f"{len(missing)} assigned tasks unanswered"
            )
        pool.labels[answered_rows, worker_index] = answered_values
        # Feed the streaming consumer as labels arrive: aggregation later
        # finalizes this state instead of recomputing from the matrix.
        pool.stream.ingest(
            worker_index, answered_rows, answered_values, recorder=self.recorder
        )
        pool.submissions_seen[submission.vehicle_id] = True
        self.recorder.count("server.labels", len(answered))

    def round_complete(self, segment_id: str) -> bool:
        """Whether every participating vehicle has submitted its labels."""
        pool = self._require_pool(segment_id)
        return all(pool.submissions_seen.values())

    def interim_estimates(self, segment_id: str) -> Dict[int, int]:
        """Streaming interim task estimates (±1) for an open round.

        Read from the round's :class:`StreamingKos` state at any point
        between submissions — no recompute over the label matrix.  Tasks
        with no labels yet report +1 (the batch tie-breaking rule).
        """
        pool = self._require_pool(segment_id)
        estimates = pool.stream.estimates()
        return {
            task_id: int(estimates[row]) for task_id, row in pool.task_row.items()
        }

    def aggregate(self, segment_id: str) -> DownloadResponse:
        """Run KOS on the round's labels, fuse reports, publish the map.

        Draws from the server's own generator; :meth:`aggregate_rounds`
        is the multi-segment batch variant with per-segment child streams.
        """
        with self.recorder.span("server.aggregate"):
            job = self._aggregate_job(segment_id, self._rng)
            return self._publish_outcome(_aggregate_round(job, self.recorder))

    def aggregate_rounds(
        self,
        segment_ids: Sequence[str],
        *,
        n_workers: Optional[int] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
    ) -> Dict[str, DownloadResponse]:
        """Aggregate each completed round, optionally over a process pool.

        Per-segment child generators are spawned before dispatch and the
        outcomes are published in submission order, so the resulting
        server state (reliabilities, fused maps, generations) is
        bit-identical for any ``n_workers``.  ``rngs`` substitutes
        externally spawned per-segment generators, as in
        :meth:`open_rounds`.  Returns ``{segment_id: snapshot}``.
        """
        ids = list(segment_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate segment ids in batch: {ids}")
        if rngs is None:
            children: Sequence[np.random.Generator] = spawn_children(
                self._rng, len(ids)
            )
        else:
            if len(rngs) != len(ids):
                raise ValueError(
                    f"got {len(rngs)} rngs for {len(ids)} segments"
                )
            children = rngs
        jobs = [
            self._aggregate_job(segment_id, child)
            for segment_id, child in zip(ids, children)
        ]
        with self.recorder.span("server.aggregate_rounds"):
            outcomes = run_recorded_tasks(
                _aggregate_round, jobs, recorder=self.recorder, n_workers=n_workers
            )
            return {
                outcome.segment_id: self._publish_outcome(outcome)
                for outcome in outcomes
            }

    def _aggregate_job(
        self, segment_id: str, rng: np.random.Generator
    ) -> _AggregateJob:
        """Validate round completeness and package the aggregation inputs."""
        pool = self._require_pool(segment_id)
        if not self.round_complete(segment_id):
            missing = [v for v, seen in pool.submissions_seen.items() if not seen]
            raise RuntimeError(
                f"round on {segment_id!r} incomplete; waiting on {missing}"
            )
        store = self.database.segment(segment_id)
        latest_reports: List[Tuple[str, UploadReport]] = []
        for vehicle_id in pool.vehicle_order:
            latest = store.latest_report_of(vehicle_id)
            if latest is not None:
                latest_reports.append((vehicle_id, latest))
        return _AggregateJob(
            segment_id=segment_id,
            labels=pool.labels,
            assignment=pool.assignment,
            vehicle_order=tuple(pool.vehicle_order),
            latest_reports=tuple(latest_reports),
            config=self.config,
            rng=rng,
            stream=pool.stream,
        )

    def _publish_outcome(self, outcome: _AggregateOutcome) -> DownloadResponse:
        """Merge one aggregation outcome into server state and publish."""
        self.recorder.count("server.rounds.aggregated")
        self._ledger.observe_many(
            outcome.reliabilities, recorder=self.recorder
        )
        store = self.database.segment(outcome.segment_id)
        store.publish(list(outcome.records))
        self._remove_round(outcome.segment_id)
        return store.snapshot()

    # -- wire endpoint ------------------------------------------------------

    def handle_message(
        self, message: ProtocolMessage
    ) -> Optional[ProtocolMessage]:
        """Serve one decoded protocol message; return the reply message.

        The codec-free request/response core shared by every transport:
        uploads and label submissions are acknowledged silently
        (``None``), task polls return the vehicle's stored
        :class:`TaskAssignmentMessage`, lookup requests return a
        :class:`DownloadResponse`, and failures come back as an
        :class:`ErrorResponse` instead of raising across the "wire".
        """
        try:
            if isinstance(message, UploadReport):
                self.receive_report(message)
                return None
            if isinstance(message, TaskRequest):
                key = (message.segment_id, message.vehicle_id)
                if key not in self._pending_assignments:
                    raise KeyError(
                        f"no open round on {message.segment_id!r} assigns "
                        f"tasks to vehicle {message.vehicle_id!r}"
                    )
                return self._pending_assignments[key]
            if isinstance(message, LabelSubmission):
                if message.segment_id:
                    self.submit_labels(message.segment_id, message)
                    return None
                # v1-style submissions carry no segment id; route them to
                # the oldest open round awaiting this vehicle — an O(1)
                # lookup instead of a scan over every open pool.
                open_segments = self._open_rounds_by_vehicle.get(
                    message.vehicle_id
                )
                if not open_segments:
                    raise KeyError(
                        f"no open round awaits vehicle {message.vehicle_id!r}"
                    )
                self.submit_labels(open_segments[0], message)
                return None
            if isinstance(message, LookupRequest):
                return self.download(message.segment_id)
        except (KeyError, ValueError, RuntimeError) as error:
            return ErrorResponse(reason=str(error))
        return ErrorResponse(
            reason=f"cannot handle {type(message).__name__} here"
        )

    def handle_wire_message(self, text: str) -> Optional[str]:
        """Serve one encoded protocol message; return the encoded reply.

        The codec shell around :meth:`handle_message`: decode failures
        (malformed JSON, unknown types, protocol-version mismatches)
        come back as an encoded :class:`ErrorResponse` rather than
        raising across the "wire".
        """
        try:
            message = decode_message(text)
        except ValueError as error:
            return encode_message(ErrorResponse(reason=str(error)))
        reply = self.handle_message(message)
        if reply is None:
            return None
        return encode_message(reply)

    # -- download ---------------------------------------------------------

    def download(self, segment_id: str) -> DownloadResponse:
        """Serve the current fused map of a segment."""
        if not self.database.has_segment(segment_id):
            raise KeyError(f"unknown segment {segment_id!r}")
        return self.database.segment(segment_id).snapshot()

    def _require_pool(self, segment_id: str) -> _TaskPool:
        if segment_id not in self._pools:
            raise RuntimeError(
                f"no open crowdsourcing round on segment {segment_id!r}"
            )
        return self._pools[segment_id]
