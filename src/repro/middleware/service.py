"""The application-facing lookup service interface (Fig. 1).

Applications (WiFi handoff, topology analysis, location-based services)
consume AP information through this facade rather than touching the
database directly, mirroring the middleware's service interface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.geo.points import BoundingBox, Point
from repro.geo.spatialindex import GridBucketIndex
from repro.geo.trajectory import Trajectory
from repro.middleware.database import ApDatabase

__all__ = ["LookupService"]

#: Bucket edge for the fused-AP spatial index — near the typical
#: ``aps_near`` query radius (a communication radius, tens of meters).
_INDEX_CELL_M = 50.0


class LookupService:
    """Read-only query API over the crowd-server's fused AP database.

    ``database`` is any object with the :class:`ApDatabase` query surface
    (``segment``/``segment_ids``/``all_fused_locations``) — the sharded
    runtime's merged view works here unchanged.

    Radius queries go through a :class:`GridBucketIndex` over the fused
    APs, memoized against the per-segment publish generations so it is
    rebuilt only when some segment republishes its map.
    """

    def __init__(self, database: ApDatabase) -> None:
        self._database = database
        self._index_key: Optional[Tuple[Tuple[str, int], ...]] = None
        self._index_aps: List[Point] = []
        self._index: Optional[GridBucketIndex] = None

    def all_aps(self) -> List[Point]:
        """Every fused AP location the server currently knows."""
        return self._database.all_fused_locations()

    def _fused_index(self) -> Tuple[List[Point], Optional[GridBucketIndex]]:
        """The current fused APs and their bucket index (memoized)."""
        key = tuple(
            (segment_id, self._database.segment(segment_id).generation)
            for segment_id in self._database.segment_ids()
        )
        if key != self._index_key:
            aps = self._database.all_fused_locations()
            self._index_key = key
            self._index_aps = aps
            self._index = (
                GridBucketIndex(
                    np.array([(p.x, p.y) for p in aps], dtype=np.float64),
                    _INDEX_CELL_M,
                )
                if aps
                else None
            )
        return self._index_aps, self._index

    def aps_near(self, position: Point, radius_m: float) -> List[Point]:
        """APs within ``radius_m`` of a position, nearest first.

        The bucket index prunes the candidate set and each surviving
        candidate's distance is computed exactly once; candidate order is
        the ``all_aps`` order and the sort is stable, so the result is
        identical to the former full scan.
        """
        if radius_m <= 0:
            raise ValueError(f"radius_m must be > 0, got {radius_m}")
        aps, index = self._fused_index()
        if index is None:
            return []
        hits = []
        for i in index.candidates(position.x, position.y, radius_m).tolist():
            distance = position.distance_to(aps[i])
            if distance <= radius_m:
                hits.append((aps[i], distance))
        hits.sort(key=lambda pair: pair[1])
        return [ap for ap, _ in hits]

    def aps_along(
        self,
        route: Trajectory,
        radius_m: float,
        *,
        sample_every_m: float = 25.0,
    ) -> List[Point]:
        """APs reachable from any point of a route (deduplicated, in
        first-encountered order) — the user-vehicle's pre-drive download.
        """
        if radius_m <= 0:
            raise ValueError(f"radius_m must be > 0, got {radius_m}")
        if sample_every_m <= 0:
            raise ValueError(
                f"sample_every_m must be > 0, got {sample_every_m}"
            )
        n_samples = max(2, int(route.length / sample_every_m))
        seen: List[Point] = []
        for waypoint in route.sample_uniform(n_samples):
            for ap in self.aps_near(waypoint, radius_m):
                if ap not in seen:
                    seen.append(ap)
        return seen

    def count_in(self, box: BoundingBox) -> int:
        """Number of known APs inside a rectangle (topology density query)."""
        return sum(1 for ap in self.all_aps() if box.contains(ap))

    def density_per_km2(self, box: BoundingBox) -> float:
        """AP density over a rectangle, in APs per square kilometer."""
        if box.area <= 0:
            raise ValueError("box has zero area")
        return self.count_in(box) / (box.area / 1e6)
