"""The application-facing lookup service interface (Fig. 1).

Applications (WiFi handoff, topology analysis, location-based services)
consume AP information through this facade rather than touching the
database directly, mirroring the middleware's service interface.
"""

from __future__ import annotations

from typing import List

from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.middleware.database import ApDatabase

__all__ = ["LookupService"]


class LookupService:
    """Read-only query API over the crowd-server's fused AP database."""

    def __init__(self, database: ApDatabase) -> None:
        self._database = database

    def all_aps(self) -> List[Point]:
        """Every fused AP location the server currently knows."""
        return self._database.all_fused_locations()

    def aps_near(self, position: Point, radius_m: float) -> List[Point]:
        """APs within ``radius_m`` of a position, nearest first."""
        if radius_m <= 0:
            raise ValueError(f"radius_m must be > 0, got {radius_m}")
        hits = [
            (ap, position.distance_to(ap))
            for ap in self.all_aps()
            if position.distance_to(ap) <= radius_m
        ]
        hits.sort(key=lambda pair: pair[1])
        return [ap for ap, _ in hits]

    def aps_along(
        self,
        route: Trajectory,
        radius_m: float,
        *,
        sample_every_m: float = 25.0,
    ) -> List[Point]:
        """APs reachable from any point of a route (deduplicated, in
        first-encountered order) — the user-vehicle's pre-drive download.
        """
        if radius_m <= 0:
            raise ValueError(f"radius_m must be > 0, got {radius_m}")
        if sample_every_m <= 0:
            raise ValueError(
                f"sample_every_m must be > 0, got {sample_every_m}"
            )
        n_samples = max(2, int(route.length / sample_every_m))
        seen: List[Point] = []
        for waypoint in route.sample_uniform(n_samples):
            for ap in self.aps_near(waypoint, radius_m):
                if ap not in seen:
                    seen.append(ap)
        return seen

    def count_in(self, box: BoundingBox) -> int:
        """Number of known APs inside a rectangle (topology density query)."""
        return sum(1 for ap in self.all_aps() if box.contains(ap))

    def density_per_km2(self, box: BoundingBox) -> float:
        """AP density over a rectangle, in APs per square kilometer."""
        if box.area <= 0:
            raise ValueError("box has zero area")
        return self.count_in(box) / (box.area / 1e6)
