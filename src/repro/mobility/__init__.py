"""Vehicular mobility substrate.

Provides speed-unit conversions, path-following motion along
:class:`repro.geo.Trajectory` polylines, and drive schedules that convert a
sampling period into the sequence of (time, position) fixes a vehicle's
RSS collector uses as reference points.
"""

from repro.mobility.units import mph_to_mps, mps_to_mph
from repro.mobility.models import DriveSample, PathFollower, drive_schedule
from repro.mobility.streets import StreetGrid

__all__ = [
    "mph_to_mps",
    "mps_to_mph",
    "PathFollower",
    "DriveSample",
    "drive_schedule",
    "StreetGrid",
]
