"""Path-following motion models.

A :class:`PathFollower` moves at constant speed along a trajectory;
:func:`drive_schedule` expands a drive into discrete (time, position,
heading) fixes at a given sampling period — these become the reference
points of RSS measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.geo.points import Point
from repro.geo.trajectory import Trajectory

__all__ = ["DriveSample", "PathFollower", "drive_schedule"]


@dataclass(frozen=True)
class DriveSample:
    """One GPS-style fix along a drive."""

    time: float
    position: Point
    heading: float
    distance: float


class PathFollower:
    """Constant-speed motion along a trajectory.

    Parameters
    ----------
    trajectory:
        The path to follow (open or closed).
    speed_mps:
        Constant speed in meters/second.
    start_offset_m:
        Arc-length offset of the starting position, useful for staggering
        multiple crowd-vehicles on the same loop.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        speed_mps: float,
        *,
        start_offset_m: float = 0.0,
    ) -> None:
        if speed_mps <= 0:
            raise ValueError(f"speed_mps must be > 0, got {speed_mps}")
        if start_offset_m < 0:
            raise ValueError(f"start_offset_m must be >= 0, got {start_offset_m}")
        self.trajectory = trajectory
        self.speed_mps = float(speed_mps)
        self.start_offset_m = float(start_offset_m)

    def distance_at(self, time: float) -> float:
        """Arc length travelled by wall-clock ``time`` (seconds)."""
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        return self.start_offset_m + self.speed_mps * time

    def position_at(self, time: float) -> Point:
        """Vehicle position at wall-clock ``time``."""
        return self.trajectory.position_at(self.distance_at(time))

    def sample(self, time: float) -> DriveSample:
        """Full fix (time, position, heading, odometer) at ``time``."""
        distance = self.distance_at(time)
        return DriveSample(
            time=float(time),
            position=self.trajectory.position_at(distance),
            heading=self.trajectory.heading_at(distance),
            distance=distance,
        )

    def time_to_complete(self, laps: float = 1.0) -> float:
        """Seconds to cover ``laps`` trajectory lengths at this speed."""
        if laps <= 0:
            raise ValueError(f"laps must be > 0, got {laps}")
        return laps * self.trajectory.length / self.speed_mps


def drive_schedule(
    follower: PathFollower,
    duration_s: float,
    sample_period_s: float,
    *,
    start_time_s: float = 0.0,
) -> List[DriveSample]:
    """Discretise a drive into fixes every ``sample_period_s`` seconds.

    The schedule includes the fix at ``start_time_s`` and every period
    thereafter up to (and including, when it lands exactly) ``start_time_s +
    duration_s``.
    """
    if duration_s < 0:
        raise ValueError(f"duration_s must be >= 0, got {duration_s}")
    if sample_period_s <= 0:
        raise ValueError(f"sample_period_s must be > 0, got {sample_period_s}")
    samples: List[DriveSample] = []
    n_steps = int(round(duration_s / sample_period_s))
    for step in range(n_steps + 1):
        t = start_time_s + step * sample_period_s
        if t > start_time_s + duration_s + 1e-9:
            break
        samples.append(follower.sample(t))
    return samples
