"""Street-network mobility: routes on a Manhattan-style road graph.

The evaluation's rectangular loops are hand-drawn; this module provides
the more realistic substrate the paper's deployment discussion implies —
crowd-vehicles (buses, patrol cars) following routes through a street
network.  A :class:`StreetGrid` is a networkx graph of intersections;
routes are shortest paths or random walks over it, converted into
:class:`repro.geo.Trajectory` polylines that the mobility and collection
layers consume unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.util.rng import RngLike, ensure_rng

__all__ = ["StreetGrid"]


class StreetGrid:
    """A rectangular grid of streets over a bounding box.

    Nodes are intersections ``(row, col)`` with coordinates attached;
    edges are street segments weighted by their length.  Block sizes may
    be irregular (e.g. a downtown with short blocks near the center).
    """

    def __init__(
        self,
        box: BoundingBox,
        *,
        n_rows: int = 5,
        n_cols: int = 5,
    ) -> None:
        if n_rows < 2 or n_cols < 2:
            raise ValueError(
                f"need at least a 2x2 grid, got {n_rows}x{n_cols}"
            )
        self.box = box
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.graph = nx.Graph()
        for row in range(n_rows):
            for col in range(n_cols):
                x = box.min_x + box.width * col / (n_cols - 1)
                y = box.min_y + box.height * row / (n_rows - 1)
                self.graph.add_node((row, col), point=Point(x, y))
        for row in range(n_rows):
            for col in range(n_cols):
                if col + 1 < n_cols:
                    self._add_street((row, col), (row, col + 1))
                if row + 1 < n_rows:
                    self._add_street((row, col), (row + 1, col))

    def _add_street(self, a: Tuple[int, int], b: Tuple[int, int]) -> None:
        pa: Point = self.graph.nodes[a]["point"]
        pb: Point = self.graph.nodes[b]["point"]
        self.graph.add_edge(a, b, length=pa.distance_to(pb))

    @property
    def n_intersections(self) -> int:
        return self.graph.number_of_nodes()

    def intersection(self, row: int, col: int) -> Point:
        """Coordinates of one intersection."""
        if (row, col) not in self.graph:
            raise KeyError(f"no intersection ({row}, {col})")
        return self.graph.nodes[(row, col)]["point"]

    def nearest_intersection(self, point: Point) -> Tuple[int, int]:
        """The intersection closest to an arbitrary point."""
        return min(
            self.graph.nodes,
            key=lambda node: self.graph.nodes[node]["point"].distance_to(point),
        )

    def remove_street(self, a: Tuple[int, int], b: Tuple[int, int]) -> None:
        """Close a street segment (e.g. construction); routes avoid it."""
        if not self.graph.has_edge(a, b):
            raise KeyError(f"no street between {a} and {b}")
        self.graph.remove_edge(a, b)
        if not nx.is_connected(self.graph):
            # Reopen rather than strand part of the map.
            self._add_street(a, b)
            raise ValueError(
                f"closing {a}-{b} would disconnect the street network"
            )

    def shortest_route(
        self, start: Tuple[int, int], goal: Tuple[int, int]
    ) -> Trajectory:
        """Shortest-path route between two intersections."""
        nodes = nx.shortest_path(
            self.graph, start, goal, weight="length"
        )
        return self._to_trajectory(nodes, closed=False)

    def random_patrol(
        self,
        n_legs: int,
        *,
        start: Optional[Tuple[int, int]] = None,
        rng: RngLike = None,
    ) -> Trajectory:
        """A non-backtracking random walk of ``n_legs`` street segments.

        Models a patrol car or bus wandering the network; the walk avoids
        immediately reversing onto the street it just used when any other
        choice exists.
        """
        if n_legs < 1:
            raise ValueError(f"n_legs must be >= 1, got {n_legs}")
        generator = ensure_rng(rng)
        nodes = list(self.graph.nodes)
        current = start if start is not None else nodes[
            int(generator.integers(len(nodes)))
        ]
        if current not in self.graph:
            raise KeyError(f"unknown start intersection {current}")
        walk = [current]
        previous = None
        for _ in range(n_legs):
            neighbors = list(self.graph.neighbors(current))
            choices = [n for n in neighbors if n != previous] or neighbors
            nxt = choices[int(generator.integers(len(choices)))]
            walk.append(nxt)
            previous, current = current, nxt
        return self._to_trajectory(walk, closed=False)

    def loop_route(self, corners: List[Tuple[int, int]]) -> Trajectory:
        """A closed route visiting the given intersections in order,
        following shortest paths between consecutive corners."""
        if len(corners) < 2:
            raise ValueError("a loop needs at least two corners")
        nodes: List[Tuple[int, int]] = []
        extended = list(corners) + [corners[0]]
        for a, b in zip(extended, extended[1:]):
            leg = nx.shortest_path(self.graph, a, b, weight="length")
            if nodes:
                leg = leg[1:]  # avoid duplicating the junction node
            nodes.extend(leg)
        return self._to_trajectory(nodes, closed=True)

    def _to_trajectory(self, nodes, *, closed: bool) -> Trajectory:
        points = [self.graph.nodes[n]["point"] for n in nodes]
        if closed and points[0] == points[-1]:
            points = points[:-1]
        deduped: List[Point] = []
        for p in points:
            if not deduped or deduped[-1].distance_to(p) > 1e-9:
                deduped.append(p)
        return Trajectory(deduped, closed=closed)
