"""Speed-unit conversions (the paper quotes vehicle speeds in mph)."""

from __future__ import annotations

__all__ = ["MPH_PER_MPS", "mph_to_mps", "mps_to_mph"]

MPH_PER_MPS = 2.2369362920544025  # 1 m/s in miles/hour


def mph_to_mps(mph: float) -> float:
    """Convert miles/hour to meters/second."""
    return float(mph) / MPH_PER_MPS


def mps_to_mph(mps: float) -> float:
    """Convert meters/second to miles/hour."""
    return float(mps) * MPH_PER_MPS
