"""Zero-overhead telemetry for both halves of the CrowdWiFi reproduction.

See ``docs/OBSERVABILITY.md``.  The package is import-light: ``recorder`` is
stdlib-only so every layer of the library can depend on it without cycles;
``manifest`` and ``report`` sit above it.
"""

from repro.obs.manifest import RunManifest, build_manifest, git_revision
from repro.obs.recorder import (
    NULL_RECORDER,
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    Recorder,
    TelemetrySnapshot,
    ensure_recorder,
    load_jsonl,
    replay_events,
)
from repro.obs.report import render_report

__all__ = [
    "InMemoryRecorder",
    "JsonlRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "RunManifest",
    "TelemetrySnapshot",
    "build_manifest",
    "ensure_recorder",
    "git_revision",
    "load_jsonl",
    "render_report",
    "replay_events",
]
