"""Machine-readable run manifests.

A manifest pins down everything needed to reproduce (or audit) one run:
the seed, the harness configuration, the exact git revision, the
interpreter/numpy versions, the wall time, and — when the run carried a
recorder — the span timings it observed.  Experiment harnesses write one
manifest per run next to their outputs (``crowdwifi-repro … --csv-dir``),
and CI uploads them as workflow artifacts.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.obs.recorder import InMemoryRecorder

__all__ = ["MANIFEST_SCHEMA_VERSION", "RunManifest", "build_manifest", "git_revision"]

MANIFEST_SCHEMA_VERSION = 1


def git_revision(cwd: Optional[str] = None) -> str:
    """Return the current ``git rev-parse HEAD``, or ``"unknown"``.

    Never raises: manifests must be writable from source tarballs, wheels,
    and containers without a git checkout.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass(frozen=True)
class RunManifest:
    """One run's provenance record; serialise with :meth:`to_json`."""

    name: str
    seed: Optional[int]
    config: Dict[str, Any]
    git_rev: str
    wall_s: float
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    python: str = ""
    numpy: str = ""
    machine: str = ""
    created_unix: float = 0.0
    schema: int = MANIFEST_SCHEMA_VERSION

    def to_json(self) -> str:
        """Render the manifest as stable, sorted, indented JSON."""
        return json.dumps(asdict(self), indent=2, sort_keys=True, default=str)

    def write(self, path: str) -> None:
        """Write the manifest to ``path`` (UTF-8, trailing newline)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


def build_manifest(
    name: str,
    *,
    seed: Optional[int],
    config: Optional[Dict[str, Any]] = None,
    wall_s: float = 0.0,
    recorder: Optional[InMemoryRecorder] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for one named run.

    ``config`` is any JSON-serialisable mapping describing the harness
    parameters; ``recorder`` (optional) contributes its span timings.
    """
    try:
        import numpy

        numpy_version = str(numpy.__version__)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    return RunManifest(
        name=name,
        seed=seed,
        config=dict(config or {}),
        git_rev=git_revision(),
        wall_s=wall_s,
        spans=recorder.spans if recorder is not None else {},
        python=platform.python_version(),
        numpy=numpy_version,
        machine=platform.machine(),
        created_unix=time.time(),
    )


def _main() -> int:  # pragma: no cover - tiny debug helper
    print(build_manifest("manual", seed=None).to_json())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main())
