"""Recorder protocol and implementations for the telemetry layer.

The instrumented pipelines (the online engine of :mod:`repro.core` and the
crowd-server of :mod:`repro.middleware`) accept a *recorder* and report four
kinds of signals through it:

``count(name, value)``
    Monotonic counters — blocks deduped, hypotheses scored, labels ingested.
``gauge(name, value)``
    Point-in-time levels — open task pools, live credit-table size.
``observe(name, value)``
    Histogram samples — solver iterations, residual norms, KOS sweeps.
``span(name)``
    Nested timed sections — a context manager; nesting is encoded in the
    recorded name as a ``/``-joined path (``fleet.run/server.open_rounds``).
``event(name, **fields)``
    Structured one-off records — per-vehicle reliability trajectories.

Three implementations are provided.  :class:`NullRecorder` (the default
everywhere, via the module-level :data:`NULL_RECORDER` singleton) turns every
hook into a no-op so instrumented hot paths stay within timing noise of the
un-instrumented code — enforced by ``benchmarks/bench_hotpath.py``.
:class:`InMemoryRecorder` aggregates into plain dictionaries and can snapshot
itself into a picklable :class:`TelemetrySnapshot` for deterministic
cross-process merging (see :func:`repro.util.parallel.run_recorded_tasks`).
:class:`JsonlRecorder` extends the in-memory recorder with an append-only
JSON-lines event stream for offline analysis (``crowdwifi-repro report``).

This module is deliberately dependency-free (stdlib only) so any layer of the
library can import it without cycles.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "JSONL_SCHEMA_VERSION",
    "InMemoryRecorder",
    "JsonlRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Recorder",
    "TelemetrySnapshot",
    "ensure_recorder",
    "load_jsonl",
    "replay_events",
]

JSONL_SCHEMA_VERSION = 1

Number = Union[int, float]


class Recorder(Protocol):
    """Structural protocol every recorder implements.

    Library code takes ``recorder: Recorder = NULL_RECORDER`` and calls the
    hooks unconditionally; only metric *computations* that are themselves
    expensive (residual norms, per-item sums) should be gated behind
    :attr:`enabled`.
    """

    enabled: bool

    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        ...

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        ...

    def observe(self, name: str, value: Number) -> None:
        """Record one sample of ``value`` into the histogram ``name``."""
        ...

    def event(self, name: str, **fields: Any) -> None:
        """Record a structured event with JSON-serialisable ``fields``."""
        ...

    def span(self, name: str) -> "_SpanLike":
        """Return a context manager timing the enclosed section."""
        ...

    def absorb(self, snapshot: "TelemetrySnapshot") -> None:
        """Merge a child-process snapshot into this recorder."""
        ...


class _SpanLike(Protocol):
    """Context-manager shape returned by :meth:`Recorder.span`."""

    def __enter__(self) -> None: ...

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> Optional[bool]: ...


class _NullSpan:
    """Reusable no-op span; a single instance serves every call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> Optional[bool]:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: every hook is a no-op.

    Stateless and picklable, so it can ride a job into a worker process.
    Hot paths instrumented against this recorder must stay within 3 % of the
    bare code — asserted by ``test_null_recorder_overhead`` in
    ``benchmarks/bench_hotpath.py``.
    """

    enabled: bool = False

    def count(self, name: str, value: Number = 1) -> None:
        """No-op."""

    def gauge(self, name: str, value: Number) -> None:
        """No-op."""

    def observe(self, name: str, value: Number) -> None:
        """No-op."""

    def event(self, name: str, **fields: Any) -> None:
        """No-op."""

    def span(self, name: str) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def absorb(self, snapshot: "TelemetrySnapshot") -> None:
        """No-op."""


NULL_RECORDER = NullRecorder()
"""Shared default instance; safe to reuse because :class:`NullRecorder` is
stateless."""


def ensure_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Coerce ``None`` to :data:`NULL_RECORDER`; pass recorders through."""
    return NULL_RECORDER if recorder is None else recorder


@dataclass
class _HistStat:
    """Running aggregate of one histogram series."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "_HistStat") -> None:
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class _SpanStat:
    """Running aggregate of one span path (count and wall time)."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "_SpanStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Picklable, at-rest copy of an :class:`InMemoryRecorder`.

    Produced in worker processes by :func:`repro.util.parallel.run_recorded_tasks`
    and absorbed by the parent recorder in task-submission order, which is what
    makes parallel and serial runs report identical aggregates.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    events: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()


class _TimedSpan:
    """Span context manager used by :class:`InMemoryRecorder`."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "InMemoryRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> None:
        self._recorder._push_span(self._name)
        self._start = time.perf_counter()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> Optional[bool]:
        elapsed = time.perf_counter() - self._start
        self._recorder._pop_span(self._name, elapsed)
        return None


class InMemoryRecorder:
    """Aggregating recorder backed by plain dictionaries.

    Spans nest: entering a span while another is open records the inner one
    under the ``/``-joined path of every open span, so the recorded keys form
    a tree (``fleet.run``, ``fleet.run/fleet.phase2.rounds``, …).

    :meth:`aggregates` exposes the *deterministic* view — counters, gauges,
    histogram statistics, span and event counts, but **no wall-clock
    durations** — which is the quantity required to be identical between
    serial and parallel runs of the same seed.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _HistStat] = {}
        self._spans: Dict[str, _SpanStat] = {}
        self._events: List[Tuple[str, Tuple[Tuple[str, Any], ...]]] = []
        self._span_stack: List[str] = []

    # -- Recorder hooks ----------------------------------------------------
    def count(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name``; the latest write wins across merges."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: Number) -> None:
        """Add one sample to the histogram ``name``."""
        stat = self._histograms.get(name)
        if stat is None:
            stat = self._histograms[name] = _HistStat()
        stat.add(float(value))

    def event(self, name: str, **fields: Any) -> None:
        """Append a structured event (fields kept in keyword order)."""
        self._events.append((name, tuple(fields.items())))

    def span(self, name: str) -> _TimedSpan:
        """Open a timed span; use as a context manager."""
        return _TimedSpan(self, name)

    # -- span bookkeeping --------------------------------------------------
    def _push_span(self, name: str) -> None:
        self._span_stack.append(name)

    def _pop_span(self, name: str, seconds: float) -> None:
        path = "/".join(self._span_stack)
        if self._span_stack and self._span_stack[-1] == name:
            self._span_stack.pop()
        stat = self._spans.get(path)
        if stat is None:
            stat = self._spans[path] = _SpanStat()
        stat.add(seconds)

    # -- structured views --------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        """Copy of the counter table."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        """Copy of the gauge table."""
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, Dict[str, float]]:
        """Copy of the histogram statistics (count/total/min/max per name)."""
        return {name: stat.as_dict() for name, stat in self._histograms.items()}

    @property
    def spans(self) -> Dict[str, Dict[str, float]]:
        """Copy of the span statistics (count/total_s/max_s per path)."""
        return {
            path: {
                "count": float(stat.count),
                "total_s": stat.total_s,
                "max_s": stat.max_s,
            }
            for path, stat in self._spans.items()
        }

    @property
    def events(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Copy of the event log, in record order."""
        return [(name, dict(fields)) for name, fields in self._events]

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the current state into a picklable snapshot."""
        return TelemetrySnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms=self.histograms,
            spans=self.spans,
            events=tuple(self._events),
        )

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Merge a child snapshot into this recorder.

        Counters and histogram/span statistics add; gauges take the child's
        value (last write wins); events append in order.  Absorbing children
        in task-submission order therefore reproduces the serial recording
        exactly, up to wall-clock durations.
        """
        for name, value in snapshot.counters.items():
            self._counters[name] = self._counters.get(name, 0.0) + value
        self._gauges.update(snapshot.gauges)
        for name, payload in snapshot.histograms.items():
            stat = self._histograms.get(name)
            if stat is None:
                stat = self._histograms[name] = _HistStat()
            stat.merge(
                _HistStat(
                    count=int(payload["count"]),
                    total=payload["total"],
                    min=payload["min"],
                    max=payload["max"],
                )
            )
        for path, payload in snapshot.spans.items():
            span_stat = self._spans.get(path)
            if span_stat is None:
                span_stat = self._spans[path] = _SpanStat()
            span_stat.merge(
                _SpanStat(
                    count=int(payload["count"]),
                    total_s=payload["total_s"],
                    max_s=payload["max_s"],
                )
            )
        self._events.extend(snapshot.events)

    def aggregates(self) -> Dict[str, float]:
        """Deterministic flat view used by the parallel==serial tests.

        Keys are ``kind:name[:stat]``.  Wall-clock span durations are
        deliberately excluded — only span *counts* appear — because timings
        legitimately differ between runs; everything else is a deterministic
        function of the seed.
        """
        flat: Dict[str, float] = {}
        for name, value in sorted(self._counters.items()):
            flat[f"counter:{name}"] = value
        for name, value in sorted(self._gauges.items()):
            flat[f"gauge:{name}"] = value
        for name, stat in sorted(self._histograms.items()):
            flat[f"hist:{name}:count"] = float(stat.count)
            flat[f"hist:{name}:total"] = stat.total
            flat[f"hist:{name}:min"] = stat.min
            flat[f"hist:{name}:max"] = stat.max
        for path, span_stat in sorted(self._spans.items()):
            flat[f"span:{path}:count"] = float(span_stat.count)
        event_counts: Dict[str, int] = {}
        for name, _fields in self._events:
            event_counts[name] = event_counts.get(name, 0) + 1
        for name, n in sorted(event_counts.items()):
            flat[f"event:{name}:count"] = float(n)
        return flat


class JsonlRecorder(InMemoryRecorder):
    """In-memory recorder that also appends every signal to a JSONL stream.

    One JSON object per line; see ``docs/OBSERVABILITY.md`` for the schema.
    The first line is a ``meta`` record carrying the schema version.  Close
    (or use as a context manager) to flush; the in-memory aggregates remain
    queryable after closing.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "a", encoding="utf-8")
        self._emit({"type": "meta", "schema": JSONL_SCHEMA_VERSION})

    def _emit(self, record: Dict[str, Any]) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")

    # -- Recorder hooks (mirror to the stream) -----------------------------
    def count(self, name: str, value: Number = 1) -> None:
        """Add to the counter and append a ``count`` line."""
        super().count(name, value)
        self._emit({"type": "count", "name": name, "value": float(value)})

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge and append a ``gauge`` line."""
        super().gauge(name, value)
        self._emit({"type": "gauge", "name": name, "value": float(value)})

    def observe(self, name: str, value: Number) -> None:
        """Record the sample and append an ``observe`` line."""
        super().observe(name, value)
        self._emit({"type": "observe", "name": name, "value": float(value)})

    def event(self, name: str, **fields: Any) -> None:
        """Record the event and append an ``event`` line."""
        super().event(name, **fields)
        self._emit({"type": "event", "name": name, "fields": dict(fields)})

    def _pop_span(self, name: str, seconds: float) -> None:
        path = "/".join(self._span_stack)
        super()._pop_span(name, seconds)
        self._emit({"type": "span", "name": path, "seconds": seconds})

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Merge the snapshot and append it as a single ``snapshot`` line."""
        super().absorb(snapshot)
        self._emit(
            {
                "type": "snapshot",
                "counters": snapshot.counters,
                "gauges": snapshot.gauges,
                "histograms": snapshot.histograms,
                "spans": snapshot.spans,
                "events": [
                    {"name": name, "fields": dict(fields)}
                    for name, fields in snapshot.events
                ],
            }
        )

    def close(self) -> None:
        """Flush and close the stream (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def replay_events(records: Iterable[Dict[str, Any]]) -> InMemoryRecorder:
    """Rebuild an :class:`InMemoryRecorder` from parsed JSONL records.

    The JSONL stream round-trips: aggregates of the replayed recorder equal
    the aggregates of the recorder that wrote the stream.
    """
    recorder = InMemoryRecorder()
    for record in records:
        kind = record.get("type")
        if kind == "count":
            recorder.count(record["name"], record["value"])
        elif kind == "gauge":
            recorder.gauge(record["name"], record["value"])
        elif kind == "observe":
            recorder.observe(record["name"], record["value"])
        elif kind == "event":
            recorder.event(record["name"], **record.get("fields", {}))
        elif kind == "span":
            recorder._push_span(record["name"])
            # The writer already joined the open-span path into ``name``;
            # replay it as a single flat segment.
            recorder._pop_span(record["name"], record["seconds"])
        elif kind == "snapshot":
            recorder.absorb(
                TelemetrySnapshot(
                    counters=dict(record.get("counters", {})),
                    gauges=dict(record.get("gauges", {})),
                    histograms=dict(record.get("histograms", {})),
                    spans=dict(record.get("spans", {})),
                    events=tuple(
                        (item["name"], tuple(item.get("fields", {}).items()))
                        for item in record.get("events", [])
                    ),
                )
            )
        # ``meta`` and unknown kinds are skipped so the format can grow.
    return recorder


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL telemetry stream into a list of records."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
