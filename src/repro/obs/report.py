"""Render a human-readable run report from a captured telemetry stream.

``crowdwifi-repro report run.jsonl`` replays the JSON-lines stream written
by :class:`repro.obs.recorder.JsonlRecorder` into an in-memory recorder and
prints four tables: counters (with per-engine-round rates where they apply),
histograms (solver/KOS iteration statistics), span timings, and event
counts.  The same renderer works on a live :class:`InMemoryRecorder`, which
is how the tests pin the report's content.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.obs.recorder import InMemoryRecorder, load_jsonl, replay_events
from repro.util.tables import ResultTable

__all__ = ["main", "render_report"]

_ROUNDS_COUNTER = "engine.rounds"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    return f"{seconds * 1e3:.2f} ms"


def render_report(recorder: InMemoryRecorder, *, title: str = "") -> str:
    """Render counters, histograms, spans and events as aligned text tables.

    When the ``engine.rounds`` counter is present, counters also show a
    per-round column (blocks solved per round, hypotheses per round, …) —
    the figures §4.3.3's complexity discussion argues about.
    """
    sections: List[str] = []
    if title:
        sections.append(title)

    counters = recorder.counters
    rounds = counters.get(_ROUNDS_COUNTER, 0.0)
    if counters:
        table = ResultTable(["counter", "total", "per round"], title="counters")
        for name in sorted(counters):
            value = counters[name]
            per_round = f"{value / rounds:.2f}" if rounds > 0 else "-"
            table.add_row(
                counter=name,
                total=f"{value:g}",
                **{"per round": per_round},
            )
        sections.append(table.render())

    histograms = recorder.histograms
    if histograms:
        table = ResultTable(
            ["histogram", "samples", "mean", "min", "max"], title="histograms"
        )
        for name in sorted(histograms):
            stat = histograms[name]
            count = stat["count"]
            mean = stat["total"] / count if count else 0.0
            table.add_row(
                histogram=name,
                samples=f"{count:g}",
                mean=f"{mean:.3f}",
                min=f"{stat['min']:.3f}",
                max=f"{stat['max']:.3f}",
            )
        sections.append(table.render())

    spans = recorder.spans
    if spans:
        table = ResultTable(["span", "count", "total", "mean"], title="spans")
        for path in sorted(spans):
            stat = spans[path]
            count = stat["count"]
            mean_s = stat["total_s"] / count if count else 0.0
            table.add_row(
                span=path,
                count=f"{count:g}",
                total=_fmt_seconds(stat["total_s"]),
                mean=_fmt_seconds(mean_s),
            )
        sections.append(table.render())

    gauges = recorder.gauges
    if gauges:
        table = ResultTable(["gauge", "value"], title="gauges")
        for name in sorted(gauges):
            table.add_row(gauge=name, value=f"{gauges[name]:g}")
        sections.append(table.render())

    events = recorder.events
    if events:
        by_name: Dict[str, int] = {}
        for name, _fields in events:
            by_name[name] = by_name.get(name, 0) + 1
        table = ResultTable(["event", "count"], title="events")
        for name in sorted(by_name):
            table.add_row(event=name, count=str(by_name[name]))
        sections.append(table.render())

    if len(sections) == (1 if title else 0):
        sections.append("(empty telemetry stream)")
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``crowdwifi-repro report <run.jsonl> …``."""
    parser = argparse.ArgumentParser(
        prog="crowdwifi-repro report",
        description="Render a summary table from a JSONL telemetry stream.",
    )
    parser.add_argument("paths", nargs="+", help="JSONL file(s) written by JsonlRecorder")
    args = parser.parse_args(list(argv) if argv is not None else None)
    for path in args.paths:
        try:
            records = load_jsonl(path)
        except (OSError, ValueError) as exc:
            print(f"report: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        recorder = replay_events(records)
        try:
            print(render_report(recorder, title=f"run report — {path}"))
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; not an error.
            return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
