"""Radio propagation substrate.

Implements the channel model of §4.2.1: log-distance path loss with
log-normal shadow fading, plus RSS measurement records, additive
measurement noise at a target SNR, and the Gaussian-mixture RSS likelihood
(with the paper's myopic distance weights) used by BIC model selection.
"""

from repro.radio.pathloss import PathLossModel, snr_noise_sigma
from repro.radio.rss import RssMeasurement, RssTrace
from repro.radio.gmm import gmm_log_likelihood, myopic_weights
from repro.radio.shadowing import CorrelatedShadowingField

__all__ = [
    "PathLossModel",
    "snr_noise_sigma",
    "RssMeasurement",
    "RssTrace",
    "gmm_log_likelihood",
    "myopic_weights",
    "CorrelatedShadowingField",
]
