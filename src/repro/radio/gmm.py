"""Gaussian-mixture RSS likelihood with myopic distance weights (§4.2.1).

Each RSS measurement could have come from any of the K hypothesised APs,
so the probability of a measurement series R given AP locations is a
product of per-measurement mixtures:

    p(R) = Π_i Σ_j  w_ij / (σ_ij √(2π)) · exp(−(r_i − μ_ij)² / (2 σ_ij²))

where μ_ij is the path-loss-model RSS expected at measurement point i from
AP j, σ_ij = b·|μ_ij| scales with the expected value, and the myopic
weights  w_ij = e^{−d_ij} / Σ_j' e^{−d_ij'}  favour nearby APs.

This likelihood is what BIC model selection (§4.3.5) maximises over
candidate (AP count, AP locations) hypotheses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.geo.points import Point, points_as_array
from repro.radio.pathloss import PathLossModel

__all__ = [
    "DEFAULT_SIGMA_FACTOR",
    "DEFAULT_MYOPIC_SCALE_M",
    "myopic_weights",
    "gmm_log_likelihood",
]

#: Default proportionality constant b in σ_ij = b·|μ_ij|.
DEFAULT_SIGMA_FACTOR = 0.05

#: Length scale (meters) for the myopic exponential weights.  The paper
#: writes w_ij = e^{−d_ij}, which in raw meters underflows for any realistic
#: distance; we use e^{−d_ij / scale} with a configurable scale, which
#: preserves the intended "closer AP gets more weight" ordering exactly.
DEFAULT_MYOPIC_SCALE_M = 50.0


def myopic_weights(
    distances_m: ArrayLike, *, scale_m: float = DEFAULT_MYOPIC_SCALE_M
) -> NDArray[np.float64]:
    """Row-normalised exponential proximity weights.

    Parameters
    ----------
    distances_m:
        ``(n_measurements, n_aps)`` matrix of Cartesian distances d_ij.
    scale_m:
        Exponential length scale; smaller is more myopic.
    """
    d = np.asarray(distances_m, dtype=float)
    if d.ndim != 2:
        raise ValueError(f"distances must be 2-D, got shape {d.shape}")
    if scale_m <= 0:
        raise ValueError(f"scale_m must be > 0, got {scale_m}")
    # Subtract the row minimum before exponentiating for numerical stability;
    # the normalisation cancels the shift.
    shifted = -(d - d.min(axis=1, keepdims=True)) / scale_m
    w = np.exp(shifted)
    return np.asarray(w / w.sum(axis=1, keepdims=True), dtype=np.float64)


def gmm_log_likelihood(
    rss_dbm: Sequence[float],
    measurement_points: Sequence[Point],
    ap_locations: Sequence[Point],
    channel: PathLossModel,
    *,
    sigma_factor: float = DEFAULT_SIGMA_FACTOR,
    myopic_scale_m: float = DEFAULT_MYOPIC_SCALE_M,
) -> float:
    """Log p(R | AP locations) under the myopic Gaussian mixture.

    Parameters
    ----------
    rss_dbm:
        Observed RSS series ``R = {r_1 … r_n}`` in dBm.
    measurement_points:
        The reference point of each measurement (same length as ``rss_dbm``).
    ap_locations:
        Hypothesised AP positions (the K mixture components).
    channel:
        Path-loss model used to compute the expected values μ_ij.
    sigma_factor:
        Constant ``b`` with σ_ij = b·|μ_ij|.

    Returns
    -------
    float
        The log likelihood; ``-inf`` if the hypothesis is empty.
    """
    r = np.asarray(rss_dbm, dtype=float)
    if len(measurement_points) != r.size:
        raise ValueError(
            f"{r.size} RSS values but {len(measurement_points)} measurement points"
        )
    if sigma_factor <= 0:
        raise ValueError(f"sigma_factor must be > 0, got {sigma_factor}")
    if len(ap_locations) == 0:
        return float("-inf")
    if r.size == 0:
        return 0.0

    mp = points_as_array(measurement_points)  # (n, 2)
    ap = points_as_array(ap_locations)  # (k, 2)
    deltas = mp[:, None, :] - ap[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=-1))  # (n, k)

    mu = channel.mean_rss_dbm(distances)  # (n, k)
    sigma = np.maximum(sigma_factor * np.abs(mu), 1e-6)
    weights = myopic_weights(distances, scale_m=myopic_scale_m)

    # log of Σ_j w_ij N(r_i; μ_ij, σ_ij²), computed via logsumexp per row.
    log_components = (
        np.log(weights)
        - np.log(sigma)
        - 0.5 * np.log(2.0 * np.pi)
        - 0.5 * ((r[:, None] - mu) / sigma) ** 2
    )
    row_max = log_components.max(axis=1, keepdims=True)
    log_mixture = row_max.squeeze(axis=1) + np.log(
        np.exp(log_components - row_max).sum(axis=1)
    )
    return float(log_mixture.sum())
