"""Log-distance path-loss channel model (§4.2.1).

The paper's channel:  ``r = t - l0 - 10 γ log10(d / d0) - S``  for
``d > d0``, where ``t`` is the transmit power (dBm), ``l0`` the path loss at
the reference distance ``d0``, ``γ`` the path-loss exponent, and ``S``
log-normal shadow fading in dB.

Simulation parameters from §6.1: ``l0 = 45.6`` dBm at ``d0 = 1`` m,
``γ = 1.76``, shadowing σ = 0.5 dB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.util.rng import RngLike, ensure_rng

__all__ = ["PathLossModel", "snr_noise_sigma"]


@dataclass(frozen=True)
class PathLossModel:
    """Deterministic mean path loss plus optional log-normal shadowing.

    Parameters
    ----------
    tx_power_dbm:
        Transmit power ``t`` of the AP in dBm.
    reference_loss_db:
        Path loss ``l0`` at the reference distance, in dB.
    path_loss_exponent:
        ``γ`` — 2.0 in free space, 1.76 in the paper's UCI scenario.
    shadowing_sigma_db:
        Standard deviation of the log-normal shadow fading ``S`` in dB.
    reference_distance_m:
        ``d0`` — distances below this are clamped to it, following the
        model's ``d > d0`` validity condition.
    """

    tx_power_dbm: float = 20.0
    reference_loss_db: float = 45.6
    path_loss_exponent: float = 1.76
    shadowing_sigma_db: float = 0.5
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise ValueError(
                f"path_loss_exponent must be > 0, got {self.path_loss_exponent}"
            )
        if self.shadowing_sigma_db < 0:
            raise ValueError(
                f"shadowing_sigma_db must be >= 0, got {self.shadowing_sigma_db}"
            )
        if self.reference_distance_m <= 0:
            raise ValueError(
                f"reference_distance_m must be > 0, got {self.reference_distance_m}"
            )

    def mean_rss_dbm(self, distance_m: ArrayLike) -> NDArray[np.float64]:
        """Expected RSS μ = t − l0 − 10 γ log10(d/d0) at distance(s) ``d``.

        Accepts scalars or arrays; distances are clamped to ``d0`` from
        below so the model never extrapolates inside the reference sphere.
        """
        d = np.maximum(np.asarray(distance_m, dtype=float), self.reference_distance_m)
        return np.asarray(
            self.tx_power_dbm
            - self.reference_loss_db
            - 10.0 * self.path_loss_exponent * np.log10(d / self.reference_distance_m),
            dtype=np.float64,
        )

    def sample_rss_dbm(
        self, distance_m: ArrayLike, rng: RngLike = None
    ) -> NDArray[np.float64]:
        """Draw RSS = mean − S with S ~ N(0, σ²) shadow fading."""
        generator = ensure_rng(rng)
        mean = self.mean_rss_dbm(distance_m)
        if self.shadowing_sigma_db == 0:
            return mean
        return np.asarray(
            mean - generator.normal(0.0, self.shadowing_sigma_db, size=np.shape(mean)),
            dtype=np.float64,
        )

    def distance_for_rss(self, rss_dbm: ArrayLike) -> NDArray[np.float64]:
        """Invert the mean model: distance at which the expected RSS equals ``rss_dbm``.

        Used by fingerprint-style baselines for rough ranging.  Results are
        clamped to ``d0`` from below.
        """
        rss = np.asarray(rss_dbm, dtype=float)
        exponent = (self.tx_power_dbm - self.reference_loss_db - rss) / (
            10.0 * self.path_loss_exponent
        )
        return np.asarray(
            np.maximum(
                self.reference_distance_m * np.power(10.0, exponent),
                self.reference_distance_m,
            ),
            dtype=np.float64,
        )

    def range_for_sensitivity(self, sensitivity_dbm: float) -> float:
        """Radio range: the distance at which mean RSS drops to ``sensitivity_dbm``."""
        return float(self.distance_for_rss(sensitivity_dbm))

    def sensitivity_for_range(self, range_m: float) -> float:
        """Receiver sensitivity that yields a given mean radio range."""
        if range_m <= 0:
            raise ValueError(f"range_m must be > 0, got {range_m}")
        return float(self.mean_rss_dbm(range_m))


def snr_noise_sigma(signal: ArrayLike, snr_db: float) -> float:
    """Noise std-dev σ such that the AWGN added to ``signal`` achieves ``snr_db``.

    The paper adds Gaussian white noise N(0, σ²) to the observation vector y
    and quantifies it by SNR (30 dB in §6.1).  We use the conventional
    power-ratio definition SNR = 10 log10(P_signal / σ²) with
    P_signal = mean(y²).
    """
    arr = np.asarray(signal, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot scale noise to an empty signal")
    power = float(np.mean(arr**2))
    if power == 0.0:
        return 0.0
    return float(np.sqrt(power / (10.0 ** (snr_db / 10.0))))
