"""RSS measurement records and traces.

An :class:`RssMeasurement` is one drive-by reading: the RSS value in dBm,
the reference point (vehicle GPS fix) where it was taken, a timestamp, a
TTL (§4.3.2 — stale readings expire out of the sliding window's data set),
and, when produced by the simulator, the ground-truth source AP id used only
for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Union, overload

from repro.geo.points import Point

__all__ = ["DEFAULT_TTL_S", "RssMeasurement", "RssTrace"]

DEFAULT_TTL_S = 120.0


@dataclass(frozen=True)
class RssMeasurement:
    """A single timestamped RSS reading taken at a known reference point."""

    rss_dbm: float
    position: Point
    timestamp: float
    ttl: float = DEFAULT_TTL_S
    source_ap: Optional[str] = None

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {self.ttl}")

    def expired(self, now: float) -> bool:
        """Whether this reading has outlived its TTL at wall-clock ``now``."""
        return now > self.timestamp + self.ttl


@dataclass
class RssTrace:
    """An append-only, time-ordered sequence of RSS measurements.

    The collector appends as it drives; the online CS engine consumes
    windows of the trace.  Appends must be non-decreasing in time.
    """

    measurements: List[RssMeasurement] = field(default_factory=list)

    def append(self, measurement: RssMeasurement) -> None:
        """Append a measurement; timestamps must be non-decreasing."""
        if self.measurements and measurement.timestamp < self.measurements[-1].timestamp:
            raise ValueError(
                "measurements must be appended in non-decreasing time order: "
                f"{measurement.timestamp} < {self.measurements[-1].timestamp}"
            )
        self.measurements.append(measurement)

    def extend(self, measurements: Iterable[RssMeasurement]) -> None:
        for m in measurements:
            self.append(m)

    def __len__(self) -> int:
        return len(self.measurements)

    def __iter__(self) -> Iterator[RssMeasurement]:
        return iter(self.measurements)

    @overload
    def __getitem__(self, index: int) -> RssMeasurement: ...

    @overload
    def __getitem__(self, index: slice) -> List[RssMeasurement]: ...

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[RssMeasurement, List[RssMeasurement]]:
        return self.measurements[index]

    def alive(self, now: float) -> List[RssMeasurement]:
        """Measurements whose TTL has not expired at time ``now`` (§4.3.2)."""
        return [m for m in self.measurements if not m.expired(now)]

    def window(self, start: int, length: int) -> List[RssMeasurement]:
        """The slice ``[start, start + length)`` of the trace."""
        if start < 0 or length < 0:
            raise ValueError(f"invalid window start={start} length={length}")
        return self.measurements[start : start + length]

    def positions(self) -> List[Point]:
        """Reference points of every measurement, in order."""
        return [m.position for m in self.measurements]

    def values(self) -> List[float]:
        """RSS values (dBm) of every measurement, in order."""
        return [m.rss_dbm for m in self.measurements]

    def source_aps(self) -> List[Optional[str]]:
        """Ground-truth source AP ids (``None`` where unknown)."""
        return [m.source_ap for m in self.measurements]
