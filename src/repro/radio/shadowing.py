"""Spatially correlated shadow fading (Gudmundson model).

The i.i.d. per-sample shadowing of :class:`PathLossModel` is optimistic:
real shadowing comes from terrain and buildings, so nearby positions see
*correlated* fades — which do not average out over a drive-by pass the
way independent noise does.  :class:`CorrelatedShadowingField` implements
the standard Gudmundson exponential-correlation model,

    E[S(p) S(p')] = σ² · exp(−‖p − p'‖ / d_corr),

as a lazily sampled Gaussian field: each queried position is conditioned
on every previously sampled one (sequential Gaussian simulation), so a
trace's fades are mutually consistent without ever building a global
grid.  Used by the robustness extension benchmarks to stress the engine
beyond the paper's i.i.d. noise assumption.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np
from numpy.typing import NDArray

from repro.geo.points import Point
from repro.util.rng import RngLike, ensure_rng

__all__ = ["CorrelatedShadowingField"]


class CorrelatedShadowingField:
    """A sampled-on-demand Gaussian shadowing field.

    Parameters
    ----------
    sigma_db:
        Marginal standard deviation σ of the fade in dB.
    correlation_distance_m:
        Gudmundson decorrelation distance d_corr (typical outdoor values:
        20–100 m).
    max_memory:
        Number of past samples conditioned on.  Conditioning cost is
        cubic in this; beyond it the oldest samples are discarded, which
        only loosens long-range correlation the exponential kernel has
        mostly forgotten anyway.
    """

    def __init__(
        self,
        sigma_db: float,
        correlation_distance_m: float,
        *,
        max_memory: int = 256,
        rng: RngLike = None,
    ) -> None:
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {sigma_db}")
        if correlation_distance_m <= 0:
            raise ValueError(
                f"correlation_distance_m must be > 0, got {correlation_distance_m}"
            )
        if max_memory < 1:
            raise ValueError(f"max_memory must be >= 1, got {max_memory}")
        self.sigma_db = float(sigma_db)
        self.correlation_distance_m = float(correlation_distance_m)
        self.max_memory = int(max_memory)
        self._rng = ensure_rng(rng)
        self._positions: List[NDArray[np.float64]] = []
        self._values: List[float] = []

    def _kernel(self, a: NDArray[np.float64], b: NDArray[np.float64]) -> float:
        distance = float(np.linalg.norm(a - b))
        return self.sigma_db**2 * float(
            np.exp(-distance / self.correlation_distance_m)
        )

    def sample(self, position: Point) -> float:
        """Draw the fade (dB) at ``position``, consistent with history."""
        if self.sigma_db == 0.0:
            return 0.0
        xy = np.array([position.x, position.y], dtype=float)
        if not self._positions:
            value = float(self._rng.normal(0.0, self.sigma_db))
            self._remember(xy, value)
            return value

        history = np.array(self._positions)  # (n, 2)
        values = np.array(self._values)  # (n,)
        n = len(values)
        cross = np.array([self._kernel(xy, h) for h in history])  # (n,)
        gram = np.empty((n, n))
        for i in range(n):
            gram[i, i] = self.sigma_db**2
            for j in range(i + 1, n):
                gram[i, j] = gram[j, i] = self._kernel(history[i], history[j])
        # Tiny jitter keeps the solve stable for coincident positions.
        gram[np.diag_indices(n)] += 1e-9
        weights = np.linalg.solve(gram, cross)
        mean = float(weights @ values)
        variance = self.sigma_db**2 - float(cross @ weights)
        variance = max(variance, 0.0)
        value = float(self._rng.normal(mean, np.sqrt(variance)))
        self._remember(xy, value)
        return value

    def sample_many(self, positions: Iterable[Point]) -> NDArray[np.float64]:
        """Sequentially sample a list of positions."""
        return np.array([self.sample(p) for p in positions], dtype=np.float64)

    def _remember(self, xy: NDArray[np.float64], value: float) -> None:
        self._positions.append(xy)
        self._values.append(value)
        if len(self._positions) > self.max_memory:
            self._positions.pop(0)
            self._values.pop(0)

    def reset(self) -> None:
        """Forget all sampled history (a fresh field realization)."""
        self._positions.clear()
        self._values.clear()
