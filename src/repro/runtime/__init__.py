"""Transport-agnostic campaign runtime (docs/RUNTIME.md).

The seam between the two halves of the paper's Fig. 1/Fig. 2
architecture: every client↔server exchange crosses a
:class:`~repro.runtime.transport.Transport` as encoded protocol frames,
a :class:`~repro.runtime.serving.ServingCluster` runs each segment
shard as its own worker process behind its own TCP listener (the
one-process :class:`~repro.runtime.router.ServerRouter` remains as the
in-process reference deployment), and a
:class:`~repro.runtime.scheduler.CampaignScheduler` drives campaigns
through an explicit, individually-runnable step graph over any of the
three transports.
"""

from repro.runtime.net import (
    RetryPolicy,
    RetryingTransport,
    TcpServer,
    TcpTransport,
    ThreadedWireServer,
)
from repro.runtime.router import ServerRouter, ShardedDatabase, shard_of
from repro.runtime.scheduler import (
    STEP_NAMES,
    CampaignScheduler,
    CampaignState,
)
from repro.runtime.serving import (
    ClusterDatabaseView,
    PlacementRouterTransport,
    ServingCluster,
    ServingError,
)
from repro.runtime.transport import (
    CountingTransport,
    InProcessTransport,
    Transport,
    TransportBusy,
    TransportError,
    TransportTimeout,
    WireEndpoint,
)

__all__ = [
    "Transport",
    "WireEndpoint",
    "InProcessTransport",
    "CountingTransport",
    "TransportError",
    "TransportTimeout",
    "TransportBusy",
    "RetryPolicy",
    "RetryingTransport",
    "TcpTransport",
    "TcpServer",
    "ThreadedWireServer",
    "ServerRouter",
    "ShardedDatabase",
    "shard_of",
    "ServingCluster",
    "ServingError",
    "ClusterDatabaseView",
    "PlacementRouterTransport",
    "CampaignScheduler",
    "CampaignState",
    "STEP_NAMES",
]
