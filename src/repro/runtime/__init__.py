"""Transport-agnostic campaign runtime (docs/RUNTIME.md).

The seam between the two halves of the paper's Fig. 1/Fig. 2
architecture: every client↔server exchange crosses a
:class:`~repro.runtime.transport.Transport` as encoded protocol frames,
a :class:`~repro.runtime.router.ServerRouter` shards segments across
crowd-server instances behind one endpoint, and a
:class:`~repro.runtime.scheduler.CampaignScheduler` drives campaigns
through an explicit, individually-runnable step graph.
"""

from repro.runtime.net import (
    RetryPolicy,
    RetryingTransport,
    TcpServer,
    TcpTransport,
)
from repro.runtime.router import ServerRouter, ShardedDatabase, shard_of
from repro.runtime.scheduler import (
    STEP_NAMES,
    CampaignScheduler,
    CampaignState,
)
from repro.runtime.transport import (
    CountingTransport,
    InProcessTransport,
    Transport,
    TransportError,
    TransportTimeout,
    WireEndpoint,
)

__all__ = [
    "Transport",
    "WireEndpoint",
    "InProcessTransport",
    "CountingTransport",
    "TransportError",
    "TransportTimeout",
    "RetryPolicy",
    "RetryingTransport",
    "TcpTransport",
    "TcpServer",
    "ServerRouter",
    "ShardedDatabase",
    "shard_of",
    "CampaignScheduler",
    "CampaignState",
    "STEP_NAMES",
]
