"""A real socket transport for the runtime seam.

This module turns the transport seam of :mod:`repro.runtime.transport`
into an actual network: :class:`TcpServer` hosts any
:class:`~repro.runtime.transport.WireEndpoint` behind an asyncio TCP
listener, and :class:`TcpTransport` is a blocking client satisfying the
:class:`~repro.runtime.transport.Transport` protocol, with a per-request
timeout and bounded exponential-backoff retry on connection loss.  Both
speak the existing protocol-v2 JSON envelope; the only thing added on
the wire is framing.

Wire framing (see docs/RUNTIME.md §5)
-------------------------------------

Each frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON — the exact string ``encode_message`` produced.
Every request frame is answered by exactly one reply frame; a one-way
message (where the endpoint returns ``None``) is acknowledged with an
**empty** frame (length 0), so the client never has to guess whether a
reply is coming and request/reply pairing survives pipelined use of one
connection.

Retry semantics
---------------

Connection loss (refused, reset, closed mid-exchange) raises
:class:`~repro.runtime.transport.TransportError`; a request that gets no
reply within ``timeout_s`` raises
:class:`~repro.runtime.transport.TransportTimeout`.  Both are retried
with bounded exponential backoff per :class:`RetryPolicy` (the
connection is re-established first), and the retry budget exhausting
re-raises the last error.  Retries re-send the frame, so a server may
legitimately see duplicate deliveries of one logical message — the
crowd-server's message handlers are duplicate-tolerant (re-uploading a
report, re-polling tasks and re-submitting the same labels never change
the published state), which is what makes at-least-once delivery safe.

:class:`RetryingTransport` packages the same policy as a wrapper for
*any* transport, so fault-injection tests can drive the identical retry
loop over an in-process transport.
"""

from __future__ import annotations

import asyncio
import contextlib
import re
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Set, Tuple

from repro.middleware.protocol import BusyResponse, decode_message
from repro.obs.recorder import Recorder, ensure_recorder
from repro.runtime.transport import (
    Transport,
    TransportBusy,
    TransportError,
    TransportTimeout,
    WireEndpoint,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frames",
    "raise_if_busy",
    "RetryPolicy",
    "RetryingTransport",
    "TcpTransport",
    "TcpServer",
    "ThreadedWireServer",
]

#: Hard ceiling on one frame's payload, far above any campaign message;
#: a length prefix beyond it means a corrupt or hostile peer and the
#: connection is dropped instead of buffering unbounded data.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def _frame_type_of(text: str) -> str:
    """Best-effort ``type`` tag of an encoded message, for error reports.

    ``encode_message`` sorts keys, so the tag sits near the end of the
    string; only the tail is scanned, keeping this cheap even for the
    oversized frames it exists to attribute.
    """
    match = re.search(r'"type":\s*"([^"]+)"', text[-256:])
    return match.group(1) if match else "<unknown>"


def encode_frame(text: Optional[str]) -> bytes:
    """Frame one encoded protocol message (``None`` → the empty ack frame)."""
    if text is None:
        return _HEADER.pack(0)
    payload = text.encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(payload)} bytes (message type "
            f"{_frame_type_of(text)!r}) exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frames(buffer: bytes) -> Tuple[List[Optional[str]], bytes]:
    """Split a byte buffer into complete frames plus the unconsumed tail.

    Utility for tests and diagnostic tooling; the transports below parse
    incrementally off their sockets instead.
    """
    frames: List[Optional[str]] = []
    offset = 0
    while len(buffer) - offset >= _HEADER.size:
        (length,) = _HEADER.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"frame length {length} exceeds the limit")
        if len(buffer) - offset - _HEADER.size < length:
            break
        start = offset + _HEADER.size
        payload = buffer[start:start + length]
        frames.append(payload.decode("utf-8") if length else None)
        offset = start + length
    return frames, buffer[offset:]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transport retries.

    ``max_attempts`` counts the *total* tries (1 = no retry).  Attempt
    ``n`` (0-based) failing sleeps ``min(base_delay_s * backoff**n,
    max_delay_s)`` before the next try.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    backoff: float = 2.0
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def delays(self) -> Iterator[float]:
        """The backoff delay after each failed attempt, in order."""
        for attempt in range(self.max_attempts - 1):
            yield min(
                self.base_delay_s * self.backoff ** attempt, self.max_delay_s
            )


def raise_if_busy(reply: Optional[str]) -> Optional[str]:
    """Raise :class:`TransportBusy` when ``reply`` is a busy frame.

    The substring probe keeps the hot path cheap — only frames that
    plausibly carry the ``busy`` type tag pay for a decode — and the
    decode confirms it, so a payload merely *containing* the probe text
    (say, an error reason) is never misclassified.
    """
    if reply is not None and '"type": "busy"' in reply:
        message = decode_message(reply)
        if isinstance(message, BusyResponse):
            raise TransportBusy(
                retry_after_s=message.retry_after_s,
                queue_depth=message.queue_depth,
            )
    return reply


class RetryingTransport:
    """Retry any transport's failures with bounded exponential backoff.

    Only :class:`TransportError` (and its :class:`TransportTimeout` /
    :class:`TransportBusy` subclasses) is retried — anything else is a
    bug, not weather.  A reply frame carrying the serving tier's
    :class:`~repro.middleware.protocol.BusyResponse` is converted to
    :class:`TransportBusy` here and retried after
    ``max(backoff delay, server's retry_after_s)`` — the wire-level
    backpressure contract of docs/SERVING.md.  The ``sleep`` hook exists
    so tests can inject faults and still run at full speed; ``recorder``
    counts ``transport.retries``, ``transport.busy`` and
    ``transport.giveups``.
    """

    def __init__(
        self,
        inner: Transport,
        *,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self.recorder = ensure_recorder(recorder)

    def request(self, text: str) -> Optional[str]:
        last_error: Optional[TransportError] = None
        for delay in list(self.policy.delays()) + [None]:
            try:
                return raise_if_busy(self.inner.request(text))
            except TransportBusy as error:
                last_error = error
                if delay is None:
                    break
                self.recorder.count("transport.busy")
                self.recorder.count("transport.retries")
                self._sleep(max(delay, error.retry_after_s))
            except TransportError as error:
                last_error = error
                if delay is None:
                    break
                self.recorder.count("transport.retries")
                self._sleep(delay)
        assert last_error is not None
        self.recorder.count("transport.giveups")
        raise last_error


class TcpTransport:
    """Blocking TCP client for the transport seam.

    Keeps one persistent connection to a :class:`TcpServer` (or any
    peer speaking the length-prefixed framing), re-establishing it with
    bounded exponential backoff when it is lost.  Each ``request`` sends
    one frame and blocks for exactly one reply frame, raising
    :class:`TransportTimeout` after ``timeout_s``.  A failed exchange is
    retried from scratch — reconnect included — up to the policy's
    attempt budget, so a server restart in the middle of a campaign
    shows up as latency, not failure.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 10.0,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self.recorder = ensure_recorder(recorder)
        self._sock: Optional[socket.socket] = None

    # -- connection management ------------------------------------------

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as error:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.recorder.count("transport.connects")
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    def close(self) -> None:
        """Close the persistent connection (reopened on the next request)."""
        self._drop_connection()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the exchange ----------------------------------------------------

    def _recv_exactly(self, sock: socket.socket, n_bytes: int) -> bytes:
        chunks = []
        remaining = n_bytes
        while remaining:
            try:
                chunk = sock.recv(remaining)
            except socket.timeout as error:
                raise TransportTimeout(
                    f"no reply from {self.host}:{self.port} within "
                    f"{self.timeout_s}s"
                ) from error
            except OSError as error:
                raise TransportError(
                    f"connection to {self.host}:{self.port} failed: {error}"
                ) from error
            if not chunk:
                raise TransportError(
                    f"connection to {self.host}:{self.port} closed by peer"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _exchange_once(self, text: str) -> Optional[str]:
        sock = self._connect()
        try:
            sock.settimeout(self.timeout_s)
            sock.sendall(encode_frame(text))
        except socket.timeout as error:
            self._drop_connection()
            raise TransportTimeout(
                f"send to {self.host}:{self.port} timed out"
            ) from error
        except OSError as error:
            self._drop_connection()
            raise TransportError(
                f"send to {self.host}:{self.port} failed: {error}"
            ) from error
        try:
            header = self._recv_exactly(sock, _HEADER.size)
            (length,) = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    f"peer announced a {length}-byte frame (limit "
                    f"{MAX_FRAME_BYTES}); dropping connection"
                )
            if length == 0:
                return None
            return self._recv_exactly(sock, length).decode("utf-8")
        except TransportError:
            self._drop_connection()
            raise

    def request(self, text: str) -> Optional[str]:
        with self.recorder.span("transport.request"):
            last_error: Optional[TransportError] = None
            for delay in list(self.policy.delays()) + [None]:
                try:
                    return self._exchange_once(text)
                except TransportTimeout as error:
                    self.recorder.count("transport.timeouts")
                    last_error = error
                except TransportError as error:
                    last_error = error
                if delay is None:
                    break
                self.recorder.count("transport.retries")
                self._sleep(delay)
            assert last_error is not None
            self.recorder.count("transport.giveups")
            raise last_error


class ThreadedWireServer:
    """Host a wire endpoint behind a blocking thread-per-connection listener.

    The data-plane counterpart of :class:`TcpServer`: same framing, same
    one-reply-per-request contract (empty frame for ``None``), but built
    on blocking sockets and plain threads instead of asyncio.  The
    event-loop machinery costs ~100µs per request in scheduling and
    future plumbing, which is fine for control-plane traffic but is the
    dominant term for a shard worker whose serve path is tens of
    microseconds of CPU — the serving tier (docs/SERVING.md) hosts each
    shard behind one of these.

    Pipelining-friendly by construction: every ``recv`` drains as many
    complete frames as arrived, serves them in order, and answers with
    one batched ``sendall`` — a client that ships N requests back to
    back gets N replies in order without N syscall round-trips.

    ``stop()`` closes the listener and aborts open connections, which is
    indistinguishable from process death to clients — the same crash
    semantics the recovery tests exploit with :class:`TcpServer`.
    """

    def __init__(
        self,
        endpoint: WireEndpoint,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.endpoint = endpoint
        self.host = host
        self.port = port
        self.recorder = ensure_recorder(recorder)
        self.address: Tuple[str, int] = (host, port)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stopping = False

    @property
    def running(self) -> bool:
        return (
            self._accept_thread is not None and self._accept_thread.is_alive()
        )

    def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``."""
        if self.running:
            raise RuntimeError("server is already running")
        self._stopping = False
        self._listener = socket.create_server(
            (self.host, self.port), backlog=128
        )
        # Timeout mode, not blocking: a cross-thread close() does not
        # reliably wake a blocking accept() on Linux, so the accept
        # loop polls the stop flag between short waits instead.
        self._listener.settimeout(0.25)
        self.address = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="crowdwifi-wire-server",
            daemon=True,
        )
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        """Stop serving and abort open connections (idempotent)."""
        self._stopping = True
        listener = self._listener
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()
            self._listener = None
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=30)
            self._accept_thread = None

    def __enter__(self) -> "ThreadedWireServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._stopping:
            try:
                conn, _ = listener.accept()
            except socket.timeout:  # crowdlint: disable=CW005
                continue  # not an error: the timeout is the stop-flag poll tick
            except OSError:  # crowdlint: disable=CW005
                break  # listener closed by stop(); exiting is the handling
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._connections.add(conn)
            self.recorder.count("transport.connections")
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="crowdwifi-wire-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        endpoint = self.endpoint
        header = _HEADER
        buffer = b""
        try:
            while True:
                chunk = conn.recv(1 << 17)
                if not chunk:
                    break
                buffer += chunk
                replies: List[bytes] = []
                offset = 0
                while len(buffer) - offset >= header.size:
                    (length,) = header.unpack_from(buffer, offset)
                    if length > MAX_FRAME_BYTES:
                        raise _OversizeFrame()
                    if len(buffer) - offset - header.size < length:
                        break
                    start = offset + header.size
                    text = buffer[start:start + length].decode("utf-8")
                    offset = start + length
                    replies.append(encode_frame(endpoint.handle_wire_message(text)))
                buffer = buffer[offset:]
                if replies:
                    conn.sendall(b"".join(replies))
                    self.recorder.count("transport.frames.served", len(replies))
        except (_OversizeFrame, ConnectionError, OSError, UnicodeDecodeError):
            # Client went away, sent garbage, announced an oversize
            # frame, or the server is stopping.  Torn down and counted.
            self.recorder.count("transport.disconnects")
        finally:
            with self._lock:
                self._connections.discard(conn)
            with contextlib.suppress(OSError):
                conn.close()


class _OversizeFrame(Exception):
    """A peer announced a frame beyond MAX_FRAME_BYTES; drop it."""


class TcpServer:
    """Host a wire endpoint behind an asyncio TCP listener.

    The event loop runs in a daemon thread so the (synchronous) campaign
    code can drive clients from the main thread against a genuinely
    concurrent server — the same process topology as the in-process
    transport, but with every frame on a real socket.  Each connection
    is served by its own task: frames are read with length-prefix
    framing, handed to ``endpoint.handle_wire_message`` and answered
    with exactly one frame (empty for ``None``).

    ``stop()`` shuts the listener down and aborts open connections —
    from a client's point of view that is indistinguishable from the
    server process dying, which is exactly what the crash-recovery tests
    exploit: stop, rebuild the endpoint from its durable log, ``start()``
    a fresh server, and the retrying clients carry on.
    """

    def __init__(
        self,
        endpoint: WireEndpoint,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.endpoint = endpoint
        self.host = host
        self.port = port
        self.recorder = ensure_recorder(recorder)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.address: Tuple[str, int] = (host, port)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — read it from the return
        value (or ``self.address``) to point clients at it.
        """
        if self.running:
            raise RuntimeError("server is already running")
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run, name="crowdwifi-tcp-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("TCP server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"TCP server failed to bind {self.host}:{self.port}: "
                f"{self._startup_error}"
            )
        return self.address

    def stop(self) -> None:
        """Stop serving and abort open connections (idempotent)."""
        loop = self._loop
        shutdown = self._shutdown
        if loop is not None and shutdown is not None and self.running:
            # The loop may already have closed between the check and the
            # call; that just means there is nothing left to stop.
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(shutdown.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "TcpServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- event-loop side -------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # pragma: no cover - defensive
            if self._started.is_set():
                raise  # after startup: surface in the thread's traceback
            # Before startup: hand the failure to the waiting starter.
            self._startup_error = error
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        bound = server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        self._started.set()
        async with server:
            await self._shutdown.wait()
            for writer in list(self._writers):
                writer.transport.abort()
        # Reap the per-connection handler tasks before the loop closes:
        # cancelling and gathering them here retrieves their
        # CancelledError so asyncio.run's teardown finds nothing
        # unconsumed to complain about.
        handlers = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in handlers:
            task.cancel()
        await asyncio.gather(*handlers, return_exceptions=True)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        self.recorder.count("transport.connections")
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    break  # corrupt peer; drop the connection
                payload = await reader.readexactly(length) if length else b""
                text = payload.decode("utf-8")
                with self.recorder.span("transport.serve"):
                    reply = self.endpoint.handle_wire_message(text)
                self.recorder.count("transport.frames.served")
                writer.write(encode_frame(reply))
                await writer.drain()
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionError,
            UnicodeDecodeError,
        ):
            # Client went away, sent garbage, or the server is shutting
            # down (cancellation is absorbed rather than re-raised so
            # the task finishes cleanly — a cancelled-state task trips
            # asyncio.streams' done-callback into logging spurious
            # tracebacks on teardown).  Torn down and counted.
            self.recorder.count("transport.disconnects")
        finally:
            self._writers.discard(writer)
            writer.close()
