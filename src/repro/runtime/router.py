"""Segment-sharded crowd-server behind a single wire endpoint.

.. note::
   As a *deployment*, the single-process router is superseded by the
   multi-process serving tier (:mod:`repro.runtime.serving`, PR 9 /
   docs/SERVING.md), which runs each shard in its own worker process
   behind its own listener and adds backpressure, handoff and per-shard
   recovery.  The router remains the in-process **reference
   implementation** of the sharding semantics — the serving tier is
   bit-identical to it by test — and the zero-infrastructure choice for
   tests and small campaigns.

A :class:`ServerRouter` owns ``n_shards`` independent
:class:`~repro.middleware.server.CrowdServer` instances and routes every
segment to exactly one of them via a deterministic hash
(``crc32(segment_id) % n_shards``).  To callers it looks like one
server: same registration / round / download API, same
``handle_wire_message`` endpoint, and a merged read-only
:class:`ShardedDatabase` view over the per-shard stores.

Determinism contract — a router with *any* shard count reproduces the
exact state a single :class:`CrowdServer` would reach from the same
seed:

* The router owns the random stream.  ``open_rounds`` /
  ``aggregate_rounds`` spawn one child generator per segment **in the
  caller's segment order** (exactly the draws a single server would
  make) and inject them into the shards via the ``rngs=`` parameter, so
  the shard servers' own generators are never drawn.
* Reliability merge: a vehicle's belief lives on the shard that
  aggregated its *globally last* round.  Shard-internal aggregation
  order is a subsequence of the global segment order, so that shard's
  value is exactly what the single server would hold after publishing
  in global order.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.middleware.database import SegmentStore
from repro.middleware.durable import (
    DurableCrowdServer,
    DurableLog,
    DurableLogError,
)
from repro.middleware.protocol import (
    DownloadResponse,
    ErrorResponse,
    LabelSubmission,
    LookupRequest,
    ProtocolMessage,
    TaskAssignmentMessage,
    TaskRequest,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import CrowdServer, ServerConfig
from repro.obs.recorder import Recorder, ensure_recorder
from repro.util.rng import RngLike, ensure_rng, spawn_children

__all__ = ["ServerRouter", "ShardedDatabase", "shard_of"]

#: Seed base for the shards' *own* (never drawn in router-driven flows)
#: generators; only :meth:`CrowdServer.open_round` / ``aggregate`` called
#: directly on a shard would consume them.
_SHARD_SEED_BASE = 0x5EED


def shard_of(segment_id: str, n_shards: int) -> int:
    """The deterministic home shard of a segment.

    CRC-32 of the UTF-8 segment id modulo the shard count: stable across
    processes and platforms (unlike ``hash``), uniform enough for road
    segment ids, and cheap.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(segment_id.encode("utf-8")) % n_shards


class ShardedDatabase:
    """Read-only merged view over every shard's per-segment stores.

    Mirrors the :class:`~repro.middleware.database.ApDatabase` query API
    (``segment``/``has_segment``/``segment_ids``/``all_fused_locations``)
    with identical ordering (sorted segment ids), so
    :class:`~repro.middleware.service.LookupService` and
    :meth:`CampaignOutcome.city_map` work unchanged on a sharded
    deployment.  Unlike ``ApDatabase.segment`` it never auto-creates:
    asking for an unregistered segment raises ``KeyError``.
    """

    def __init__(
        self,
        shards: Tuple[CrowdServer, ...],
        shard_by_segment: Mapping[str, int],
    ) -> None:
        self._shards = shards
        self._shard_by_segment = shard_by_segment

    def segment(self, segment_id: str) -> SegmentStore:
        if segment_id not in self._shard_by_segment:
            raise KeyError(f"unknown segment {segment_id!r}")
        shard = self._shards[self._shard_by_segment[segment_id]]
        return shard.database.segment(segment_id)

    def has_segment(self, segment_id: str) -> bool:
        return segment_id in self._shard_by_segment

    def segment_ids(self) -> List[str]:
        return sorted(self._shard_by_segment)

    def all_fused_locations(self) -> List[Point]:
        out: List[Point] = []
        for segment_id in self.segment_ids():
            out.extend(
                record.to_point()
                for record in self.segment(segment_id).fused_aps
            )
        return out

    def __len__(self) -> int:
        return len(self._shard_by_segment)


class ServerRouter:
    """``n_shards`` crowd-servers behind one endpoint.

    Speaks the same campaign-facing API as a single
    :class:`CrowdServer` (registration, batched rounds, label
    submission, download, the wire endpoint) and is bit-identical to one
    for any shard count — see the module docstring for the two
    mechanisms (injected per-segment generators, globally-last
    reliability merge).
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        n_shards: int = 1,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
        durable_dir: Optional[Union[str, Path]] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.config = config if config is not None else ServerConfig()
        self.recorder = ensure_recorder(recorder)
        self._rng = ensure_rng(rng)
        self._journal: Optional[DurableLog] = None
        if durable_dir is None:
            self.shards: Tuple[CrowdServer, ...] = tuple(
                CrowdServer(
                    self.config,
                    rng=ensure_rng(_SHARD_SEED_BASE + index),
                    recorder=self.recorder,
                )
                for index in range(n_shards)
            )
        else:
            # Durable deployment: every shard journals into its own
            # subdirectory and the router keeps its own small log for
            # the state only it holds (random stream, open-round
            # routing tables); :meth:`recover` rebuilds the whole tree.
            base = Path(durable_dir)
            self.shards = tuple(
                DurableCrowdServer(
                    base / f"shard-{index}",
                    self.config,
                    rng=ensure_rng(_SHARD_SEED_BASE + index),
                    recorder=self.recorder,
                    fsync_every=fsync_every,
                    snapshot_every=snapshot_every,
                )
                for index in range(n_shards)
            )
            self._journal = DurableLog(
                base / "router",
                fsync_every=fsync_every,
                recorder=self.recorder,
            )
            if self._journal.is_fresh:
                self._journal.append("router_meta", {"n_shards": n_shards})
                self._journal.append(
                    "rng_state", {"state": self._rng.bit_generator.state}
                )
        self._shard_by_segment: Dict[str, int] = {}
        #: segment id -> participating vehicles, captured at open time so
        #: the reliability merge can replay the global aggregation order.
        self._participants: Dict[str, List[str]] = {}
        #: vehicle id -> open-round segments, global open order — routes
        #: v1-style label submissions that carry no segment id.
        self._open_order: Dict[str, List[str]] = {}
        #: vehicle id -> shard holding its authoritative reliability (the
        #: shard that aggregated the vehicle's globally last round).
        self._reliability_shard: Dict[str, int] = {}

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def database(self) -> ShardedDatabase:
        """Merged read-only view over the shards' stores (live)."""
        return ShardedDatabase(self.shards, self._shard_by_segment)

    # -- registration & upload -----------------------------------------

    def _require_shard(self, segment_id: str) -> CrowdServer:
        if segment_id not in self._shard_by_segment:
            raise KeyError(f"segment {segment_id!r} is not registered")
        return self.shards[self._shard_by_segment[segment_id]]

    def register_segment(self, segment_id: str, grid: Grid) -> None:
        """Declare a segment; it is pinned to its hash-determined shard."""
        index = shard_of(segment_id, len(self.shards))
        self._shard_by_segment[segment_id] = index
        self.shards[index].register_segment(segment_id, grid)

    def segment_grid(self, segment_id: str) -> Grid:
        """The registered pattern grid of a segment (KeyError if unknown)."""
        return self._require_shard(segment_id).segment_grid(segment_id)

    def receive_report(self, report: UploadReport) -> None:
        """Store an uploaded coarse AP report on the segment's home shard."""
        if report.segment_id not in self._shard_by_segment:
            raise KeyError(
                f"report for unregistered segment {report.segment_id!r}"
            )
        self._require_shard(report.segment_id).receive_report(report)

    def reliability_of(self, vehicle_id: str) -> float:
        """Current reliability belief for a vehicle (default before any round)."""
        if vehicle_id in self._reliability_shard:
            shard = self.shards[self._reliability_shard[vehicle_id]]
            return shard.reliability_of(vehicle_id)
        return self.config.default_reliability

    # -- rounds -----------------------------------------------------------

    def _partition(
        self, ids: Sequence[str]
    ) -> Tuple[Dict[int, List[str]], Dict[int, List[np.random.Generator]]]:
        """Spawn per-segment children in global order, bucket by shard."""
        children = spawn_children(self._rng, len(ids))
        ids_by_shard: Dict[int, List[str]] = {}
        rngs_by_shard: Dict[int, List[np.random.Generator]] = {}
        for segment_id, child in zip(ids, children):
            if segment_id not in self._shard_by_segment:
                raise KeyError(f"segment {segment_id!r} is not registered")
            index = self._shard_by_segment[segment_id]
            ids_by_shard.setdefault(index, []).append(segment_id)
            rngs_by_shard.setdefault(index, []).append(child)
        return ids_by_shard, rngs_by_shard

    def open_rounds(
        self,
        segment_ids: Sequence[str],
        *,
        n_workers: Optional[int] = None,
    ) -> Dict[str, Dict[str, TaskAssignmentMessage]]:
        """Open a round per segment across the shards.

        Bit-identical to a single server's ``open_rounds`` for the same
        router seed: the per-segment generators are spawned here in the
        caller's order and injected into the shards.
        """
        ids = list(segment_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate segment ids in batch: {ids}")
        ids_by_shard, rngs_by_shard = self._partition(ids)
        merged: Dict[str, Dict[str, TaskAssignmentMessage]] = {}
        for index in sorted(ids_by_shard):
            merged.update(
                self.shards[index].open_rounds(
                    ids_by_shard[index],
                    n_workers=n_workers,
                    rngs=rngs_by_shard[index],
                )
            )
        self._note_rounds_opened(
            ids, {segment_id: list(merged[segment_id]) for segment_id in ids}
        )
        if self._journal is not None:
            # One record per operation, carrying the post-draw generator
            # state: recovery after a crash *inside* this call restores
            # the pre-operation stream, so re-running the step re-draws
            # the same children and re-installs identical rounds.
            self._journal.append(
                "rounds_opened",
                {
                    "segments": ids,
                    "participants": {
                        segment_id: list(merged[segment_id])
                        for segment_id in ids
                    },
                    "rng": self._rng.bit_generator.state,
                },
            )
        return {segment_id: merged[segment_id] for segment_id in ids}

    def _note_rounds_opened(
        self, ids: Sequence[str], participants_by_segment: Dict[str, List[str]]
    ) -> None:
        """Update the open-round routing tables (idempotent on re-runs)."""
        for segment_id in ids:
            participants = participants_by_segment[segment_id]
            self._participants[segment_id] = list(participants)
            for vehicle_id in participants:
                open_segments = self._open_order.setdefault(vehicle_id, [])
                if segment_id not in open_segments:
                    open_segments.append(segment_id)

    def submit_labels(self, segment_id: str, submission: LabelSubmission) -> None:
        """Record one vehicle's answers on the segment's home shard."""
        self._require_shard(segment_id).submit_labels(segment_id, submission)

    def round_complete(self, segment_id: str) -> bool:
        """Whether every participating vehicle has submitted its labels."""
        return self._require_shard(segment_id).round_complete(segment_id)

    def aggregate_rounds(
        self,
        segment_ids: Sequence[str],
        *,
        n_workers: Optional[int] = None,
    ) -> Dict[str, DownloadResponse]:
        """Aggregate each completed round across the shards.

        After the shards publish, the reliability routing table is
        replayed in the caller's (global) segment order so
        :meth:`reliability_of` answers from the shard holding each
        vehicle's newest belief.
        """
        ids = list(segment_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate segment ids in batch: {ids}")
        ids_by_shard, rngs_by_shard = self._partition(ids)
        merged: Dict[str, DownloadResponse] = {}
        for index in sorted(ids_by_shard):
            merged.update(
                self.shards[index].aggregate_rounds(
                    ids_by_shard[index],
                    n_workers=n_workers,
                    rngs=rngs_by_shard[index],
                )
            )
        self._note_rounds_aggregated(ids)
        if self._journal is not None:
            self._journal.append(
                "rounds_aggregated",
                {"segments": ids, "rng": self._rng.bit_generator.state},
            )
        return {segment_id: merged[segment_id] for segment_id in ids}

    def _note_rounds_aggregated(self, ids: Sequence[str]) -> None:
        """Replay the reliability routing merge in global segment order."""
        for segment_id in ids:
            index = self._shard_by_segment[segment_id]
            for vehicle_id in self._participants.pop(segment_id, []):
                self._reliability_shard[vehicle_id] = index
                open_segments = self._open_order.get(vehicle_id)
                if open_segments is not None and segment_id in open_segments:
                    open_segments.remove(segment_id)
                    if not open_segments:
                        del self._open_order[vehicle_id]

    # -- wire endpoint ------------------------------------------------------

    def handle_message(
        self, message: ProtocolMessage
    ) -> Optional[ProtocolMessage]:
        """Serve one decoded protocol message; return the reply message.

        Segment-addressed messages go straight to the segment's home
        shard; v1-style label submissions without a segment id are routed
        to the vehicle's oldest *globally* open round first, since no
        single shard sees the whole open set.
        """
        try:
            if isinstance(message, (UploadReport, TaskRequest, LookupRequest)):
                shard = self._require_shard(message.segment_id)
                return shard.handle_message(message)
            if isinstance(message, LabelSubmission):
                segment_id = message.segment_id
                if not segment_id:
                    open_segments = self._open_order.get(message.vehicle_id)
                    if not open_segments:
                        raise KeyError(
                            "no open round awaits vehicle "
                            f"{message.vehicle_id!r}"
                        )
                    segment_id = open_segments[0]
                self._require_shard(segment_id).submit_labels(
                    segment_id, message
                )
                return None
        except (KeyError, ValueError, RuntimeError) as error:
            return ErrorResponse(reason=str(error))
        return ErrorResponse(
            reason=f"cannot handle {type(message).__name__} here"
        )

    def handle_wire_message(self, text: str) -> Optional[str]:
        """Serve one encoded protocol message; return the encoded reply."""
        try:
            message = decode_message(text)
        except ValueError as error:
            return encode_message(ErrorResponse(reason=str(error)))
        reply = self.handle_message(message)
        if reply is None:
            return None
        return encode_message(reply)

    # -- download ---------------------------------------------------------

    def download(self, segment_id: str) -> DownloadResponse:
        """Serve the current fused map of a segment."""
        if segment_id not in self._shard_by_segment:
            raise KeyError(f"unknown segment {segment_id!r}")
        return self._require_shard(segment_id).download(segment_id)

    # -- durability ---------------------------------------------------------

    def close(self) -> None:
        """Flush and close every durable log (no-op without durable_dir)."""
        for shard in self.shards:
            if isinstance(shard, DurableCrowdServer):
                shard.close()
        if self._journal is not None:
            self._journal.close()

    def crash(self) -> None:
        """Test hook: die without flushing any durable log."""
        for shard in self.shards:
            if isinstance(shard, DurableCrowdServer):
                shard.log.crash()
        if self._journal is not None:
            self._journal.crash()

    def _apply_router_record(self, record: Dict[str, Any]) -> None:
        kind = record["kind"]
        data = record["data"]
        if kind == "router_meta":
            if int(data["n_shards"]) != len(self.shards):
                raise DurableLogError(
                    f"log was written by a {data['n_shards']}-shard router; "
                    f"this one has {len(self.shards)} shards"
                )
        elif kind == "rng_state":
            self._rng.bit_generator.state = data["state"]
        elif kind == "rounds_opened":
            self._note_rounds_opened(data["segments"], data["participants"])
            self._rng.bit_generator.state = data["rng"]
        elif kind == "rounds_aggregated":
            self._note_rounds_aggregated(data["segments"])
            self._rng.bit_generator.state = data["rng"]
        else:
            raise DurableLogError(f"unknown router record kind {kind!r}")

    @classmethod
    def recover(
        cls,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
    ) -> "ServerRouter":
        """Reconstruct a durable router bit-identically from its log tree.

        Every shard replays its own snapshot + log (stores, open pools —
        whose assignments re-enter ``pending`` so vehicles re-pull them —
        reliabilities), the segment→shard pinning is rebuilt from the
        recovered registrations, and the router's own log restores its
        routing tables and random stream, so the next round draws exactly
        what the dead process would have drawn.
        """
        base = Path(durable_dir)
        _, records = DurableLog.read(base / "router")
        n_shards = None
        for record in records:
            if record["kind"] == "router_meta":
                n_shards = int(record["data"]["n_shards"])
                break
        if n_shards is None:
            raise DurableLogError(
                f"no router_meta record under {base / 'router'}; "
                "nothing to recover"
            )
        router = cls(
            config,
            n_shards=n_shards,
            recorder=recorder,
            durable_dir=durable_dir,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
        )
        router.replay_recovered()
        return router

    def replay_recovered(self) -> None:
        """Apply whatever the durable logs held at open time.

        Replays every shard's snapshot + log, rebuilds the
        segment→shard pinning from the recovered registrations, then
        replays the router's own records (routing tables, random
        stream).  A freshly created log tree makes this a no-op.
        """
        if self._journal is None:
            raise RuntimeError("replay requires a durable_dir")
        with self.recorder.span("durable.recover"), self._journal.suspended():
            for index, shard in enumerate(self.shards):
                assert isinstance(shard, DurableCrowdServer)
                shard.replay_recovered()
                for segment_id in shard.database.segment_ids():
                    self._shard_by_segment[segment_id] = index
            for record in self._journal.recovered_records:
                self._apply_router_record(record)
                self.recorder.count("durable.records.replayed")
