"""Step-driven campaign execution over the transport seam.

:class:`CampaignScheduler` replaces the old monolithic two-phase body of
``FleetCampaign.run`` with an explicit step graph::

    sense → upload → open_round → label → aggregate → publish

Each step is individually runnable (:meth:`CampaignScheduler.run_step`),
telemetry-spanned, and reads/writes one shared :class:`CampaignState`.
The client-side steps (``upload``, ``label``) push **every**
client↔server exchange through a :class:`~repro.runtime.transport.Transport`
as encoded protocol frames — uploads, task polls
(:class:`~repro.middleware.protocol.TaskRequest`) and label submissions
all cross the codec, exactly as they would over a socket.  The
server-side steps (``open_round``, ``aggregate``) fan over
:mod:`repro.util.parallel` through the endpoint's batch APIs, and
``sense`` fans the per-vehicle drives the same way.

Determinism contract (inherited from the legacy driver and pinned by
``tests/runtime``): the per-unit child generators are spawned from the
campaign seed *before* any dispatch, and results are consumed in
enrollment/planner order, so any worker count *and any shard count*
produces a `CampaignOutcome` bit-identical to the serial single-server
run.  The ``label`` step stays serial by design: a vehicle's label
stream is shared across its segments in segment-major order, so fanning
it would split that stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.engine import EngineConfig, OnlineCsEngine, OnlineCsResult
from repro.geo.grid import Grid
from repro.middleware.client import CrowdVehicleClient
from repro.middleware.fleet import CampaignOutcome, FleetCampaign, VehiclePlan
from repro.middleware.protocol import (
    DownloadResponse,
    ErrorResponse,
    ProtocolMessage,
    TaskAssignmentMessage,
    TaskRequest,
    decode_message,
    encode_message,
)
from repro.middleware.segments import SegmentPlanner
from repro.obs.recorder import NULL_RECORDER, Recorder, ensure_recorder
from repro.runtime.net import (
    RetryPolicy,
    RetryingTransport,
    TcpServer,
    TcpTransport,
)
from repro.runtime.router import ServerRouter
from repro.runtime.serving import PlacementRouterTransport, ServingCluster
from repro.runtime.transport import InProcessTransport, Transport, WireEndpoint
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.world import World
from repro.mobility.models import PathFollower
from repro.mobility.units import mph_to_mps
from repro.util.parallel import run_recorded_tasks
from repro.util.rng import RngLike, ensure_rng, spawn_children

__all__ = ["CampaignState", "CampaignScheduler", "STEP_NAMES"]

#: The campaign step graph, in execution order.
STEP_NAMES: Tuple[str, ...] = (
    "sense",
    "upload",
    "open_round",
    "label",
    "aggregate",
    "publish",
)


@dataclass(frozen=True)
class _VehicleSenseJob:
    """Everything one vehicle's sense step needs, picklable.

    Carries its own child generator so the sensing stream is a function
    of the campaign seed and the vehicle's enrollment position only —
    never of which worker process runs it or in what order.
    """

    world: World
    collector_config: CollectorConfig
    engine_config: EngineConfig
    plan: VehiclePlan
    planner: SegmentPlanner
    grids: Tuple[Tuple[str, Grid], ...]
    min_segment_readings: int
    rng: np.random.Generator


def _sense_vehicle(
    job: _VehicleSenseJob, recorder: Recorder = NULL_RECORDER
) -> Dict[str, OnlineCsResult]:
    """Sense step for one vehicle: drive, split by segment, run online CS.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it.
    Returns the per-segment results (planner-split order) that produced
    at least one AP from at least ``min_segment_readings`` readings.
    ``recorder`` is the per-task sink handed in by
    :func:`repro.util.parallel.run_recorded_tasks`; every engine round
    this vehicle runs reports into it.
    """
    grids = dict(job.grids)
    with recorder.span("fleet.sense_vehicle"):
        collector = RssCollector(job.world, job.collector_config, rng=job.rng)
        follower = PathFollower(
            job.plan.route, mph_to_mps(job.plan.speed_mph)
        )
        trace = collector.collect_along(follower, n_samples=job.plan.n_samples)
        results: Dict[str, OnlineCsResult] = {}
        for segment_id, sub_trace in job.planner.split_trace(trace).items():
            if len(sub_trace) < job.min_segment_readings:
                continue
            engine = OnlineCsEngine(
                job.world.channel,
                job.engine_config,
                grid=grids[segment_id],
                rng=job.rng,
                recorder=recorder,
            )
            result = engine.process_trace(sub_trace)
            if result.n_aps == 0:
                continue
            results[segment_id] = result
    return results


@dataclass
class CampaignState:
    """Everything the campaign steps read and write; one per run.

    Created by :meth:`CampaignScheduler.start` and threaded through
    every :meth:`CampaignScheduler.run_step` call; ``outcome`` is filled
    by the ``publish`` step.
    """

    endpoint: Union[ServerRouter, ServingCluster]
    transport: Transport
    recorder: Recorder
    n_workers: Optional[int]
    children: Tuple[np.random.Generator, ...]
    plans: Tuple[VehiclePlan, ...]
    grids: Tuple[Tuple[str, Grid], ...]
    sensed: Optional[List[Dict[str, OnlineCsResult]]] = None
    clients: Dict[Tuple[str, str], CrowdVehicleClient] = field(
        default_factory=dict
    )
    per_vehicle_segments: Dict[str, List[str]] = field(default_factory=dict)
    segments_mapped: List[str] = field(default_factory=list)
    assignments: Dict[str, Dict[str, TaskAssignmentMessage]] = field(
        default_factory=dict
    )
    snapshots: Dict[str, DownloadResponse] = field(default_factory=dict)
    outcome: Optional[CampaignOutcome] = None
    completed_steps: List[str] = field(default_factory=list)
    #: The listener hosting ``endpoint`` when the campaign runs over
    #: TCP (``None`` for the in-process transport).
    net_server: Optional[TcpServer] = None

    def require(self, *steps: str) -> None:
        """Raise unless every prerequisite step already ran."""
        missing = [s for s in steps if s not in self.completed_steps]
        if missing:
            raise RuntimeError(
                f"step prerequisites not met: {missing} have not run"
            )


class CampaignScheduler:
    """Drives a :class:`FleetCampaign` through the explicit step graph.

    Parameters
    ----------
    campaign:
        The enrolled campaign (world, planner, configs, vehicle plans).
    n_shards:
        Segment shards behind the :class:`ServerRouter` endpoint.  Any
        value produces a bit-identical outcome; more shards spread the
        server state.
    transport:
        ``"inprocess"`` (default) hands frames straight to the endpoint;
        ``"tcp"`` hosts the endpoint behind a loopback
        :class:`~repro.runtime.net.TcpServer` and drives the campaign
        through a retrying :class:`~repro.runtime.net.TcpTransport` —
        every exchange crosses a real socket.  ``"serving"`` runs each
        shard as its own worker process behind its own listener
        (:class:`~repro.runtime.serving.ServingCluster`, requires
        ``durable_dir``) and drives clients through a retrying
        :class:`~repro.runtime.serving.PlacementRouterTransport`.  All
        three are bit-identical for the same seed.
    transport_factory:
        Builds the client-side transport from the wire endpoint;
        defaults to :class:`InProcessTransport`.  Tests inject a
        counting transport here to audit the traffic.  Mutually
        exclusive with ``transport="tcp"`` (the factory never sees a
        socket).
    durable_dir:
        When set, the server journals every mutation under this
        directory (see :mod:`repro.middleware.durable`) and
        :meth:`restart_server` can rebuild it bit-identically after
        :meth:`crash_server`.
    wal_format:
        WAL format for the serving tier's worker processes:
        ``"jsonl"``, ``"block"`` (4 KB-aligned ``O_DIRECT`` lanes that
        overlap across shard processes — see docs/SERVING.md), or
        ``None`` for the durable layer's default.  Only valid with
        ``transport="serving"``; recovery auto-detects the format on
        disk, so it never needs to be passed twice.
    timeout_s / retry_policy:
        Per-request timeout and reconnect/backoff budget of the TCP
        client; ignored for the in-process transport.
    """

    def __init__(
        self,
        campaign: FleetCampaign,
        *,
        n_shards: int = 1,
        transport: str = "inprocess",
        transport_factory: Optional[
            Callable[[WireEndpoint], Transport]
        ] = None,
        durable_dir: Optional[Union[str, Path]] = None,
        wal_format: Optional[str] = None,
        timeout_s: float = 30.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if transport not in ("inprocess", "tcp", "serving"):
            raise ValueError(
                "transport must be 'inprocess', 'tcp' or 'serving', "
                f"got {transport!r}"
            )
        if transport != "inprocess" and transport_factory is not None:
            raise ValueError(
                "transport_factory only applies to the in-process "
                f"transport; transport={transport!r} builds its own client"
            )
        if transport == "serving" and durable_dir is None:
            raise ValueError(
                "transport='serving' requires a durable_dir: every shard "
                "worker journals into its own WAL lane under it"
            )
        if wal_format is not None and transport != "serving":
            raise ValueError(
                "wal_format only applies to transport='serving' (the "
                f"worker processes' WAL lanes), got {wal_format!r} with "
                f"transport={transport!r}"
            )
        self.campaign = campaign
        self.n_shards = n_shards
        self.transport = transport
        self.wal_format = wal_format
        self.durable_dir = Path(durable_dir) if durable_dir is not None else None
        self.timeout_s = timeout_s
        self.retry_policy = retry_policy
        self.transport_factory: Callable[[WireEndpoint], Transport] = (
            transport_factory if transport_factory is not None
            else InProcessTransport
        )

    # -- lifecycle ---------------------------------------------------------

    def start(
        self,
        *,
        rng: RngLike = None,
        n_workers: Optional[int] = None,
        recorder: Optional[Recorder] = None,
    ) -> CampaignState:
        """Seed the run: spawn the child generators, build the endpoint.

        Child 0 drives the server endpoint; children (1+2i, 2+2i) drive
        vehicle i's sensing and its task-labeling clients respectively —
        the same layout as the legacy driver, which is what makes the
        scheduler bit-compatible with it.
        """
        campaign = self.campaign
        plans = tuple(campaign.plans)
        if not plans:
            raise RuntimeError("no vehicles enrolled; call add_vehicle first")
        generator = ensure_rng(rng)
        children = tuple(spawn_children(generator, 1 + 2 * len(plans)))
        rec = ensure_recorder(recorder)
        endpoint: Union[ServerRouter, ServingCluster]
        if self.transport == "serving":
            assert self.durable_dir is not None
            endpoint = ServingCluster(
                self.durable_dir,
                campaign.server_config,
                n_shards=self.n_shards,
                rng=children[0],
                recorder=rec,
                wal_format=self.wal_format,
            )
        else:
            endpoint = ServerRouter(
                campaign.server_config,
                n_shards=self.n_shards,
                rng=children[0],
                recorder=rec,
                durable_dir=self.durable_dir,
            )
        for segment in campaign.planner.all_segments():
            endpoint.register_segment(
                segment.segment_id,
                segment.grid(
                    campaign.engine_config.lattice_length_m,
                    margin_m=campaign.grid_margin_m,
                ),
            )
        grids = tuple(
            (segment.segment_id, endpoint.segment_grid(segment.segment_id))
            for segment in campaign.planner.all_segments()
        )
        net_server: Optional[TcpServer] = None
        if self.transport == "tcp":
            assert isinstance(endpoint, ServerRouter)
            net_server = TcpServer(endpoint, recorder=rec)
            host, port = net_server.start()
            transport: Transport = TcpTransport(
                host,
                port,
                timeout_s=self.timeout_s,
                policy=self.retry_policy,
                recorder=rec,
            )
        elif self.transport == "serving":
            assert isinstance(endpoint, ServingCluster)
            transport = RetryingTransport(
                PlacementRouterTransport(
                    endpoint,
                    timeout_s=self.timeout_s,
                    policy=self.retry_policy,
                    recorder=rec,
                ),
                policy=self.retry_policy,
                recorder=rec,
            )
        else:
            transport = self.transport_factory(endpoint)
        return CampaignState(
            endpoint=endpoint,
            transport=transport,
            recorder=rec,
            n_workers=n_workers,
            children=children,
            plans=plans,
            grids=grids,
            net_server=net_server,
        )

    def run_step(self, state: CampaignState, name: str) -> CampaignState:
        """Execute one named step of the graph, under its telemetry span."""
        if name not in STEP_NAMES:
            raise ValueError(
                f"unknown step {name!r}; steps are {list(STEP_NAMES)}"
            )
        step = getattr(self, f"_step_{name}")
        # One static span literal per step: dashboards (and crowdlint
        # CW104) require the span inventory to be enumerable from the
        # source, and the names must stay identical to the legacy
        # f-string spelling to preserve telemetry bit-compatibility.
        if name == "sense":
            span = state.recorder.span("scheduler.sense")
        elif name == "upload":
            span = state.recorder.span("scheduler.upload")
        elif name == "open_round":
            span = state.recorder.span("scheduler.open_round")
        elif name == "label":
            span = state.recorder.span("scheduler.label")
        elif name == "aggregate":
            span = state.recorder.span("scheduler.aggregate")
        else:
            span = state.recorder.span("scheduler.publish")
        with span:
            step(state)
        state.completed_steps.append(name)
        return state

    def run(
        self,
        *,
        rng: RngLike = None,
        n_workers: Optional[int] = None,
        recorder: Optional[Recorder] = None,
    ) -> CampaignOutcome:
        """Execute the whole step graph and return the campaign outcome.

        Emits the same phase spans as the legacy driver
        (``fleet.phase1.sense`` inside the sense step,
        ``fleet.phase2.rounds`` around open_round/label/aggregate) so
        existing telemetry reports keep their markers.
        """
        state = self.start(rng=rng, n_workers=n_workers, recorder=recorder)
        try:
            self.run_step(state, "sense")
            self.run_step(state, "upload")
            if state.segments_mapped:
                with state.recorder.span("fleet.phase2.rounds"):
                    self.run_step(state, "open_round")
                    self.run_step(state, "label")
                    self.run_step(state, "aggregate")
            self.run_step(state, "publish")
        finally:
            self.shutdown(state)
        assert state.outcome is not None
        return state.outcome

    def shutdown(self, state: CampaignState) -> None:
        """Stop the listener and close the durable logs (idempotent).

        The in-memory endpoint (and the ``CampaignOutcome`` holding it)
        stays fully readable afterwards; only the network listener and
        the journal file handles are released.
        """
        if state.net_server is not None:
            state.net_server.stop()
            state.net_server = None
        transport = state.transport
        if isinstance(transport, RetryingTransport):
            transport = transport.inner
        if isinstance(transport, (TcpTransport, PlacementRouterTransport)):
            transport.close()
        state.endpoint.close()

    def crash_server(self, state: CampaignState) -> None:
        """Simulate the server process dying mid-campaign.

        The listener is killed (open connections abort, exactly as a
        dead process would), the in-memory endpoint is abandoned, and
        any journal records not yet fsynced are lost.  Only what the
        durable log captured survives — :meth:`restart_server` rebuilds
        from that.
        """
        if state.net_server is not None:
            state.net_server.stop()
            state.net_server = None
        state.endpoint.crash()

    def restart_server(self, state: CampaignState) -> None:
        """Recover the server from its durable log and resume serving.

        Rebuilds the endpoint bit-identically via
        :meth:`ServerRouter.recover` and, for TCP campaigns, rebinds the
        *original* address so the existing retrying client reconnects by
        itself — in-flight requests ride their backoff through the
        outage.  Open rounds recovered from the log are pending again,
        so vehicles that were mid-round simply re-pull their tasks.
        """
        if self.durable_dir is None:
            raise RuntimeError(
                "restart_server requires a durable_dir; without the log "
                "there is nothing to recover from"
            )
        if self.transport == "serving":
            # Every worker process is respawned on a fresh port and the
            # placement/routing tables replay from the cluster journal;
            # a fresh placement-routing client resolves the new topology.
            cluster = ServingCluster.recover(
                self.durable_dir,
                self.campaign.server_config,
                recorder=state.recorder,
            )
            state.endpoint = cluster
            state.transport = RetryingTransport(
                PlacementRouterTransport(
                    cluster,
                    timeout_s=self.timeout_s,
                    policy=self.retry_policy,
                    recorder=state.recorder,
                ),
                policy=self.retry_policy,
                recorder=state.recorder,
            )
            return
        endpoint = ServerRouter.recover(
            self.durable_dir,
            self.campaign.server_config,
            recorder=state.recorder,
        )
        state.endpoint = endpoint
        if self.transport == "tcp":
            assert isinstance(state.transport, TcpTransport)
            net_server = TcpServer(
                endpoint,
                host=state.transport.host,
                port=state.transport.port,
                recorder=state.recorder,
            )
            net_server.start()
            state.net_server = net_server
        else:
            state.transport = self.transport_factory(endpoint)

    # -- the wire ----------------------------------------------------------

    def _request(
        self, state: CampaignState, message: ProtocolMessage
    ) -> Optional[ProtocolMessage]:
        """One client→server exchange: encode, transport, decode.

        The only path any step uses to talk to the server as a client;
        an :class:`ErrorResponse` reply is raised as a campaign error.
        """
        reply_text = state.transport.request(encode_message(message))
        if reply_text is None:
            return None
        reply = decode_message(reply_text)
        if isinstance(reply, ErrorResponse):
            raise RuntimeError(
                f"server rejected {type(message).__name__}: {reply.reason}"
            )
        return reply

    # -- steps -------------------------------------------------------------

    def _step_sense(self, state: CampaignState) -> None:
        """Every vehicle drives its route and runs online CS per segment."""
        campaign = self.campaign
        state.recorder.count("fleet.vehicles", len(state.plans))
        jobs = [
            _VehicleSenseJob(
                world=campaign.world,
                collector_config=campaign.collector_config,
                engine_config=campaign.engine_config,
                plan=plan,
                planner=campaign.planner,
                grids=state.grids,
                min_segment_readings=campaign.min_segment_readings,
                rng=state.children[1 + 2 * index],
            )
            for index, plan in enumerate(state.plans)
        ]
        with state.recorder.span("fleet.phase1.sense"):
            state.sensed = run_recorded_tasks(
                _sense_vehicle,
                jobs,
                recorder=state.recorder,
                n_workers=state.n_workers,
            )

    def _step_upload(self, state: CampaignState) -> None:
        """Every vehicle uploads its coarse reports over the transport."""
        state.require("sense")
        campaign = self.campaign
        assert state.sensed is not None
        for index, (plan, results) in enumerate(
            zip(state.plans, state.sensed)
        ):
            label_rng = state.children[2 + 2 * index]
            state.per_vehicle_segments[plan.vehicle_id] = []
            for segment_id, result in results.items():
                engine = OnlineCsEngine(
                    campaign.world.channel,
                    campaign.engine_config,
                    grid=state.endpoint.segment_grid(segment_id),
                    rng=label_rng,
                    recorder=state.recorder,
                )
                client = CrowdVehicleClient(
                    vehicle_id=plan.vehicle_id,
                    engine=engine,
                    spam_probability=plan.spam_probability,
                    rng=label_rng,
                )
                client.last_result = result
                self._request(
                    state, client.build_report(segment_id, timestamp=0.0)
                )
                state.clients[(plan.vehicle_id, segment_id)] = client
                state.per_vehicle_segments[plan.vehicle_id].append(segment_id)
        state.segments_mapped = [
            segment.segment_id
            for segment in campaign.planner.all_segments()
            if state.endpoint.database.segment(segment.segment_id).vehicles()
        ]
        state.recorder.count(
            "fleet.segments.mapped", len(state.segments_mapped)
        )

    def _step_open_round(self, state: CampaignState) -> None:
        """Open one crowdsourcing round per active segment (server side)."""
        state.require("upload")
        if not state.segments_mapped:
            return
        state.assignments = state.endpoint.open_rounds(
            state.segments_mapped, n_workers=state.n_workers
        )

    def _step_label(self, state: CampaignState) -> None:
        """Vehicles poll their tasks and submit labels, all over the wire.

        Serial by design: a vehicle's label generator is shared across
        its segments in segment-major order, so fanning this step would
        split that stream and change the outcome.

        Server-side, every submission feeds the round's streaming-KOS
        consumer on arrival (crowd/streaming.py), so message-passing
        work accrues *during* this step and the aggregate step shrinks
        to a finalize over the accumulated state.
        """
        state.require("open_round")
        for segment_id in state.segments_mapped:
            grid = state.endpoint.segment_grid(segment_id)
            for vehicle_id in state.assignments[segment_id]:
                reply = self._request(
                    state,
                    TaskRequest(vehicle_id=vehicle_id, segment_id=segment_id),
                )
                if not isinstance(reply, TaskAssignmentMessage):
                    raise RuntimeError(
                        f"expected a task assignment for {vehicle_id!r} on "
                        f"{segment_id!r}, got {type(reply).__name__}"
                    )
                client = state.clients[(vehicle_id, segment_id)]
                submission = replace(
                    client.answer_tasks(reply, grid), segment_id=segment_id
                )
                self._request(state, submission)

    def _step_aggregate(self, state: CampaignState) -> None:
        """Finalize the streamed rounds and publish the fused maps.

        With the streaming crowd engine the server's ``aggregate_rounds``
        no longer recomputes KOS from the label matrix: it finalizes each
        round's already-fed message state (bit-identical to the batch
        estimator by the streaming contract), fuses, and publishes.
        """
        state.require("label")
        if not state.segments_mapped:
            return
        state.snapshots = state.endpoint.aggregate_rounds(
            state.segments_mapped, n_workers=state.n_workers
        )

    def _step_publish(self, state: CampaignState) -> None:
        """Collect reliabilities and assemble the campaign outcome."""
        state.require("upload")
        reliabilities = {
            plan.vehicle_id: state.endpoint.reliability_of(plan.vehicle_id)
            for plan in state.plans
        }
        state.outcome = CampaignOutcome(
            server=state.endpoint,
            segments_mapped=state.segments_mapped,
            per_vehicle_segments=state.per_vehicle_segments,
            reliabilities=reliabilities,
        )
