"""Elastic multi-process sharded serving for the crowd-server.

The single-process :class:`~repro.runtime.router.ServerRouter` proved
the sharding *semantics* — deterministic segment→shard placement, the
injected per-segment generators, the globally-last reliability merge —
but every shard still shared one Python interpreter, one WAL lane and
one fate.  This module promotes that design to a real serving tier:

* Each shard runs a :class:`~repro.middleware.durable.DurableCrowdServer`
  in its **own worker process** (``fork``), behind its own
  :class:`~repro.runtime.net.ThreadedWireServer` TCP listener, journaling
  into its own WAL lane.  Vehicle traffic (uploads, task pulls, label
  submissions) goes straight to the owning shard's socket — the cluster
  front-end is never on the data path.
* :class:`ServingCluster` is the control plane: it owns the
  segment→shard **placement table** and its **epoch**, drives rounds
  across the workers over per-worker control pipes, journals its own
  routing state, and can crash, restart or rebalance shards live.
* :class:`_BackpressureEndpoint` (installed inside every worker) bounds
  the per-shard inbound queue: past ``max_inflight`` admitted requests,
  further frames are answered with a wire-level
  :class:`~repro.middleware.protocol.BusyResponse` carrying a
  retry-after hint, which
  :class:`~repro.runtime.net.RetryingTransport` converts into a
  delayed client-side retry — explicit backpressure instead of
  unbounded buffering (docs/SERVING.md §backpressure).
* :class:`PlacementRouterTransport` is the client side: it routes each
  frame to the owning shard's socket by reading the placement table,
  and refreshes its view (re-resolving moved segments and restarted
  workers' new ports) whenever the cluster's ``topology_version``
  bumps or a shard answers "not registered".

Determinism contract — identical to the router's, and therefore to a
single :class:`~repro.middleware.server.CrowdServer`: the cluster owns
the random stream, spawns per-segment children in the caller's global
order and ships their *states* to the workers, and replays the
reliability merge in global aggregation order.  A campaign driven
through a cluster of any shard count is bit-identical to the serial
single-server run (pinned by ``tests/runtime/test_serving.py``).

Segment handoff (docs/SERVING.md §handoff): ``handoff_segment`` asks
the owning worker to :meth:`~DurableCrowdServer.export_segment` the
segment's full state bundle (store, grid, any open round's pool —
including the round's streaming-KOS interim state, so a migrated
mid-round segment keeps consuming labels incrementally on its new
shard),
installs it on the target worker, bumps the placement epoch and
journals the move.  Both sides journal too, so a crash at any point
recovers to a consistent placement, and the moved state is
bit-identical to never-moved state.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from multiprocessing.connection import Connection
from multiprocessing.context import BaseContext
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.geo.grid import Grid
from repro.geo.points import Point
from repro.middleware.database import SegmentStore
from repro.middleware.durable import (
    DurableCrowdServer,
    DurableLog,
    DurableLogError,
)
from repro.middleware.protocol import (
    BusyResponse,
    DownloadResponse,
    ErrorResponse,
    ProtocolMessage,
    TaskAssignmentMessage,
    UploadReport,
    decode_message,
    encode_message,
)
from repro.middleware.server import ServerConfig
from repro.obs.recorder import (
    InMemoryRecorder,
    Recorder,
    ensure_recorder,
)
from repro.runtime.net import (
    RetryPolicy,
    TcpTransport,
    ThreadedWireServer,
)
from repro.runtime.router import shard_of
from repro.runtime.transport import TransportError, WireEndpoint
from repro.util.rng import RngLike, ensure_rng, spawn_children

__all__ = [
    "ServingError",
    "ServingCluster",
    "ClusterDatabaseView",
    "PlacementRouterTransport",
]

#: Seed base for the workers' own (never drawn in cluster-driven flows)
#: generators — the same constant the single-process router uses, which
#: is part of what makes the two deployments bit-identical.
_SHARD_SEED_BASE = 0x5EED


class ServingError(RuntimeError):
    """A shard worker rejected or failed a control-plane command."""


def _restore_rng(state: Dict[str, Any]) -> np.random.Generator:
    """Rebuild a generator from a journal-portable ``bit_generator`` state."""
    generator = ensure_rng(0)
    generator.bit_generator.state = state
    return generator


# -- the worker process ------------------------------------------------------


class _BackpressureEndpoint:
    """Bounded admission in front of one shard's serve path.

    The shard's actual serving is serialized under ``serve_lock`` (the
    crowd-server and its WAL are single-writer structures); requests
    that have been admitted but not yet served form the shard's inbound
    queue.  Once that queue holds ``max_inflight`` requests, further
    frames are answered immediately with a
    :class:`~repro.middleware.protocol.BusyResponse` carrying
    ``retry_after_s`` — the client backs off and retries instead of the
    shard buffering unboundedly.  ``serving.queue.depth`` gauges the
    queue, ``serving.busy`` counts sheds.
    """

    def __init__(
        self,
        inner: WireEndpoint,
        *,
        max_inflight: int,
        retry_after_s: float,
        recorder: Optional[Recorder] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {retry_after_s}"
            )
        self.inner = inner
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self.recorder = ensure_recorder(recorder)
        #: Serializes actual serving; the worker's control loop takes it
        #: too, so control commands and wire traffic never interleave.
        self.serve_lock = threading.Lock()
        self._gate = threading.Lock()
        self._inflight = 0

    def handle_wire_message(self, text: str) -> Optional[str]:
        with self._gate:
            if self._inflight >= self.max_inflight:
                depth = self._inflight
                self.recorder.count("serving.busy")
                return encode_message(
                    BusyResponse(
                        retry_after_s=self.retry_after_s,
                        queue_depth=depth,
                    )
                )
            self._inflight += 1
            depth = self._inflight
        self.recorder.gauge("serving.queue.depth", depth)
        try:
            with self.serve_lock:
                return self.inner.handle_wire_message(text)
        finally:
            with self._gate:
                self._inflight -= 1


def _worker_dispatch(
    server: DurableCrowdServer,
    recorder: InMemoryRecorder,
    name: str,
    args: Tuple[Any, ...],
) -> Any:
    """Execute one control-plane command inside the worker."""
    if name == "register_segment":
        segment_id, grid = args
        server.register_segment(str(segment_id), grid)
        return None
    if name == "open_rounds":
        ids, rng_states = args
        rngs = [_restore_rng(state) for state in rng_states]
        opened = server.open_rounds(list(ids), rngs=rngs)
        return {
            segment_id: {
                vehicle_id: encode_message(message)
                for vehicle_id, message in assignments.items()
            }
            for segment_id, assignments in opened.items()
        }
    if name == "aggregate_rounds":
        ids, rng_states = args
        rngs = [_restore_rng(state) for state in rng_states]
        aggregated = server.aggregate_rounds(list(ids), rngs=rngs)
        return {
            segment_id: encode_message(response)
            for segment_id, response in aggregated.items()
        }
    if name == "reliability_of":
        (vehicle_id,) = args
        return server.reliability_of(str(vehicle_id))
    if name == "download":
        (segment_id,) = args
        return encode_message(server.download(str(segment_id)))
    if name == "segment_ids":
        return server.database.segment_ids()
    if name == "grids":
        return {
            segment_id: server.segment_grid(segment_id)
            for segment_id in server.database.segment_ids()
        }
    if name == "store_state":
        (segment_id,) = args
        store = server.database.segment(str(segment_id))
        return {
            "reports": [
                encode_message(report) for report in store.reports
            ],
            "download": encode_message(store.snapshot()),
        }
    if name == "export_segment":
        (segment_id,) = args
        return server.export_segment(str(segment_id))
    if name == "install_segment":
        (bundle,) = args
        server.install_segment(bundle)
        return None
    if name == "replay":
        server.replay_recovered()
        return None
    if name == "snapshot_state":
        return server.snapshot_state()
    if name == "write_snapshot":
        server.write_snapshot()
        return None
    if name == "telemetry":
        return {
            "counters": recorder.counters,
            "gauges": recorder.gauges,
            "spans": recorder.spans,
        }
    raise ServingError(f"unknown worker command {name!r}")


def _worker_main(
    durable_dir: str,
    config: ServerConfig,
    seed: int,
    wal_format: Optional[str],
    fsync_every: int,
    snapshot_every: Optional[int],
    max_inflight: int,
    retry_after_s: float,
    conn: Connection,
) -> None:
    """Entry point of one shard worker process.

    Opens (without replaying — the ``replay`` command does that on
    recovery) the shard's durable server, hosts it behind a bounded
    wire listener, reports the bound address through the control pipe
    and then serves control commands until ``stop`` or pipe EOF.  A
    SIGKILL at any point is the crash the WAL exists for.
    """
    recorder = InMemoryRecorder()
    server = DurableCrowdServer(
        durable_dir,
        config,
        rng=seed,
        recorder=recorder,
        fsync_every=fsync_every,
        snapshot_every=snapshot_every,
        wal_format=wal_format,
    )
    endpoint = _BackpressureEndpoint(
        server,
        max_inflight=max_inflight,
        retry_after_s=retry_after_s,
        recorder=recorder,
    )
    wire = ThreadedWireServer(endpoint, recorder=recorder)
    try:
        host, port = wire.start()
        conn.send(("ready", [host, port]))
        while True:
            try:
                command = conn.recv()
            except EOFError:  # crowdlint: disable=CW005
                break  # control plane closed the pipe: orderly shutdown
            name = str(command[0])
            args = tuple(command[1:])
            if name == "stop":
                conn.send(("ok", None))
                break
            try:
                with endpoint.serve_lock:
                    result = _worker_dispatch(server, recorder, name, args)
            except Exception as error:  # crowdlint: disable=CW005
                # Not swallowed: the error crosses the control pipe and
                # re-raises as ServingError on the control-plane side.
                conn.send(("err", f"{type(error).__name__}: {error}"))
            else:
                conn.send(("ok", result))
    finally:
        wire.stop()
        server.close()
        conn.close()


class _ShardHandle:
    """The parent-side handle of one shard worker: process + pipe + port."""

    def __init__(
        self,
        index: int,
        durable_dir: Path,
        config: ServerConfig,
        *,
        wal_format: Optional[str],
        fsync_every: int,
        snapshot_every: Optional[int],
        max_inflight: int,
        retry_after_s: float,
        context: BaseContext,
    ) -> None:
        self.index = index
        self.durable_dir = durable_dir
        self.config = config
        self.wal_format = wal_format
        self.fsync_every = fsync_every
        self.snapshot_every = snapshot_every
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self.context = context
        self.address: Tuple[str, int] = ("", 0)
        self.process: Optional[Any] = None
        self.conn: Optional[Connection] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and bool(self.process.is_alive())

    def spawn(self) -> None:
        """Start (or restart) the worker and wait for its bound address."""
        if self.alive:
            raise RuntimeError(f"shard {self.index} is already running")
        parent_conn, child_conn = self.context.Pipe()
        process = self.context.Process(
            target=_worker_main,
            args=(
                str(self.durable_dir),
                self.config,
                _SHARD_SEED_BASE + self.index,
                self.wal_format,
                self.fsync_every,
                self.snapshot_every,
                self.max_inflight,
                self.retry_after_s,
                child_conn,
            ),
            name=f"crowdwifi-shard-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        tag, payload = self.receive_raw()
        if tag != "ready":
            raise ServingError(
                f"shard {self.index} failed to start: {payload}"
            )
        self.address = (str(payload[0]), int(payload[1]))

    def send(self, name: str, *args: Any) -> None:
        if self.conn is None:
            raise ServingError(f"shard {self.index} is not running")
        try:
            self.conn.send((name,) + args)
        except (BrokenPipeError, OSError) as error:
            raise ServingError(
                f"shard {self.index} control pipe is down: {error}"
            ) from error

    def receive_raw(self) -> Tuple[str, Any]:
        if self.conn is None:
            raise ServingError(f"shard {self.index} is not running")
        try:
            tag, payload = self.conn.recv()
        except (EOFError, OSError) as error:
            raise ServingError(
                f"shard {self.index} died mid-command: {error}"
            ) from error
        return str(tag), payload

    def receive(self) -> Any:
        tag, payload = self.receive_raw()
        if tag == "err":
            raise ServingError(f"shard {self.index}: {payload}")
        return payload

    def call(self, name: str, *args: Any) -> Any:
        self.send(name, *args)
        return self.receive()

    def kill(self) -> None:
        """SIGKILL the worker — process death, nothing flushed."""
        if self.process is not None:
            self.process.kill()
            self.process.join(timeout=30)
            self.process = None
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def stop(self) -> None:
        """Orderly shutdown: flush-and-close command, then join."""
        if self.process is None:
            return
        if self.alive and self.conn is not None:
            try:
                self.call("stop")
            except ServingError:  # crowdlint: disable=CW005
                pass  # already dying; the join below still reaps it
        self.process.join(timeout=30)
        self.process = None
        if self.conn is not None:
            self.conn.close()
            self.conn = None


# -- the cluster control plane -----------------------------------------------


class ClusterDatabaseView:
    """Read-only merged database view over a cluster's shard workers.

    Mirrors :class:`~repro.runtime.router.ShardedDatabase` (and through
    it the :class:`~repro.middleware.database.ApDatabase` query API) so
    lookup services and campaign outcomes work unchanged on a
    multi-process deployment.  Each ``segment`` call fetches the store's
    current state over the owning worker's control pipe; after the
    cluster closes, reads come from the final snapshot it took at
    shutdown, so outcomes stay readable.
    """

    def __init__(self, cluster: "ServingCluster") -> None:
        self.cluster = cluster

    def segment(self, segment_id: str) -> SegmentStore:
        return self.cluster.segment_store(segment_id)

    def has_segment(self, segment_id: str) -> bool:
        return self.cluster.has_segment(segment_id)

    def segment_ids(self) -> List[str]:
        return self.cluster.segment_ids()

    def all_fused_locations(self) -> List[Point]:
        out: List[Point] = []
        for segment_id in self.segment_ids():
            out.extend(
                record.to_point()
                for record in self.segment(segment_id).fused_aps
            )
        return out

    def __len__(self) -> int:
        return len(self.segment_ids())


class ServingCluster:
    """``n_shards`` crowd-server worker processes behind one control plane.

    Speaks the same campaign-facing API as :class:`ServerRouter` /
    a single :class:`~repro.middleware.server.CrowdServer`
    (registration, batched rounds, reliability reads, download, a merged
    database view) and is bit-identical to both for any shard count.
    The differences are operational: every shard is its own process with
    its own WAL lane and TCP listener, rounds fan out over the control
    pipes and run genuinely in parallel, shards can be crashed and
    recovered individually, and segments can be handed between shards
    live (docs/SERVING.md).

    The cluster always journals (``durable_dir`` is required): its own
    small router log holds the placement epoch, the routing tables and
    the random stream; each worker's WAL holds that shard's state.
    ``wal_format="block"`` puts the workers on the block WAL, whose
    per-lane device barriers actually overlap across processes — the
    jsonl WAL's journal commits serialize cluster-wide (see
    ``BENCH_serving.json`` for both curves).
    """

    def __init__(
        self,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        n_shards: int = 1,
        rng: RngLike = None,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
        wal_format: Optional[str] = None,
        max_inflight: int = 64,
        retry_after_s: float = 0.05,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.config = config if config is not None else ServerConfig()
        self.recorder = ensure_recorder(recorder)
        self._rng = ensure_rng(rng)
        self.epoch = 0
        #: Bumped on every handoff *and* worker restart; client
        #: transports re-resolve placement and ports when it moves.
        self.topology_version = 0
        self._closed = False
        base = Path(durable_dir)
        context = multiprocessing.get_context("fork")
        self._shards: Tuple[_ShardHandle, ...] = tuple(
            _ShardHandle(
                index,
                base / f"shard-{index}",
                self.config,
                wal_format=wal_format,
                fsync_every=fsync_every,
                snapshot_every=snapshot_every,
                max_inflight=max_inflight,
                retry_after_s=retry_after_s,
                context=context,
            )
            for index in range(n_shards)
        )
        for handle in self._shards:
            handle.spawn()
        self._journal = DurableLog(
            base / "router", fsync_every=fsync_every, recorder=self.recorder
        )
        if self._journal.is_fresh:
            self._journal.append("cluster_meta", {"n_shards": n_shards})
            self._journal.append(
                "rng_state", {"state": self._rng.bit_generator.state}
            )
        self._placement: Dict[str, int] = {}
        self._grids: Dict[str, Grid] = {}
        self._participants: Dict[str, List[str]] = {}
        self._open_order: Dict[str, List[str]] = {}
        self._reliability_shard: Dict[str, int] = {}
        #: Store snapshots taken at :meth:`close`, keeping the database
        #: view readable after the workers are gone.
        self._final_stores: Dict[str, SegmentStore] = {}

    # -- topology ----------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def database(self) -> ClusterDatabaseView:
        """Merged read-only view over the workers' stores (live)."""
        return ClusterDatabaseView(self)

    def shard_address(self, index: int) -> Tuple[str, int]:
        """The ``(host, port)`` a shard's wire listener is bound to."""
        return self._shards[index].address

    def shard_index_of(self, segment_id: str) -> int:
        """The shard currently holding a segment (KeyError if unknown)."""
        if segment_id not in self._placement:
            raise KeyError(f"segment {segment_id!r} is not registered")
        return self._placement[segment_id]

    def shard_of_vehicle(self, vehicle_id: str) -> int:
        """The shard holding a vehicle's oldest globally-open round.

        Routes v1-style label submissions that carry no segment id;
        raises ``KeyError`` when no round awaits the vehicle.
        """
        open_segments = self._open_order.get(vehicle_id)
        if not open_segments:
            raise KeyError(
                f"no open round awaits vehicle {vehicle_id!r}"
            )
        return self.shard_index_of(open_segments[0])

    def has_segment(self, segment_id: str) -> bool:
        return segment_id in self._placement

    def segment_ids(self) -> List[str]:
        return sorted(self._placement)

    def segment_store(self, segment_id: str) -> SegmentStore:
        """A point-in-time copy of a segment's store (KeyError if unknown)."""
        if self._closed:
            if segment_id not in self._final_stores:
                raise KeyError(f"unknown segment {segment_id!r}")
            return self._final_stores[segment_id]
        index = self.shard_index_of(segment_id)
        return _store_from_payload(
            segment_id, self._shards[index].call("store_state", segment_id)
        )

    # -- registration & reads ----------------------------------------------

    def register_segment(self, segment_id: str, grid: Grid) -> None:
        """Declare a segment; it starts on its hash-determined shard."""
        index = shard_of(segment_id, self.n_shards)
        self._shards[index].call("register_segment", segment_id, grid)
        self._placement[segment_id] = index
        self._grids[segment_id] = grid

    def segment_grid(self, segment_id: str) -> Grid:
        """The registered pattern grid of a segment (KeyError if unknown)."""
        if segment_id not in self._grids:
            raise KeyError(f"segment {segment_id!r} is not registered")
        return self._grids[segment_id]

    def reliability_of(self, vehicle_id: str) -> float:
        """Current reliability belief for a vehicle.

        Answered by the shard that aggregated the vehicle's globally
        last round — reliabilities deliberately do not move on segment
        handoff, so the routing table here is the source of truth.
        """
        if vehicle_id in self._reliability_shard:
            index = self._reliability_shard[vehicle_id]
            return float(
                self._shards[index].call("reliability_of", vehicle_id)
            )
        return self.config.default_reliability

    def download(self, segment_id: str) -> DownloadResponse:
        """Serve the current fused map of a segment."""
        return self.segment_store(segment_id).snapshot()

    # -- rounds ------------------------------------------------------------

    def _partition(
        self, ids: Sequence[str]
    ) -> Tuple[Dict[int, List[str]], Dict[int, List[Dict[str, Any]]]]:
        """Spawn per-segment children in global order, bucket by shard.

        Ships generator *states* (journal-portable dicts), not generator
        objects — the workers rebuild them, so the draws land in the
        worker processes exactly as a single server would make them.
        """
        children = spawn_children(self._rng, len(ids))
        ids_by_shard: Dict[int, List[str]] = {}
        states_by_shard: Dict[int, List[Dict[str, Any]]] = {}
        for segment_id, child in zip(ids, children):
            index = self.shard_index_of(segment_id)
            ids_by_shard.setdefault(index, []).append(segment_id)
            states_by_shard.setdefault(index, []).append(
                child.bit_generator.state
            )
        return ids_by_shard, states_by_shard

    def open_rounds(
        self,
        segment_ids: Sequence[str],
        *,
        n_workers: Optional[int] = None,
    ) -> Dict[str, Dict[str, TaskAssignmentMessage]]:
        """Open a round per segment across the worker processes.

        The commands are sent to every involved worker *before* any
        reply is awaited, so the shards plan their rounds concurrently.
        ``n_workers`` is accepted for endpoint-API compatibility; the
        parallelism here is the worker processes themselves.
        """
        del n_workers
        ids = list(segment_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate segment ids in batch: {ids}")
        ids_by_shard, states_by_shard = self._partition(ids)
        merged: Dict[str, Dict[str, TaskAssignmentMessage]] = {}
        with self.recorder.span("serving.open_rounds"):
            for index in sorted(ids_by_shard):
                self._shards[index].send(
                    "open_rounds", ids_by_shard[index], states_by_shard[index]
                )
            for index in sorted(ids_by_shard):
                for segment_id, frames in self._shards[index].receive().items():
                    merged[segment_id] = {
                        vehicle_id: _expect_message(
                            decode_message(frame), TaskAssignmentMessage
                        )
                        for vehicle_id, frame in frames.items()
                    }
        participants = {
            segment_id: list(merged[segment_id]) for segment_id in ids
        }
        self._note_rounds_opened(ids, participants)
        self._journal.append(
            "rounds_opened",
            {
                "segments": ids,
                "participants": participants,
                "rng": self._rng.bit_generator.state,
            },
        )
        return {segment_id: merged[segment_id] for segment_id in ids}

    def aggregate_rounds(
        self,
        segment_ids: Sequence[str],
        *,
        n_workers: Optional[int] = None,
    ) -> Dict[str, DownloadResponse]:
        """Aggregate each completed round across the worker processes."""
        del n_workers
        ids = list(segment_ids)
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate segment ids in batch: {ids}")
        ids_by_shard, states_by_shard = self._partition(ids)
        shard_by_segment = {
            segment_id: self._placement[segment_id] for segment_id in ids
        }
        merged: Dict[str, DownloadResponse] = {}
        with self.recorder.span("serving.aggregate_rounds"):
            for index in sorted(ids_by_shard):
                self._shards[index].send(
                    "aggregate_rounds",
                    ids_by_shard[index],
                    states_by_shard[index],
                )
            for index in sorted(ids_by_shard):
                for segment_id, frame in self._shards[index].receive().items():
                    merged[segment_id] = _expect_message(
                        decode_message(frame), DownloadResponse
                    )
        self._note_rounds_aggregated(ids, shard_by_segment)
        self._journal.append(
            "rounds_aggregated",
            {
                "segments": ids,
                "shards": shard_by_segment,
                "rng": self._rng.bit_generator.state,
            },
        )
        return {segment_id: merged[segment_id] for segment_id in ids}

    def _note_rounds_opened(
        self,
        ids: Sequence[str],
        participants_by_segment: Dict[str, List[str]],
    ) -> None:
        for segment_id in ids:
            participants = participants_by_segment[segment_id]
            self._participants[segment_id] = list(participants)
            for vehicle_id in participants:
                open_segments = self._open_order.setdefault(vehicle_id, [])
                if segment_id not in open_segments:
                    open_segments.append(segment_id)

    def _note_rounds_aggregated(
        self, ids: Sequence[str], shard_by_segment: Dict[str, int]
    ) -> None:
        """Replay the reliability routing merge in global segment order.

        ``shard_by_segment`` is the placement *at aggregation time*
        (journaled with the record): a later handoff must not retroactively
        repoint reliability reads, because the beliefs stay behind.
        """
        for segment_id in ids:
            index = shard_by_segment[segment_id]
            for vehicle_id in self._participants.pop(segment_id, []):
                self._reliability_shard[vehicle_id] = index
                open_segments = self._open_order.get(vehicle_id)
                if open_segments is not None and segment_id in open_segments:
                    open_segments.remove(segment_id)
                    if not open_segments:
                        del self._open_order[vehicle_id]

    # -- elasticity --------------------------------------------------------

    def handoff_segment(self, segment_id: str, to_shard: int) -> None:
        """Move a segment (store, grid, any open round) to another shard.

        Export on the source, install on the target, bump the placement
        epoch, journal the move.  Both workers journal their halves too,
        so a crash between the two steps recovers consistently: the
        source has let go (``segment_exported`` is in its WAL) and the
        placement is re-derived from which worker actually holds the
        segment.  Vehicle reliabilities stay on their aggregating shard.
        """
        if not 0 <= to_shard < self.n_shards:
            raise ValueError(
                f"to_shard must be in [0, {self.n_shards}), got {to_shard}"
            )
        source = self.shard_index_of(segment_id)
        if source == to_shard:
            return
        with self.recorder.span("serving.handoff"):
            bundle = self._shards[source].call("export_segment", segment_id)
            self._shards[to_shard].call("install_segment", bundle)
        self._placement[segment_id] = to_shard
        self.epoch += 1
        self.topology_version += 1
        self._journal.append(
            "placement",
            {
                "segment_id": segment_id,
                "shard": to_shard,
                "epoch": self.epoch,
            },
        )
        self.recorder.count("serving.handoffs")
        self.recorder.gauge("serving.epoch", self.epoch)

    def crash_shard(self, index: int) -> None:
        """SIGKILL one shard worker — unflushed WAL records die with it."""
        self._shards[index].kill()
        self.topology_version += 1
        self.recorder.count("serving.shards.crashed")

    def restart_shard(self, index: int) -> None:
        """Respawn a crashed shard and replay its WAL.

        The worker re-reads its durable directory (whatever format it
        holds), replays snapshot + log, and comes back on a fresh port —
        placement is unchanged, ``topology_version`` bumps so client
        transports re-resolve, and recovered open rounds are pending
        again so vehicles re-pull their tasks.
        """
        handle = self._shards[index]
        if handle.alive:
            raise RuntimeError(f"shard {index} is still running")
        with self.recorder.span("serving.recover"):
            handle.spawn()
            handle.call("replay")
        self.topology_version += 1
        self.recorder.count("serving.shards.restarted")

    # -- telemetry ---------------------------------------------------------

    def telemetry_report(self) -> Dict[str, Any]:
        """Per-shard health: queue depth, busy sheds, WAL and wire counters.

        Fetched live from each worker's recorder over the control pipe;
        the cluster-level entry adds placement and lifecycle state.
        """
        shards: Dict[str, Any] = {}
        for handle in self._shards:
            if handle.alive:
                report = handle.call("telemetry")
                report["address"] = list(handle.address)
                report["alive"] = True
            else:
                report = {"alive": False}
            shards[f"shard-{handle.index}"] = report
        return {
            "cluster": {
                "n_shards": self.n_shards,
                "epoch": self.epoch,
                "topology_version": self.topology_version,
                "segments": len(self._placement),
                "counters": _recorder_counters(self.recorder),
            },
            "shards": shards,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Snapshot the stores for post-close reads, stop every worker."""
        if self._closed:
            return
        for segment_id in self.segment_ids():
            index = self.shard_index_of(segment_id)
            if self._shards[index].alive:
                self._final_stores[segment_id] = _store_from_payload(
                    segment_id,
                    self._shards[index].call("store_state", segment_id),
                )
        for handle in self._shards:
            handle.stop()
        self._journal.close()
        self._closed = True

    def crash(self) -> None:
        """Test hook: every worker dies unflushed, the journal too."""
        for handle in self._shards:
            handle.kill()
        self._journal.crash()
        self._closed = True

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- recovery ----------------------------------------------------------

    def _apply_record(self, record: Dict[str, Any]) -> None:
        kind = record["kind"]
        data = record["data"]
        if kind == "cluster_meta":
            if int(data["n_shards"]) != self.n_shards:
                raise DurableLogError(
                    f"log was written by a {data['n_shards']}-shard "
                    f"cluster; this one has {self.n_shards} shards"
                )
        elif kind == "rng_state":
            self._rng.bit_generator.state = data["state"]
        elif kind == "placement":
            # Placement itself is re-derived from which worker holds the
            # segment (authoritative even for a crash mid-handoff); the
            # record restores the epoch counter.
            self.epoch = max(self.epoch, int(data["epoch"]))
        elif kind == "rounds_opened":
            self._note_rounds_opened(data["segments"], data["participants"])
            self._rng.bit_generator.state = data["rng"]
        elif kind == "rounds_aggregated":
            self._note_rounds_aggregated(
                data["segments"],
                {
                    segment_id: int(index)
                    for segment_id, index in data["shards"].items()
                },
            )
            self._rng.bit_generator.state = data["rng"]
        else:
            raise DurableLogError(
                f"unknown cluster record kind {kind!r}"
            )

    def replay_recovered(self) -> None:
        """Replay every worker's WAL, then the cluster's own journal."""
        with self.recorder.span("serving.recover"), self._journal.suspended():
            for handle in self._shards:
                handle.call("replay")
                for segment_id in handle.call("segment_ids"):
                    self._placement[segment_id] = handle.index
                self._grids.update(handle.call("grids"))
            for record in self._journal.recovered_records:
                self._apply_record(record)
                self.recorder.count("durable.records.replayed")
        self.recorder.gauge("serving.epoch", self.epoch)

    @classmethod
    def recover(
        cls,
        durable_dir: Union[str, Path],
        config: Optional[ServerConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
        fsync_every: int = 1,
        snapshot_every: Optional[int] = None,
        max_inflight: int = 64,
        retry_after_s: float = 0.05,
    ) -> "ServingCluster":
        """Reconstruct a cluster bit-identically from its durable tree.

        Shard count comes from the journal, each worker's WAL format
        from its own directory, placement from which worker holds which
        segment, and the routing tables and random stream from the
        cluster journal — the next round draws exactly what the dead
        deployment would have drawn.
        """
        base = Path(durable_dir)
        _, records = DurableLog.read(base / "router")
        n_shards: Optional[int] = None
        for record in records:
            if record["kind"] == "cluster_meta":
                n_shards = int(record["data"]["n_shards"])
                break
        if n_shards is None:
            raise DurableLogError(
                f"no cluster_meta record under {base / 'router'}; "
                "nothing to recover"
            )
        cluster = cls(
            durable_dir,
            config,
            n_shards=n_shards,
            recorder=recorder,
            fsync_every=fsync_every,
            snapshot_every=snapshot_every,
            max_inflight=max_inflight,
            retry_after_s=retry_after_s,
        )
        cluster.replay_recovered()
        return cluster


def _expect_message(message: ProtocolMessage, cls: type) -> Any:
    if not isinstance(message, cls):
        raise ServingError(
            f"worker returned {type(message).__name__}, "
            f"expected {cls.__name__}"
        )
    return message


def _store_from_payload(
    segment_id: str, payload: Dict[str, Any]
) -> SegmentStore:
    """Rebuild a point-in-time segment store from a worker's wire frames."""
    reports: List[UploadReport] = [
        _expect_message(decode_message(frame), UploadReport)
        for frame in payload["reports"]
    ]
    snapshot: DownloadResponse = _expect_message(
        decode_message(payload["download"]), DownloadResponse
    )
    return SegmentStore(
        segment_id=segment_id,
        reports=reports,
        fused_aps=list(snapshot.aps),
        generation=snapshot.generation,
    )


def _recorder_counters(recorder: Recorder) -> Dict[str, float]:
    """The counter table when the recorder keeps one (else empty)."""
    if isinstance(recorder, InMemoryRecorder):
        return recorder.counters
    return {}


# -- the client side ---------------------------------------------------------


class PlacementRouterTransport:
    """Segment-aware client transport over per-shard TCP connections.

    Satisfies the :class:`~repro.runtime.transport.Transport` protocol:
    each frame is routed to the shard currently owning its segment (or,
    for segment-less label submissions, the shard holding the vehicle's
    oldest open round) and exchanged over a persistent per-shard
    :class:`~repro.runtime.net.TcpTransport`.

    Staleness handling — the two ways a cached view goes bad:

    * **Topology moved** (handoff or worker restart): the cluster bumps
      ``topology_version``; the transport notices before every request
      and drops its cached connections, re-resolving ports lazily.
    * **Race with a handoff**: a frame routed before the bump can land
      on a shard that just exported the segment and answers "not
      registered".  The transport refreshes and retries **once** on the
      new owner (``serving.reroutes`` counts these).

    Busy replies are *not* handled here — wrap this transport in
    :class:`~repro.runtime.net.RetryingTransport`, which converts them
    to delayed retries per the backpressure contract.  Not thread-safe;
    give each client thread its own instance.
    """

    def __init__(
        self,
        cluster: ServingCluster,
        *,
        timeout_s: float = 10.0,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.cluster = cluster
        self.timeout_s = timeout_s
        self.policy = policy
        self._sleep = sleep
        self.recorder = ensure_recorder(recorder)
        self._version = -1
        self._transports: Dict[int, TcpTransport] = {}

    # -- topology cache ---------------------------------------------------

    def _refresh(self, *, force: bool = False) -> None:
        if not force and self._version == self.cluster.topology_version:
            return
        self.close()
        self._version = self.cluster.topology_version

    def _transport_for(self, index: int) -> TcpTransport:
        transport = self._transports.get(index)
        if transport is None:
            host, port = self.cluster.shard_address(index)
            transport = TcpTransport(
                host,
                port,
                timeout_s=self.timeout_s,
                policy=self.policy,
                sleep=self._sleep,
                recorder=self.recorder,
            )
            self._transports[index] = transport
        return transport

    def close(self) -> None:
        """Drop every cached shard connection (reopened on next use)."""
        for transport in self._transports.values():
            transport.close()
        self._transports.clear()

    def __enter__(self) -> "PlacementRouterTransport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- routing ----------------------------------------------------------

    def _route(self, text: str) -> int:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"unroutable frame: {error}") from error
        body = payload.get("body") if isinstance(payload, dict) else None
        if not isinstance(body, dict):
            raise KeyError("frame has no body to route by")
        segment_id = str(body.get("segment_id") or "")
        if segment_id:
            return self.cluster.shard_index_of(segment_id)
        return self.cluster.shard_of_vehicle(
            str(body.get("vehicle_id") or "")
        )

    def request(self, text: str) -> Optional[str]:
        self._refresh()
        try:
            index = self._route(text)
        except (KeyError, ValueError) as error:
            return encode_message(ErrorResponse(reason=str(error)))
        try:
            reply = self._transport_for(index).request(text)
        except TransportError:
            # The port may have moved (worker restart): forget the
            # cached topology so the retry wrapper's next attempt
            # re-resolves before reconnecting.
            self._refresh(force=True)
            raise
        if (
            reply is not None
            and '"type": "error' in reply
            and (
                "is not registered" in reply
                or "unregistered segment" in reply
            )
        ):
            # Lost a race with a handoff: the old owner no longer holds
            # the segment.  Re-resolve and retry once on the new owner.
            self._refresh(force=True)
            try:
                rerouted = self._route(text)
            except (KeyError, ValueError):
                return reply
            if rerouted != index:
                self.recorder.count("serving.reroutes")
                return self._transport_for(rerouted).request(text)
        return reply
