"""The client↔server transport seam.

A :class:`Transport` carries one encoded protocol frame (a
``repro.middleware.protocol`` JSON string) from a client to a server
endpoint and returns the encoded reply, or ``None`` for silently
acknowledged one-way messages.  Everything above this seam — the
campaign scheduler, the vehicle clients — is transport-agnostic: swap
:class:`InProcessTransport` for a socket- or queue-backed implementation
and nothing else changes, because no object crosses the seam without
passing through ``encode_message``/``decode_message``.

:class:`CountingTransport` wraps any transport with per-message-type
frame counters; tests use it to *prove* that every exchange of a
campaign went over the wire rather than through a direct method call.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Protocol

__all__ = [
    "WireEndpoint",
    "Transport",
    "TransportError",
    "TransportTimeout",
    "TransportBusy",
    "InProcessTransport",
    "CountingTransport",
]


class TransportError(RuntimeError):
    """A frame could not be exchanged (connection lost, dropped, refused).

    Raised by fallible transports (sockets, fault injectors).  Retry
    wrappers treat it as retryable; anything else propagating out of
    ``request`` is a programming error, not a network condition.
    """


class TransportTimeout(TransportError):
    """No reply arrived within the transport's per-request timeout."""


class TransportBusy(TransportError):
    """The server shed this request with a wire-level ``busy`` reply.

    Raised when a reply frame decodes to a
    :class:`~repro.middleware.protocol.BusyResponse` — the serving
    tier's explicit backpressure signal (docs/SERVING.md).  Retryable
    like any :class:`TransportError`, but carries the server's requested
    ``retry_after_s``, which :class:`~repro.runtime.net.RetryingTransport`
    honors in place of its own backoff when it is longer.
    """

    def __init__(self, retry_after_s: float, queue_depth: int = 0) -> None:
        super().__init__(
            f"server busy (queue depth {queue_depth}); "
            f"retry after {retry_after_s}s"
        )
        self.retry_after_s = retry_after_s
        self.queue_depth = queue_depth


class WireEndpoint(Protocol):
    """Anything that can serve one encoded protocol frame."""

    def handle_wire_message(self, text: str) -> Optional[str]:
        """Serve one encoded request; return the encoded reply or ``None``."""
        ...


class Transport(Protocol):
    """One request/reply exchange of encoded protocol frames."""

    def request(self, text: str) -> Optional[str]:
        """Deliver an encoded frame; return the encoded reply or ``None``."""
        ...


class InProcessTransport:
    """The zero-distance transport: hand the frame straight to the endpoint.

    The frames still cross the codec on both sides (the endpoint decodes
    the request and encodes its reply), so the messages exchanged are
    exactly what a socket transport would put on the network — this is
    the reference implementation every future transport must match.
    """

    def __init__(self, endpoint: WireEndpoint) -> None:
        self.endpoint = endpoint

    def request(self, text: str) -> Optional[str]:
        return self.endpoint.handle_wire_message(text)


class CountingTransport:
    """A transparent wrapper that tallies the frames crossing the seam.

    ``requests_by_type`` / ``replies_by_type`` count frames by their
    envelope ``type`` tag; ``requests`` is the total.  Exchanges that
    *fail* are tallied too — ``errors_by_type`` counts every raised
    exception and ``timeouts_by_type`` the :class:`TransportTimeout`
    subset, both keyed by the request's type tag — so retry tests can
    assert exact frame budgets (attempts = successes + errors), not just
    the successful deliveries.  The payloads and exceptions are forwarded
    unchanged, so wrapping a transport never alters behaviour.
    """

    def __init__(self, inner: Transport) -> None:
        self.inner = inner
        self.requests = 0
        self.requests_by_type: Dict[str, int] = {}
        self.replies_by_type: Dict[str, int] = {}
        self.errors_by_type: Dict[str, int] = {}
        self.timeouts_by_type: Dict[str, int] = {}

    @staticmethod
    def _type_tag(text: str) -> str:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return "<malformed>"
        if isinstance(payload, dict) and isinstance(payload.get("type"), str):
            return str(payload["type"])
        return "<untagged>"

    def request(self, text: str) -> Optional[str]:
        self.requests += 1
        tag = self._type_tag(text)
        self.requests_by_type[tag] = self.requests_by_type.get(tag, 0) + 1
        try:
            reply = self.inner.request(text)
        except Exception as error:
            self.errors_by_type[tag] = self.errors_by_type.get(tag, 0) + 1
            if isinstance(error, TransportTimeout):
                self.timeouts_by_type[tag] = (
                    self.timeouts_by_type.get(tag, 0) + 1
                )
            raise
        if reply is not None:
            reply_tag = self._type_tag(reply)
            self.replies_by_type[reply_tag] = (
                self.replies_by_type.get(reply_tag, 0) + 1
            )
        return reply
