"""Vehicular network simulator — the NCTUns v5.0 substitute.

A :class:`World` holds a set of :class:`AccessPoint` transmitters and a
channel model; an :class:`RssCollector` drives a vehicle through the world
and records one RSS reading per sampling instant, exactly the drive-by
measurement process the paper's online CS stage consumes.  Scenario
builders reconstruct the paper's three environments (UCI campus
simulation, UCI Open-Mesh testbed, random deployments for the Fig. 8
sweeps).
"""

from repro.sim.world import AccessPoint, World
from repro.sim.collector import CollectorConfig, RssCollector
from repro.sim.scenarios import (
    Scenario,
    random_deployment,
    testbed_campus,
    uci_campus,
)

__all__ = [
    "AccessPoint",
    "World",
    "RssCollector",
    "CollectorConfig",
    "Scenario",
    "uci_campus",
    "testbed_campus",
    "random_deployment",
]
