"""Drive-by RSS collection.

An :class:`RssCollector` follows a vehicle through the world and records
one RSS reading per sampling instant — the vehicle "can receive only one
RSS measurement at a time" (§4.2.2).  Which audible AP the reading comes
from is drawn with probability proportional to received signal strength
(stronger beacons are overwhelmingly more likely to be decoded first),
which realises the paper's myopic observation model.

Collection runs through a batched fast path: all fix positions of a
drive (or a chunk of one) are propagated in a single
:meth:`~repro.sim.world.World.rss_matrix` pass, and only the per-tick
random draws remain scalar.  The draw *order* is exactly that of the
scalar :meth:`RssCollector.measure_at` path, so for the same seed the
fast path produces bit-identical traces — the equivalence tests pin this
down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.geo.points import Point
from repro.mobility.models import DriveSample, PathFollower, drive_schedule
from repro.radio.rss import DEFAULT_TTL_S, RssMeasurement, RssTrace
from repro.radio.shadowing import CorrelatedShadowingField
from repro.sim.world import World
from repro.util.rng import RngLike, ensure_rng

__all__ = ["CollectorConfig", "RssCollector"]

#: Ticks propagated per ``rss_matrix`` pass in the sample-counted mode.
#: Bounds peak memory at ``_CHUNK_TICKS × n_aps`` floats while keeping the
#: per-chunk numpy overhead negligible.
_CHUNK_TICKS = 512


@dataclass(frozen=True)
class CollectorConfig:
    """Sampling parameters of the on-board RSS collector.

    Parameters
    ----------
    sample_period_s:
        Seconds between consecutive RSS readings.
    communication_radius_m:
        The collector's own radio reach ``r_m`` — used both to filter
        audible APs and to pad the online grid (§4.3.1).
    ttl_s:
        Time-to-live stamped onto each measurement (§4.3.2).
    selection_temperature_db:
        Softmax temperature (in dB) for choosing which audible AP a
        reading comes from.  Small values approach "always the strongest";
        large values approach uniform choice.
    """

    sample_period_s: float = 1.0
    communication_radius_m: float = 100.0
    ttl_s: float = DEFAULT_TTL_S
    selection_temperature_db: float = 4.0
    #: GPS fix noise: the *recorded* reference point is the true position
    #: plus isotropic Gaussian noise of this σ (the RSS itself is still
    #: measured at the true position).  0 disables.
    gps_sigma_m: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError(
                f"sample_period_s must be > 0, got {self.sample_period_s}"
            )
        if self.communication_radius_m <= 0:
            raise ValueError(
                f"communication_radius_m must be > 0, got {self.communication_radius_m}"
            )
        if self.ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {self.ttl_s}")
        if self.selection_temperature_db <= 0:
            raise ValueError(
                f"selection_temperature_db must be > 0, "
                f"got {self.selection_temperature_db}"
            )
        if self.gps_sigma_m < 0:
            raise ValueError(
                f"gps_sigma_m must be >= 0, got {self.gps_sigma_m}"
            )


class RssCollector:
    """Collects drive-by RSS measurements from a world."""

    def __init__(
        self,
        world: World,
        config: Optional[CollectorConfig] = None,
        *,
        fading_fields: Optional[Dict[str, CorrelatedShadowingField]] = None,
        rng: RngLike = None,
    ) -> None:
        """``fading_fields`` optionally maps AP ids to
        :class:`repro.radio.shadowing.CorrelatedShadowingField` instances;
        when present, those fields replace the channel's i.i.d. shadowing
        for the corresponding APs (spatially correlated fades do not
        average out over a drive — the robustness benchmarks use this)."""
        self.world = world
        self.config = config if config is not None else CollectorConfig()
        self.fading_fields: Dict[str, CorrelatedShadowingField] = (
            dict(fading_fields) if fading_fields else {}
        )
        self._rng = ensure_rng(rng)

    def measure_at(self, position: Point, time: float) -> Optional[RssMeasurement]:
        """Take one reading at ``position``; ``None`` when no AP is audible.

        An AP is audible when the point lies inside both the AP's
        transmission radius and the collector's own communication radius.
        This is the scalar reference path; the drive helpers below batch
        the propagation but keep the identical per-tick draw order.
        """
        audible = [
            ap
            for ap in self.world.audible_aps(position)
            if ap.position.distance_to(position) <= self.config.communication_radius_m
        ]
        if not audible:
            return None
        mean_rss = np.array(
            [self.world.mean_rss_from(ap.ap_id, position) for ap in audible]
        )
        chosen_index = self._choose_audible(mean_rss)
        chosen = audible[chosen_index]
        if chosen.ap_id in self.fading_fields:
            fade = self.fading_fields[chosen.ap_id].sample(position)
            rss = self.world.mean_rss_from(chosen.ap_id, position) - fade
        else:
            rss = self.world.sample_rss_from(
                chosen.ap_id, position, rng=self._rng
            )
        return RssMeasurement(
            rss_dbm=rss,
            position=self._recorded_position(position),
            timestamp=float(time),
            ttl=self.config.ttl_s,
            source_ap=chosen.ap_id,
        )

    # -- batched fast path -------------------------------------------------

    def _choose_audible(self, mean_rss: NDArray[np.float64]) -> int:
        """Draw which audible AP this instant's reading comes from.

        Softmax over expected signal strength: the strongest beacon is the
        most likely to be the one decoded this instant.
        """
        logits = (mean_rss - mean_rss.max()) / self.config.selection_temperature_db
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        return int(self._rng.choice(len(mean_rss), p=probabilities))

    def _recorded_position(self, position: Point) -> Point:
        """The GPS fix written into the measurement (true position + noise)."""
        if self.config.gps_sigma_m <= 0:
            return position
        return position.translated(
            float(self._rng.normal(0.0, self.config.gps_sigma_m)),
            float(self._rng.normal(0.0, self.config.gps_sigma_m)),
        )

    def _measure_fixes(
        self,
        fixes: Sequence[DriveSample],
        trace: RssTrace,
        *,
        stop_at: Optional[int] = None,
    ) -> None:
        """Measure a batch of fixes into ``trace`` (the vectorized path).

        One ``rss_matrix`` pass computes every fix's distances, mean RSS,
        and audibility; the loop below then replays exactly the scalar
        path's per-tick RNG draws (AP choice, shadowing, GPS noise), so
        the appended measurements are bit-identical to calling
        :meth:`measure_at` fix by fix.  ``stop_at`` bounds the total trace
        length: once reached, the remaining fixes consume no RNG draws —
        matching the scalar walk, which stops mid-drive.
        """
        if not fixes:
            return
        field = self.world.rss_matrix(
            [fix.position for fix in fixes],
            max_distance_m=self.config.communication_radius_m,
        )
        sigma = self.world.channel.shadowing_sigma_db
        aps = self.world.access_points
        for row, fix in enumerate(fixes):
            if stop_at is not None and len(trace) >= stop_at:
                return
            audible_columns = field.audible_indices(row)
            if audible_columns.size == 0:
                continue
            mean_rss = field.mean_rss_dbm[row, audible_columns]
            chosen_column = int(audible_columns[self._choose_audible(mean_rss)])
            chosen = aps[chosen_column]
            mean = field.mean_rss_dbm[row, chosen_column]
            if chosen.ap_id in self.fading_fields:
                fade = self.fading_fields[chosen.ap_id].sample(fix.position)
                rss = float(mean) - fade
            elif sigma == 0:
                rss = float(mean)
            else:
                rss = float(mean - self._rng.normal(0.0, sigma, size=()))
            trace.append(
                RssMeasurement(
                    rss_dbm=rss,
                    position=self._recorded_position(fix.position),
                    timestamp=float(fix.time),
                    ttl=self.config.ttl_s,
                    source_ap=chosen.ap_id,
                )
            )

    def collect_along(
        self,
        follower: PathFollower,
        *,
        n_samples: Optional[int] = None,
        duration_s: Optional[float] = None,
        start_time_s: float = 0.0,
    ) -> RssTrace:
        """Drive and collect; stop after ``n_samples`` readings or ``duration_s``.

        Exactly one of ``n_samples`` / ``duration_s`` must be given.  Fixes
        where no AP is audible produce no reading but still consume time, so
        "collect 60 samples" means 60 *successful* readings — matching the
        paper, which counts collected RSS values, not elapsed ticks.
        """
        if (n_samples is None) == (duration_s is None):
            raise ValueError("specify exactly one of n_samples / duration_s")
        trace = RssTrace()
        if duration_s is not None:
            self._measure_fixes(
                drive_schedule(
                    follower, duration_s, self.config.sample_period_s,
                    start_time_s=start_time_s,
                ),
                trace,
            )
            return trace

        assert n_samples is not None
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        # Cap the walk at a generous number of ticks so a deployment with no
        # coverage cannot loop forever.  Fixes are propagated chunk by chunk
        # so memory stays bounded on long low-coverage walks.
        max_ticks = max(10 * n_samples, 1000)
        tick = 0
        while len(trace) < n_samples and tick < max_ticks:
            chunk = min(_CHUNK_TICKS, max_ticks - tick)
            fixes = [
                follower.sample(
                    start_time_s + (tick + step) * self.config.sample_period_s
                )
                for step in range(chunk)
            ]
            self._measure_fixes(fixes, trace, stop_at=n_samples)
            tick += chunk
        if len(trace) < n_samples:
            raise RuntimeError(
                f"collected only {len(trace)}/{n_samples} readings in "
                f"{max_ticks} ticks — the route has insufficient AP coverage"
            )
        return trace

    def collect_at_points(
        self, points: List[Point], *, start_time_s: float = 0.0
    ) -> RssTrace:
        """Take one reading at each of an explicit list of reference points.

        Used by the Fig. 8 sweeps, where M reference points are placed over
        the area rather than derived from a drive.
        """
        trace = RssTrace()
        fixes = [
            DriveSample(
                time=start_time_s + index * self.config.sample_period_s,
                position=point,
                heading=0.0,
                distance=0.0,
            )
            for index, point in enumerate(points)
        ]
        self._measure_fixes(fixes, trace)
        return trace
