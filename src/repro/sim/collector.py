"""Drive-by RSS collection.

An :class:`RssCollector` follows a vehicle through the world and records
one RSS reading per sampling instant — the vehicle "can receive only one
RSS measurement at a time" (§4.2.2).  Which audible AP the reading comes
from is drawn with probability proportional to received signal strength
(stronger beacons are overwhelmingly more likely to be decoded first),
which realises the paper's myopic observation model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.geo.points import Point
from repro.mobility.models import DriveSample, PathFollower, drive_schedule
from repro.radio.rss import DEFAULT_TTL_S, RssMeasurement, RssTrace
from repro.sim.world import World
from repro.util.rng import RngLike, ensure_rng

__all__ = ["CollectorConfig", "RssCollector"]


@dataclass(frozen=True)
class CollectorConfig:
    """Sampling parameters of the on-board RSS collector.

    Parameters
    ----------
    sample_period_s:
        Seconds between consecutive RSS readings.
    communication_radius_m:
        The collector's own radio reach ``r_m`` — used both to filter
        audible APs and to pad the online grid (§4.3.1).
    ttl_s:
        Time-to-live stamped onto each measurement (§4.3.2).
    selection_temperature_db:
        Softmax temperature (in dB) for choosing which audible AP a
        reading comes from.  Small values approach "always the strongest";
        large values approach uniform choice.
    """

    sample_period_s: float = 1.0
    communication_radius_m: float = 100.0
    ttl_s: float = DEFAULT_TTL_S
    selection_temperature_db: float = 4.0
    #: GPS fix noise: the *recorded* reference point is the true position
    #: plus isotropic Gaussian noise of this σ (the RSS itself is still
    #: measured at the true position).  0 disables.
    gps_sigma_m: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError(
                f"sample_period_s must be > 0, got {self.sample_period_s}"
            )
        if self.communication_radius_m <= 0:
            raise ValueError(
                f"communication_radius_m must be > 0, got {self.communication_radius_m}"
            )
        if self.ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {self.ttl_s}")
        if self.selection_temperature_db <= 0:
            raise ValueError(
                f"selection_temperature_db must be > 0, "
                f"got {self.selection_temperature_db}"
            )
        if self.gps_sigma_m < 0:
            raise ValueError(
                f"gps_sigma_m must be >= 0, got {self.gps_sigma_m}"
            )


class RssCollector:
    """Collects drive-by RSS measurements from a world."""

    def __init__(
        self,
        world: World,
        config: CollectorConfig = None,
        *,
        fading_fields: Optional[dict] = None,
        rng: RngLike = None,
    ) -> None:
        """``fading_fields`` optionally maps AP ids to
        :class:`repro.radio.shadowing.CorrelatedShadowingField` instances;
        when present, those fields replace the channel's i.i.d. shadowing
        for the corresponding APs (spatially correlated fades do not
        average out over a drive — the robustness benchmarks use this)."""
        self.world = world
        self.config = config if config is not None else CollectorConfig()
        self.fading_fields = dict(fading_fields) if fading_fields else {}
        self._rng = ensure_rng(rng)

    def measure_at(self, position: Point, time: float) -> Optional[RssMeasurement]:
        """Take one reading at ``position``; ``None`` when no AP is audible.

        An AP is audible when the point lies inside both the AP's
        transmission radius and the collector's own communication radius.
        """
        audible = [
            ap
            for ap in self.world.audible_aps(position)
            if ap.position.distance_to(position) <= self.config.communication_radius_m
        ]
        if not audible:
            return None
        mean_rss = np.array(
            [self.world.mean_rss_from(ap.ap_id, position) for ap in audible]
        )
        # Softmax over expected signal strength: the strongest beacon is the
        # most likely to be the one decoded this instant.
        logits = (mean_rss - mean_rss.max()) / self.config.selection_temperature_db
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        chosen = audible[int(self._rng.choice(len(audible), p=probabilities))]
        if chosen.ap_id in self.fading_fields:
            fade = self.fading_fields[chosen.ap_id].sample(position)
            rss = self.world.mean_rss_from(chosen.ap_id, position) - fade
        else:
            rss = self.world.sample_rss_from(
                chosen.ap_id, position, rng=self._rng
            )
        recorded_position = position
        if self.config.gps_sigma_m > 0:
            recorded_position = position.translated(
                float(self._rng.normal(0.0, self.config.gps_sigma_m)),
                float(self._rng.normal(0.0, self.config.gps_sigma_m)),
            )
        return RssMeasurement(
            rss_dbm=rss,
            position=recorded_position,
            timestamp=float(time),
            ttl=self.config.ttl_s,
            source_ap=chosen.ap_id,
        )

    def collect_along(
        self,
        follower: PathFollower,
        *,
        n_samples: int = None,
        duration_s: float = None,
        start_time_s: float = 0.0,
    ) -> RssTrace:
        """Drive and collect; stop after ``n_samples`` readings or ``duration_s``.

        Exactly one of ``n_samples`` / ``duration_s`` must be given.  Fixes
        where no AP is audible produce no reading but still consume time, so
        "collect 60 samples" means 60 *successful* readings — matching the
        paper, which counts collected RSS values, not elapsed ticks.
        """
        if (n_samples is None) == (duration_s is None):
            raise ValueError("specify exactly one of n_samples / duration_s")
        trace = RssTrace()
        if duration_s is not None:
            for fix in drive_schedule(
                follower, duration_s, self.config.sample_period_s,
                start_time_s=start_time_s,
            ):
                measurement = self.measure_at(fix.position, fix.time)
                if measurement is not None:
                    trace.append(measurement)
            return trace

        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        # Cap the walk at a generous number of ticks so a deployment with no
        # coverage cannot loop forever.
        max_ticks = max(10 * n_samples, 1000)
        tick = 0
        while len(trace) < n_samples and tick < max_ticks:
            t = start_time_s + tick * self.config.sample_period_s
            fix: DriveSample = follower.sample(t)
            measurement = self.measure_at(fix.position, fix.time)
            if measurement is not None:
                trace.append(measurement)
            tick += 1
        if len(trace) < n_samples:
            raise RuntimeError(
                f"collected only {len(trace)}/{n_samples} readings in "
                f"{max_ticks} ticks — the route has insufficient AP coverage"
            )
        return trace

    def collect_at_points(
        self, points: List[Point], *, start_time_s: float = 0.0
    ) -> RssTrace:
        """Take one reading at each of an explicit list of reference points.

        Used by the Fig. 8 sweeps, where M reference points are placed over
        the area rather than derived from a drive.
        """
        trace = RssTrace()
        for index, point in enumerate(points):
            t = start_time_s + index * self.config.sample_period_s
            measurement = self.measure_at(point, t)
            if measurement is not None:
                trace.append(measurement)
        return trace
