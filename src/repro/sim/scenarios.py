"""Scenario builders reconstructing the paper's evaluation environments.

* :func:`uci_campus` — §6.1: 300 m × 180 m scaled UCI campus map, 8 APs at
  least 50 m apart with 100 m transmission radius, channel l0 = 45.6 dB at
  1 m, γ = 1.76, shadowing σ = 0.5 dB, 8 m lattice, a rectangular driving
  loop through the deployment (Fig. 5(a)).
* :func:`testbed_campus` — §6.2: six Open-Mesh OM1P nodes over a
  100 m × 100 m area, ~30 m transmission radius, 10 m lattice.
* :func:`random_deployment` — the Fig. 8 sweeps: k APs uniformly placed in
  a 250 m × 250 m area on an 8 m lattice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.geo.grid import Grid
from repro.geo.points import BoundingBox, Point
from repro.geo.trajectory import Trajectory
from repro.radio.pathloss import PathLossModel
from repro.sim.collector import CollectorConfig
from repro.sim.world import AccessPoint, World, place_aps_randomly, snap_aps_to_grid
from repro.util.rng import RngLike

__all__ = [
    "UCI_CHANNEL",
    "TESTBED_CHANNEL",
    "Scenario",
    "uci_campus",
    "testbed_campus",
    "random_deployment",
]

#: Channel parameters stated in §6.1.
UCI_CHANNEL = PathLossModel(
    tx_power_dbm=20.0,
    reference_loss_db=45.6,
    path_loss_exponent=1.76,
    shadowing_sigma_db=0.5,
)

#: Open-Mesh OM1P nodes transmit at lower power; 30 m effective radius
#: (§6.2) under the same propagation law.
TESTBED_CHANNEL = PathLossModel(
    tx_power_dbm=10.0,
    reference_loss_db=45.6,
    path_loss_exponent=1.76,
    shadowing_sigma_db=0.5,
)


@dataclass
class Scenario:
    """A fully specified evaluation environment."""

    name: str
    world: World
    area: BoundingBox
    grid: Grid
    route: Optional[Trajectory]
    collector_config: CollectorConfig

    @property
    def true_ap_positions(self) -> List[Point]:
        """Ground-truth AP locations (for evaluation only)."""
        return self.world.ap_positions()


def _uci_ap_positions() -> List[Point]:
    """Eight AP sites spread over the scaled 300 m × 180 m UCI map.

    The paper does not publish exact coordinates; these sites respect every
    stated constraint (all pairs > 50 m apart, inside the area, and roadside —
    within ~25 m of the driving loop, which is the premise of drive-by
    sensing).
    """
    return [
        Point(60.0, 35.0),
        Point(150.0, 30.0),
        Point(245.0, 40.0),
        Point(272.0, 95.0),
        Point(265.0, 150.0),
        Point(185.0, 150.0),
        Point(105.0, 150.0),
        Point(30.0, 95.0),
    ]


def uci_campus(
    *,
    lattice_length_m: float = 8.0,
    snap_aps_to_lattice: bool = True,
    ap_positions: Optional[List[Point]] = None,
    rng: RngLike = None,
) -> Scenario:
    """The UCI campus simulation scenario of §6.1 / Fig. 5.

    Parameters
    ----------
    lattice_length_m:
        Grid lattice edge (paper default 8 m; Fig. 6 sweeps 2–20 m).
    snap_aps_to_lattice:
        The first simulation set places APs exactly on grid points; the
        second (offline crowdsourcing) places them randomly — pass
        ``False`` and supply ``ap_positions`` (or let the default stand).
    ap_positions:
        Override AP sites, e.g. with random draws for the second
        simulation set.
    """
    del rng  # deterministic layout; accepted for interface symmetry
    area = BoundingBox(0.0, 0.0, 300.0, 180.0)
    grid = Grid(box=area, lattice_length=lattice_length_m)
    positions = ap_positions if ap_positions is not None else _uci_ap_positions()
    aps = [
        AccessPoint(ap_id=f"uci-ap{i}", position=p, radio_range_m=100.0)
        for i, p in enumerate(positions)
    ]
    if snap_aps_to_lattice:
        aps = snap_aps_to_grid(aps, grid.coordinates())
    world = World(access_points=aps, channel=UCI_CHANNEL)
    # Driving loop roughly tracing the campus ring road (Fig. 5(a)).
    route = Trajectory.rectangle(25.0, 20.0, 275.0, 160.0)
    # Fig. 5 collects 180 RSS values over about one lap of the loop
    # (~780 m), i.e. one reading every ~4.4 m; at 25 mph that is a
    # 0.4 s sampling period.
    return Scenario(
        name="uci-campus",
        world=world,
        area=area,
        grid=grid,
        route=route,
        collector_config=CollectorConfig(
            sample_period_s=0.4,
            communication_radius_m=100.0,
        ),
    )


def _testbed_ap_positions() -> List[Point]:
    """Six Open-Mesh node sites over the 100 m × 100 m testbed block.

    Mirrors the §6.2 deployment: two co-located in one building (Graduate
    Division Office), the rest spread across four venues.
    """
    return [
        Point(20.0, 75.0),   # Graduate Division Office (node 1)
        Point(30.0, 82.0),   # Graduate Division Office (node 2)
        Point(70.0, 85.0),   # Irvine Barclay Theatre
        Point(80.0, 45.0),   # The Hill Bookstore
        Point(45.0, 30.0),   # Starbucks
        Point(15.0, 25.0),   # UCI Student Center
    ]


def testbed_campus(
    *,
    lattice_length_m: float = 10.0,
    rng: RngLike = None,
) -> Scenario:
    """The real-testbed scenario of §6.2 / Fig. 9 (synthesized)."""
    del rng
    area = BoundingBox(0.0, 0.0, 100.0, 100.0)
    grid = Grid(box=area, lattice_length=lattice_length_m)
    aps = [
        AccessPoint(ap_id=f"om1p-{i}", position=p, radio_range_m=30.0)
        for i, p in enumerate(_testbed_ap_positions())
    ]
    world = World(access_points=aps, channel=TESTBED_CHANNEL)
    route = Trajectory.rectangle(8.0, 8.0, 92.0, 92.0)
    return Scenario(
        name="testbed-campus",
        world=world,
        area=area,
        grid=grid,
        route=route,
        collector_config=CollectorConfig(
            sample_period_s=1.0,
            communication_radius_m=30.0,
        ),
    )


def random_deployment(
    n_aps: int,
    *,
    area_side_m: float = 250.0,
    lattice_length_m: float = 8.0,
    radio_range_m: float = 100.0,
    min_separation_m: float = 10.0,
    snap_aps_to_lattice: bool = False,
    rng: RngLike = None,
) -> Scenario:
    """A uniform random AP deployment, as used by the Fig. 8 sweeps.

    Fig. 8 uses a 250 m × 250 m area with an 8 m lattice (≈ 900 usable grid
    points) and sweeps the sparsity level k (the number of APs) and the
    number of measurements M.
    """
    area = BoundingBox(0.0, 0.0, area_side_m, area_side_m)
    grid = Grid(box=area, lattice_length=lattice_length_m)
    aps = place_aps_randomly(
        n_aps,
        # Keep APs off the extreme border so their grid cells are interior.
        area.expanded(-0.05 * area_side_m),
        min_separation_m=min_separation_m,
        radio_range_m=radio_range_m,
        rng=rng,
        id_prefix="rand-ap",
    )
    if snap_aps_to_lattice:
        aps = snap_aps_to_grid(aps, grid.coordinates())
    world = World(access_points=aps, channel=UCI_CHANNEL)
    margin = 0.1 * area_side_m
    route = Trajectory.rectangle(
        margin, margin, area_side_m - margin, area_side_m - margin
    )
    return Scenario(
        name=f"random-{n_aps}aps",
        world=world,
        area=area,
        grid=grid,
        route=route,
        collector_config=CollectorConfig(
            sample_period_s=1.0,
            communication_radius_m=radio_range_m,
        ),
    )
