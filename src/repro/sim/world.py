"""The simulated world: APs, a channel, and audibility queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.geo.points import BoundingBox, Point
from repro.geo.spatialindex import GridBucketIndex
from repro.radio.pathloss import PathLossModel
from repro.util.rng import RngLike, ensure_rng

__all__ = [
    "AccessPoint",
    "RssField",
    "World",
    "place_aps_randomly",
    "snap_aps_to_grid",
]


@dataclass(frozen=True)
class AccessPoint:
    """A fixed roadside WiFi access point.

    ``radio_range_m`` is the effective signal transmission radius (100 m in
    the UCI simulation, ~30 m for the Open-Mesh testbed nodes).
    """

    ap_id: str
    position: Point
    radio_range_m: float = 100.0

    def __post_init__(self) -> None:
        if not self.ap_id:
            raise ValueError("ap_id must be a non-empty string")
        if self.radio_range_m <= 0:
            raise ValueError(f"radio_range_m must be > 0, got {self.radio_range_m}")

    def in_range(self, point: Point) -> bool:
        """Whether ``point`` is within this AP's transmission radius."""
        return self.position.distance_to(point) <= self.radio_range_m


@dataclass(frozen=True)
class RssField:
    """One batched propagation pass: every (position, AP) pair at once.

    Row ``i`` describes query position ``i``; column ``j`` describes AP
    ``j`` in deployment order.  Distances and mean RSS use the same
    elementwise arithmetic as the scalar :meth:`World.mean_rss_from`
    path, so corresponding entries are bit-identical.
    """

    distances_m: NDArray[np.float64]    # (n_positions, n_aps)
    mean_rss_dbm: NDArray[np.float64]   # (n_positions, n_aps)
    audible: NDArray[np.bool_]          # (n_positions, n_aps)

    def audible_indices(self, row: int) -> NDArray[np.intp]:
        """AP indices audible from query position ``row`` (deployment order)."""
        return np.flatnonzero(self.audible[row])


@dataclass
class World:
    """A static deployment of APs sharing one channel model."""

    access_points: List[AccessPoint] = field(default_factory=list)
    channel: PathLossModel = field(default_factory=PathLossModel)

    def __post_init__(self) -> None:
        ids = [ap.ap_id for ap in self.access_points]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate AP ids in deployment: {ids}")
        self._by_id: Dict[str, AccessPoint] = {
            ap.ap_id: ap for ap in self.access_points
        }
        self._index_by_id: Dict[str, int] = {
            ap.ap_id: i for i, ap in enumerate(self.access_points)
        }
        self._positions_cache: Optional[NDArray[np.float64]] = None
        self._ranges_cache: Optional[NDArray[np.float64]] = None
        self._spatial_index: Optional[GridBucketIndex] = None

    def __len__(self) -> int:
        return len(self.access_points)

    def ap(self, ap_id: str) -> AccessPoint:
        """Look up an AP by id."""
        try:
            return self._by_id[ap_id]
        except KeyError:
            raise KeyError(f"unknown AP id {ap_id!r}") from None

    def ap_positions(self) -> List[Point]:
        """Positions of every AP, in deployment order."""
        return [ap.position for ap in self.access_points]

    def positions_array(self) -> NDArray[np.float64]:
        """``(n_aps, 2)`` array of AP positions in deployment order (cached)."""
        if self._positions_cache is None:
            self._positions_cache = np.array(
                [[ap.position.x, ap.position.y] for ap in self.access_points],
                dtype=np.float64,
            ).reshape(-1, 2)
            self._positions_cache.setflags(write=False)
        return self._positions_cache

    def ranges_array(self) -> NDArray[np.float64]:
        """``(n_aps,)`` array of radio ranges in deployment order (cached)."""
        if self._ranges_cache is None:
            self._ranges_cache = np.array(
                [ap.radio_range_m for ap in self.access_points], dtype=np.float64
            )
            self._ranges_cache.setflags(write=False)
        return self._ranges_cache

    def spatial_index(self) -> GridBucketIndex:
        """Grid-bucket index over AP positions (built lazily, cached).

        The bucket size is the maximum radio range, so an audibility
        query only inspects the 3×3 cell neighborhood of the query point.
        The deployment is static (mutating ``access_points`` after
        construction is unsupported), so the index never invalidates.
        """
        if self._spatial_index is None:
            ranges = self.ranges_array()
            cell = float(ranges.max()) if ranges.size else 1.0
            self._spatial_index = GridBucketIndex(self.positions_array(), cell)
        return self._spatial_index

    def audible_aps(self, point: Point) -> List[AccessPoint]:
        """APs whose transmission radius covers ``point``.

        Uses the spatial index to prune to the buckets near ``point``
        (O(cell) instead of O(n_aps)), then applies the exact per-AP
        :meth:`AccessPoint.in_range` test, so the result is identical to
        brute force over the full deployment — in deployment order.
        """
        if not self.access_points:
            return []
        index = self.spatial_index()
        candidates = index.candidates(
            point.x, point.y, float(self.ranges_array().max())
        )
        return [
            self.access_points[i]
            for i in candidates.tolist()
            if self.access_points[i].in_range(point)
        ]

    def mean_rss_from(self, ap_id: str, point: Point) -> float:
        """Expected (noise-free) RSS at ``point`` from AP ``ap_id``."""
        ap = self.ap(ap_id)
        return float(self.channel.mean_rss_dbm(ap.position.distance_to(point)))

    def sample_rss_from(
        self, ap_id: str, point: Point, rng: RngLike = None
    ) -> float:
        """Draw a shadow-faded RSS at ``point`` from AP ``ap_id``."""
        ap = self.ap(ap_id)
        return float(
            self.channel.sample_rss_dbm(ap.position.distance_to(point), rng=rng)
        )

    def rss_matrix(
        self,
        positions: Sequence[Point],
        *,
        max_distance_m: Optional[float] = None,
    ) -> RssField:
        """Batched propagation: distances, mean RSS, audibility in one pass.

        Computes the full ``(len(positions), n_aps)`` distance matrix,
        feeds it through the channel's vectorized mean-RSS model, and
        masks audibility against each AP's radio range (and, when given,
        ``max_distance_m`` — the collector's own communication radius).
        Entries are bit-identical to the scalar ``mean_rss_from`` /
        ``in_range`` path because both sides use the same elementwise
        arithmetic.
        """
        coords = np.array(
            [[p.x, p.y] for p in positions], dtype=np.float64
        ).reshape(-1, 2)
        ap_coords = self.positions_array()
        deltas = coords[:, None, :] - ap_coords[None, :, :]
        distances = np.sqrt(deltas[..., 0] ** 2 + deltas[..., 1] ** 2)
        mean_rss = self.channel.mean_rss_dbm(distances)
        audible = distances <= self.ranges_array()[None, :]
        if max_distance_m is not None:
            audible &= distances <= float(max_distance_m)
        return RssField(
            distances_m=distances,
            mean_rss_dbm=np.asarray(mean_rss, dtype=np.float64),
            audible=audible,
        )

    def bounding_box(self, margin: float = 0.0) -> BoundingBox:
        """Box around all AP positions, optionally expanded by ``margin``."""
        if not self.access_points:
            raise ValueError("world has no APs to bound")
        return BoundingBox.around(self.ap_positions()).expanded(margin)

    def minimum_ap_separation(self) -> float:
        """Smallest pairwise distance between APs (inf for < 2 APs)."""
        coords = self.positions_array()
        if coords.shape[0] < 2:
            return float("inf")
        deltas = coords[:, None, :] - coords[None, :, :]
        distances = np.sqrt(deltas[..., 0] ** 2 + deltas[..., 1] ** 2)
        np.fill_diagonal(distances, np.inf)
        return float(distances.min())


def place_aps_randomly(
    count: int,
    box: BoundingBox,
    *,
    min_separation_m: float = 0.0,
    radio_range_m: float = 100.0,
    rng: RngLike = None,
    max_attempts: int = 10_000,
    id_prefix: str = "ap",
) -> List[AccessPoint]:
    """Uniformly place ``count`` APs in ``box`` with a minimum separation.

    Uses rejection sampling; raises if the separation constraint cannot be
    met within ``max_attempts`` draws (the caller asked for an infeasible
    density).  The candidate RNG draw order matches the original scalar
    implementation (two uniforms per attempt), so placements for a given
    seed are unchanged; only the separation check against already-placed
    APs is vectorized.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    generator = ensure_rng(rng)
    placed = np.empty((count, 2), dtype=np.float64)
    n_placed = 0
    attempts = 0
    while n_placed < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} APs with separation "
                f">= {min_separation_m} m in {box} after {max_attempts} attempts"
            )
        x = float(generator.uniform(box.min_x, box.max_x))
        y = float(generator.uniform(box.min_y, box.max_y))
        if n_placed:
            deltas = placed[:n_placed] - (x, y)
            nearest = np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2).min()
            if nearest < min_separation_m:
                continue
        placed[n_placed] = (x, y)
        n_placed += 1
    return [
        AccessPoint(
            ap_id=f"{id_prefix}{i}",
            position=Point(float(placed[i, 0]), float(placed[i, 1])),
            radio_range_m=radio_range_m,
        )
        for i in range(count)
    ]


def snap_aps_to_grid(
    aps: Sequence[AccessPoint], grid_coordinates: NDArray[np.float64]
) -> List[AccessPoint]:
    """Return copies of ``aps`` moved to their nearest grid-point centers.

    The first UCI simulation (Fig. 5) places the 8 APs exactly on grid
    points; this helper converts any deployment into that regime.
    """
    coords = np.asarray(grid_coordinates, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"grid_coordinates must be (N, 2), got {coords.shape}")
    snapped: List[AccessPoint] = []
    for ap in aps:
        deltas = coords - ap.position.as_array()
        idx = int(np.argmin((deltas**2).sum(axis=1)))
        snapped.append(
            AccessPoint(
                ap_id=ap.ap_id,
                position=Point(float(coords[idx, 0]), float(coords[idx, 1])),
                radio_range_m=ap.radio_range_m,
            )
        )
    return snapped
