"""The simulated world: APs, a channel, and audibility queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.geo.points import BoundingBox, Point
from repro.radio.pathloss import PathLossModel
from repro.util.rng import RngLike, ensure_rng

__all__ = ["AccessPoint", "World", "place_aps_randomly", "snap_aps_to_grid"]


@dataclass(frozen=True)
class AccessPoint:
    """A fixed roadside WiFi access point.

    ``radio_range_m`` is the effective signal transmission radius (100 m in
    the UCI simulation, ~30 m for the Open-Mesh testbed nodes).
    """

    ap_id: str
    position: Point
    radio_range_m: float = 100.0

    def __post_init__(self) -> None:
        if not self.ap_id:
            raise ValueError("ap_id must be a non-empty string")
        if self.radio_range_m <= 0:
            raise ValueError(f"radio_range_m must be > 0, got {self.radio_range_m}")

    def in_range(self, point: Point) -> bool:
        """Whether ``point`` is within this AP's transmission radius."""
        return self.position.distance_to(point) <= self.radio_range_m


@dataclass
class World:
    """A static deployment of APs sharing one channel model."""

    access_points: List[AccessPoint] = field(default_factory=list)
    channel: PathLossModel = field(default_factory=PathLossModel)

    def __post_init__(self) -> None:
        ids = [ap.ap_id for ap in self.access_points]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate AP ids in deployment: {ids}")
        self._by_id: Dict[str, AccessPoint] = {
            ap.ap_id: ap for ap in self.access_points
        }

    def __len__(self) -> int:
        return len(self.access_points)

    def ap(self, ap_id: str) -> AccessPoint:
        """Look up an AP by id."""
        try:
            return self._by_id[ap_id]
        except KeyError:
            raise KeyError(f"unknown AP id {ap_id!r}") from None

    def ap_positions(self) -> List[Point]:
        """Positions of every AP, in deployment order."""
        return [ap.position for ap in self.access_points]

    def audible_aps(self, point: Point) -> List[AccessPoint]:
        """APs whose transmission radius covers ``point``."""
        return [ap for ap in self.access_points if ap.in_range(point)]

    def mean_rss_from(self, ap_id: str, point: Point) -> float:
        """Expected (noise-free) RSS at ``point`` from AP ``ap_id``."""
        ap = self.ap(ap_id)
        return float(self.channel.mean_rss_dbm(ap.position.distance_to(point)))

    def sample_rss_from(
        self, ap_id: str, point: Point, rng: RngLike = None
    ) -> float:
        """Draw a shadow-faded RSS at ``point`` from AP ``ap_id``."""
        ap = self.ap(ap_id)
        return float(
            self.channel.sample_rss_dbm(ap.position.distance_to(point), rng=rng)
        )

    def bounding_box(self, margin: float = 0.0) -> BoundingBox:
        """Box around all AP positions, optionally expanded by ``margin``."""
        if not self.access_points:
            raise ValueError("world has no APs to bound")
        return BoundingBox.around(self.ap_positions()).expanded(margin)

    def minimum_ap_separation(self) -> float:
        """Smallest pairwise distance between APs (inf for < 2 APs)."""
        positions = self.ap_positions()
        if len(positions) < 2:
            return float("inf")
        best = float("inf")
        for i in range(len(positions)):
            for j in range(i + 1, len(positions)):
                best = min(best, positions[i].distance_to(positions[j]))
        return best


def place_aps_randomly(
    count: int,
    box: BoundingBox,
    *,
    min_separation_m: float = 0.0,
    radio_range_m: float = 100.0,
    rng: RngLike = None,
    max_attempts: int = 10_000,
    id_prefix: str = "ap",
) -> List[AccessPoint]:
    """Uniformly place ``count`` APs in ``box`` with a minimum separation.

    Uses rejection sampling; raises if the separation constraint cannot be
    met within ``max_attempts`` draws (the caller asked for an infeasible
    density).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    generator = ensure_rng(rng)
    placed: List[Point] = []
    attempts = 0
    while len(placed) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} APs with separation "
                f">= {min_separation_m} m in {box} after {max_attempts} attempts"
            )
        candidate = Point(
            float(generator.uniform(box.min_x, box.max_x)),
            float(generator.uniform(box.min_y, box.max_y)),
        )
        if all(candidate.distance_to(p) >= min_separation_m for p in placed):
            placed.append(candidate)
    return [
        AccessPoint(ap_id=f"{id_prefix}{i}", position=p, radio_range_m=radio_range_m)
        for i, p in enumerate(placed)
    ]


def snap_aps_to_grid(
    aps: Sequence[AccessPoint], grid_coordinates: np.ndarray
) -> List[AccessPoint]:
    """Return copies of ``aps`` moved to their nearest grid-point centers.

    The first UCI simulation (Fig. 5) places the 8 APs exactly on grid
    points; this helper converts any deployment into that regime.
    """
    coords = np.asarray(grid_coordinates, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise ValueError(f"grid_coordinates must be (N, 2), got {coords.shape}")
    snapped: List[AccessPoint] = []
    for ap in aps:
        deltas = coords - ap.position.as_array()
        idx = int(np.argmin((deltas**2).sum(axis=1)))
        snapped.append(
            AccessPoint(
                ap_id=ap.ap_id,
                position=Point(float(coords[idx, 0]), float(coords[idx, 1])),
                radio_range_m=ap.radio_range_m,
            )
        )
    return snapped
