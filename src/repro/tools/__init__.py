"""Static-analysis tooling for the CrowdWiFi reproduction.

``crowdlint`` is a custom AST linter enforcing the invariants the
reproduction's figures depend on: deterministic RNG threading through
:func:`repro.util.rng.ensure_rng`, dBm/mW unit discipline outside
``radio/``, honest ``__all__`` export lists, and no process-global
numpy state.  See :mod:`repro.tools.rules` for the rule pack and
:mod:`repro.tools.lint` for the driver and CLI (``crowdwifi-repro
lint`` / ``python -m repro.tools.lint``).

The CLI module is intentionally not imported here so that ``python -m
repro.tools.lint`` does not execute it twice; import
:mod:`repro.tools.lint` directly for :func:`~repro.tools.lint.lint_paths`
and :func:`~repro.tools.lint.lint_source`.

The package is dependency-free (stdlib ``ast`` only) so the lint gate
runs anywhere the library imports.
"""

from repro.tools.findings import Finding, render_json, render_text
from repro.tools.rules import RULE_IDS, RULES

__all__ = [
    "Finding",
    "render_text",
    "render_json",
    "RULES",
    "RULE_IDS",
]
