"""Allow ``python -m repro.tools`` as a shorthand for the lint CLI."""

from repro.tools.lint import main

__all__ = ["main"]

if __name__ == "__main__":
    raise SystemExit(main())
